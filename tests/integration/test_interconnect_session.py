"""Integration: EXTEST interconnect test through the simulated CAS-BUS."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.soc.core import CoreSpec
from repro.soc.library import interconnect_demo_soc, small_soc
from repro.soc.soc import SocSpec
from repro.sim.interconnect import Interconnect


def _executor(faults=None):
    soc = interconnect_demo_soc()
    return SessionExecutor(
        build_system(soc, interconnect_faults=faults or {})
    )


class TestCleanInterconnect:
    def test_all_nets_pass(self):
        result = _executor().run_interconnect_test()
        assert result.passed
        assert {r.name for r in result.core_results} == {
            "n0", "n1", "n2", "n3"
        }
        for net_result in result.core_results:
            assert net_result.method == "interconnect"
            assert net_result.bits_compared > 0

    def test_cycle_accounting(self):
        result = _executor().run_interconnect_test()
        assert result.config_cycles > 0
        assert result.test_cycles > 0

    def test_no_interconnects_rejected(self):
        executor = SessionExecutor(build_system(small_soc()))
        with pytest.raises(ConfigurationError, match="no interconnects"):
            executor.run_interconnect_test()


class TestFaultDetection:
    @pytest.mark.parametrize("net,kind", [
        ("n0", "sa0"), ("n0", "sa1"), ("n1", "sa0"),
        ("n2", "open"), ("n3", "sa1"),
    ])
    def test_single_net_faults_localised(self, net, kind):
        result = _executor({net: kind}).run_interconnect_test()
        failing = {r.name for r in result.core_results if not r.passed}
        assert failing == {net}

    def test_short_hits_both_nets(self):
        result = _executor(
            {("n0", "n1"): "short"}
        ).run_interconnect_test()
        failing = {r.name for r in result.core_results if not r.passed}
        assert failing == {"n0", "n1"}

    def test_short_across_cores(self):
        result = _executor(
            {("n1", "n2"): "short"}
        ).run_interconnect_test()
        failing = {r.name for r in result.core_results if not r.passed}
        assert failing == {"n1", "n2"}

    def test_multiple_faults(self):
        result = _executor(
            {"n0": "sa1", "n3": "open"}
        ).run_interconnect_test()
        failing = {r.name for r in result.core_results if not r.passed}
        assert failing == {"n0", "n3"}


class TestPhasing:
    def test_narrow_bus_forces_phases(self):
        """Cores that cannot share the bus are tested in phases."""
        soc = SocSpec(
            name="narrow",
            bus_width=2,
            cores=(
                CoreSpec.scan("a", seed=1, num_ffs=4, num_chains=1,
                              num_pis=1, num_pos=1, atpg_max_patterns=4),
                CoreSpec.scan("b", seed=2, num_ffs=4, num_chains=1,
                              num_pis=2, num_pos=2, atpg_max_patterns=4),
                CoreSpec.scan("c", seed=3, num_ffs=4, num_chains=1,
                              num_pis=1, num_pos=1, atpg_max_patterns=4),
            ),
            interconnects=(
                Interconnect("ab", source=("a", 0), sink=("b", 0)),
                Interconnect("bc", source=("b", 0), sink=("c", 0)),
            ),
        )
        soc.validate()
        executor = SessionExecutor(build_system(soc))
        result = executor.run_interconnect_test()
        assert result.passed
        assert {r.name for r in result.core_results} == {"ab", "bc"}

    def test_impossible_pair_rejected(self):
        soc = SocSpec(
            name="impossible",
            bus_width=2,
            cores=(
                CoreSpec.scan("wide1", seed=1, num_ffs=4, num_chains=2,
                              num_pis=1, num_pos=1, atpg_max_patterns=4),
                CoreSpec.scan("wide2", seed=2, num_ffs=4, num_chains=2,
                              num_pis=1, num_pos=1, atpg_max_patterns=4),
            ),
            interconnects=(
                Interconnect("x", source=("wide1", 0), sink=("wide2", 0)),
            ),
        )
        soc.validate()
        executor = SessionExecutor(build_system(soc))
        with pytest.raises(ConfigurationError, match="need 4 wires"):
            executor.run_interconnect_test()


class TestInteroperation:
    def test_interconnect_then_core_test(self):
        """EXTEST session followed by a normal INTEST session works --
        the executor reverts wrapper modes between sessions."""
        from repro.sim.plan import PlanBuilder, flat_assignment

        executor = _executor()
        interconnect = executor.run_interconnect_test()
        assert interconnect.passed
        plan = PlanBuilder().add_session(
            flat_assignment("producer", (0,)),
            flat_assignment("hub", (1,)),
            flat_assignment("consumer", (2,)),
        ).build()
        cores = executor.run_plan(plan)
        assert cores.passed
