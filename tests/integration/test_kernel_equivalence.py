"""Golden equivalence: the compiled kernel vs the legacy backend.

The kernel (:mod:`repro.sim.kernel`) must reproduce the legacy
object-stepping executor's :class:`~repro.sim.session.ProgramResult`
*exactly* -- cycle counts, pass/fail, bit-level mismatch counts,
detail strings -- and leave the live system in the same post-run state
(chain contents, wrapper modes, CAS codes).  These tests pin that on
the fig-1 SoC, on ITC'02-style workloads, with and without injected
faults, and through the maintenance (non-interference) scenario.
"""

from __future__ import annotations

import pytest

from repro.bist.engine import random_detectable_fault
from repro.errors import ConfigurationError
from repro.core.tam import CasBusTamDesign
from repro.schedule.concurrent import maintenance_session
from repro.sim.kernel import KernelExecutor, kernel_supports
from repro.sim.plan import PlanBuilder, flat_assignment
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.sim.trace import TraceRecorder
from repro.soc.itc02 import benchmark_soc, random_soc
from repro.soc.library import fig1_soc


def _run_both(soc, *, inject_faults=None, plan=None):
    """One plan on both backends; returns (legacy, kernel) results and
    the two post-run systems."""
    tam = CasBusTamDesign.for_soc(soc)
    plan = plan or tam.executable_plan()
    outcomes = []
    for backend in ("legacy", "kernel"):
        system = build_system(soc, inject_faults=inject_faults)
        executor = SessionExecutor(system, backend=backend)
        outcomes.append((executor.run_plan(plan), system))
    return outcomes


def _assert_same_state(system_a, system_b):
    for node_a, node_b in zip(system_a.walk(), system_b.walk()):
        assert node_a.path == node_b.path
        assert node_a.cas.active_code == node_b.cas.active_code, node_a.path
        if node_a.wrapper is None:
            continue
        assert node_a.wrapper.mode == node_b.wrapper.mode, node_a.path
        cells_a = [c.shift_value for c in node_a.wrapper.boundary.cells]
        cells_b = [c.shift_value for c in node_b.wrapper.boundary.cells]
        assert cells_a == cells_b, node_a.path
        if node_a.wrapper.core is not None:
            assert (node_a.wrapper.core.ff_values
                    == node_b.wrapper.core.ff_values), node_a.path


class TestFig1Equivalence:
    def test_clean_program_identical(self):
        (legacy, sys_l), (kernel, sys_k) = _run_both(fig1_soc())
        assert legacy == kernel
        assert kernel.passed
        _assert_same_state(sys_l, sys_k)

    @pytest.mark.parametrize("victim,seed", [
        ("core2", 3),          # scan, multi-chain
        ("core3", 7),          # BIST
        ("core4", 2),          # external LFSR/MISR
    ])
    def test_faulty_program_identical(self, victim, seed):
        soc = fig1_soc()
        clean = soc.core_named(victim).build_scannable()
        fault = random_detectable_fault(clean, seed=seed)
        (legacy, _), (kernel, _) = _run_both(
            soc, inject_faults={victim: fault}
        )
        assert legacy == kernel
        assert not kernel.passed
        failed = [c for c in kernel.core_results() if not c.passed]
        assert [c.name for c in failed] == [victim]

    def test_hierarchical_fault_identical(self):
        soc = fig1_soc()
        clean = soc.core_named("core5").inner.core_named(
            "core5b").build_scannable()
        fault = random_detectable_fault(clean, seed=9)
        (legacy, _), (kernel, _) = _run_both(
            soc, inject_faults={"core5/core5b": fault}
        )
        assert legacy == kernel
        assert not kernel.passed

    def test_mismatch_counts_are_bit_exact(self):
        """Not just pass/fail: the per-core mismatch and compare
        counters agree bit for bit."""
        soc = fig1_soc()
        clean = soc.core_named("core2").build_scannable()
        fault = random_detectable_fault(clean, seed=3)
        (legacy, _), (kernel, _) = _run_both(
            soc, inject_faults={"core2": fault}
        )
        for result_l, result_k in zip(
            legacy.core_results(), kernel.core_results()
        ):
            assert result_l.mismatches == result_k.mismatches
            assert result_l.bits_compared == result_k.bits_compared
            assert result_l.detail == result_k.detail


class TestItc02Equivalence:
    def test_benchmark_soc_clean(self):
        (legacy, sys_l), (kernel, sys_k) = _run_both(
            benchmark_soc("d695")
        )
        assert legacy == kernel
        assert kernel.passed
        _assert_same_state(sys_l, sys_k)

    def test_benchmark_soc_faulty(self):
        soc = benchmark_soc("g1023")
        victim = next(
            core for core in soc.cores if core.method.value == "scan"
        )
        fault = random_detectable_fault(
            victim.build_scannable(), seed=4
        )
        (legacy, _), (kernel, _) = _run_both(
            soc, inject_faults={victim.name: fault}
        )
        assert legacy == kernel
        assert not kernel.passed

    @pytest.mark.parametrize("seed", range(3))
    def test_random_soc_equivalence(self, seed):
        (legacy, sys_l), (kernel, sys_k) = _run_both(
            random_soc(seed, num_cores=6, bus_width=6)
        )
        assert legacy == kernel
        _assert_same_state(sys_l, sys_k)


class TestRetestEquivalence:
    def test_retested_cores_agree_including_divergent_external(self):
        """Re-testing cores in later sessions starts from post-test
        state.  An external core's second run legitimately fails (its
        live chain no longer matches the fresh golden shadow) -- both
        backends must agree bit for bit on that too."""
        from repro.soc.core import CoreSpec
        from repro.soc.soc import SocSpec

        soc = SocSpec(name="retest", bus_width=2, cores=(
            CoreSpec.external("e1", seed=4, num_ffs=8,
                              stream_patterns=6),
            CoreSpec.scan("s1", seed=5, num_ffs=6, num_chains=1,
                          num_pis=2, num_pos=2, atpg_max_patterns=8),
        ))
        soc.validate()
        plan = (PlanBuilder()
                .add_session(flat_assignment("e1", (0,)),
                             flat_assignment("s1", (1,)))
                .add_session(flat_assignment("e1", (1,)))
                .add_session(flat_assignment("s1", (0,)))
                .build())
        results = {}
        for backend in ("legacy", "kernel"):
            executor = SessionExecutor(build_system(soc), backend=backend)
            results[backend] = executor.run_plan(plan)
        assert results["legacy"] == results["kernel"]
        second_external = results["kernel"].sessions[1].core_results[0]
        assert not second_external.passed  # diverged from fresh shadow


class TestMaintenanceEquivalence:
    def test_undisturbed_checks_agree(self):
        soc = fig1_soc()
        plan, undisturbed = maintenance_session(soc, ["core3"])
        sessions = []
        for backend in ("legacy", "kernel"):
            system = build_system(soc)
            # Mid-mission state: every functional core holds live bits.
            for node in system.walk():
                if node.wrapper is not None and node.wrapper.core is not None:
                    core = node.wrapper.core
                    core.ff_values = [
                        (3 * i + 1) % 2 for i in range(core.num_ffs)
                    ]
            executor = SessionExecutor(system, backend=backend)
            sessions.append(executor.run_session(
                plan, label="maintenance", undisturbed_paths=undisturbed
            ))
        legacy, kernel = sessions
        assert legacy == kernel
        assert kernel.passed
        assert kernel.undisturbed and all(kernel.undisturbed.values())


class TestBackendSelection:
    def test_auto_uses_kernel_when_possible(self):
        executor = SessionExecutor(build_system(fig1_soc()))
        assert executor._use_kernel()

    def test_trace_falls_back_to_legacy(self):
        executor = SessionExecutor(
            build_system(fig1_soc()), trace=TraceRecorder()
        )
        assert not executor._use_kernel()

    def test_kernel_backend_rejects_trace(self):
        executor = SessionExecutor(
            build_system(fig1_soc()), trace=TraceRecorder(),
            backend="kernel",
        )
        with pytest.raises(ConfigurationError, match="trace"):
            executor.run_plan(
                PlanBuilder().add_session(
                    flat_assignment("core6", (0,))
                ).build()
            )

    def test_gate_level_systems_stay_legacy(self):
        system = build_system(fig1_soc(), gate_level={"core6"})
        assert not kernel_supports(system)
        executor = SessionExecutor(system)
        assert not executor._use_kernel()
        with pytest.raises(ConfigurationError, match="gate-level"):
            KernelExecutor(system)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            SessionExecutor(build_system(fig1_soc()), backend="warp")

    def test_errors_match_legacy_shapes(self):
        """Compile-time validation raises the same error types/messages
        the legacy backend raises mid-run."""
        from repro.sim.plan import CoreAssignment

        for backend in ("legacy", "kernel"):
            executor = SessionExecutor(
                build_system(fig1_soc()), backend=backend
            )
            plan = PlanBuilder().add_session(
                CoreAssignment(path=("core5", "core5a"),
                               levels=((0, 1), (0,))),
                CoreAssignment(path=("core5", "core5b"),
                               levels=((1, 0), (0, 1))),
            ).build()
            with pytest.raises(ConfigurationError, match="conflicting"):
                executor.run_plan(plan)


class TestApiBackendPlumbing:
    def test_experiment_backend_switch(self):
        from repro.api import Experiment

        results = {
            backend: (Experiment(fig1_soc())
                      .with_backend(backend)
                      .run())
            for backend in ("legacy", "kernel", "auto")
        }
        assert results["legacy"] == results["kernel"] == results["auto"]
        assert results["kernel"].source == "simulation"

    def test_experiment_rejects_unknown_backend(self):
        from repro.api import Experiment

        with pytest.raises(ConfigurationError, match="backend"):
            Experiment(fig1_soc()).with_backend("warp")

    def test_facade_backend_switch(self):
        tam = CasBusTamDesign.for_soc(fig1_soc())
        assert tam.run(backend="kernel") == tam.run(backend="legacy")
