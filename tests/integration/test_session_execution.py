"""Integration tests: full test sessions through the simulated CAS-BUS."""

from __future__ import annotations

import pytest

from repro.bist.engine import random_detectable_fault
from repro.errors import ConfigurationError
from repro.soc.core import CoreSpec
from repro.soc.library import fig1_soc, make_synthetic_soc, small_soc
from repro.soc.soc import SocSpec
from repro.sim.plan import CoreAssignment, PlanBuilder, flat_assignment
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system


def _executor(soc, **kwargs):
    return SessionExecutor(build_system(soc, **kwargs))


class TestSmallSoc:
    def test_concurrent_scan_cores_pass(self):
        executor = _executor(small_soc())
        plan = (PlanBuilder()
                .add_session(flat_assignment("alpha", (0, 1)),
                             flat_assignment("beta", (2,)))
                .build())
        result = executor.run_plan(plan)
        assert result.passed
        assert result.total_cycles > 0
        assert {c.name for c in result.core_results()} == {"alpha", "beta"}

    def test_sequential_sessions_pass(self):
        executor = _executor(small_soc())
        plan = (PlanBuilder()
                .add_session(flat_assignment("alpha", (0, 1)))
                .add_session(flat_assignment("beta", (0,)))
                .build())
        result = executor.run_plan(plan)
        assert result.passed
        assert len(result.sessions) == 2

    def test_wire_choice_does_not_matter(self):
        """Any injective wire choice gives identical pass results and
        cycle counts -- the CAS routing makes wires interchangeable."""
        results = []
        for wires in ((0, 1), (2, 0), (1, 2)):
            executor = _executor(small_soc())
            plan = PlanBuilder().add_session(
                flat_assignment("alpha", wires)
            ).build()
            result = executor.run_plan(plan)
            assert result.passed
            results.append(result.total_cycles)
        assert len(set(results)) == 1

    def test_faulty_core_detected(self):
        soc = small_soc()
        clean = soc.core_named("alpha").build_scannable()
        fault = random_detectable_fault(clean, seed=1)
        executor = _executor(soc, inject_faults={"alpha": fault})
        plan = (PlanBuilder()
                .add_session(flat_assignment("alpha", (0, 1)),
                             flat_assignment("beta", (2,)))
                .build())
        result = executor.run_plan(plan)
        by_name = {c.name: c for c in result.core_results()}
        assert not by_name["alpha"].passed
        assert by_name["alpha"].mismatches > 0
        assert by_name["beta"].passed

    def test_config_cycles_counted(self):
        executor = _executor(small_soc())
        plan = PlanBuilder().add_session(
            flat_assignment("alpha", (0, 1))
        ).build()
        result = executor.run_plan(plan)
        session = result.sessions[0]
        # Two chain passes (splice + program): CAS bits are fixed by
        # the SoC; alpha's WIR (3 bits) joins stage B.
        system = build_system(small_soc())
        cas_bits = sum(r.width for r in system.serial_layout())
        assert session.config_cycles == (cas_bits + 1) + (cas_bits + 3 + 1)


class TestFig1Soc:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.core.tam import CasBusTamDesign

        tam = CasBusTamDesign.for_soc(fig1_soc())
        return tam.run()

    def test_every_core_tested_and_passed(self, result):
        names = {c.name for c in result.core_results()}
        assert names == {
            "core1", "core2", "core3", "core4", "core5/core5a",
            "core5/core5b", "core6", "sysbus",
        }
        assert result.passed

    def test_methods_exercised(self, result):
        methods = {c.method for c in result.core_results()}
        assert methods == {"scan", "bist", "external"}

    def test_cycle_accounting(self, result):
        assert result.total_cycles == sum(
            s.total_cycles for s in result.sessions
        )
        assert result.config_cycles > 0
        assert result.test_cycles > result.config_cycles

    def test_bist_core_bits(self, result):
        bist = next(c for c in result.core_results() if c.method == "bist")
        assert bist.bits_compared == 8  # signature width of core3


class TestHierarchy:
    def test_inner_core_tested_through_two_cas_levels(self):
        executor = _executor(fig1_soc())
        plan = PlanBuilder().add_session(
            CoreAssignment(path=("core5", "core5a"),
                           levels=((0, 1), (0,))),
        ).build()
        result = executor.run_plan(plan)
        assert result.passed

    def test_inner_wire_choice_free(self):
        executor = _executor(fig1_soc())
        plan = PlanBuilder().add_session(
            CoreAssignment(path=("core5", "core5a"),
                           levels=((3, 2), (1,))),
        ).build()
        assert executor.run_plan(plan).passed

    def test_inner_fault_detected_through_hierarchy(self):
        soc = fig1_soc()
        clean = soc.core_named("core5").inner.core_named(
            "core5b").build_scannable()
        fault = random_detectable_fault(clean, seed=9)
        executor = _executor(soc,
                             inject_faults={"core5/core5b": fault})
        plan = PlanBuilder().add_session(
            CoreAssignment(path=("core5", "core5b"),
                           levels=((0, 1), (0, 1))),
        ).build()
        result = executor.run_plan(plan)
        assert not result.passed

    def test_concurrent_inner_and_flat(self):
        executor = _executor(fig1_soc())
        plan = PlanBuilder().add_session(
            CoreAssignment(path=("core5", "core5a"),
                           levels=((0, 1), (0,))),
            flat_assignment("core6", (2,)),
            flat_assignment("core3", (3,)),
        ).build()
        result = executor.run_plan(plan)
        assert result.passed
        assert len(result.sessions[0].core_results) == 3


class TestValidationErrors:
    def test_conflicting_shared_parent_assignment(self):
        executor = _executor(fig1_soc())
        plan = PlanBuilder().add_session(
            CoreAssignment(path=("core5", "core5a"),
                           levels=((0, 1), (0,))),
            CoreAssignment(path=("core5", "core5b"),
                           levels=((1, 0), (0, 1))),
        ).build()
        with pytest.raises(ConfigurationError, match="conflicting"):
            executor.run_plan(plan)

    def test_terminal_must_not_be_hierarchical(self):
        executor = _executor(fig1_soc())
        plan = PlanBuilder().add_session(
            flat_assignment("core5", (0, 1)),
        ).build()
        with pytest.raises(ConfigurationError, match="inner cores"):
            executor.run_plan(plan)

    def test_wrong_wire_count_for_p(self):
        executor = _executor(small_soc())
        plan = PlanBuilder().add_session(
            flat_assignment("alpha", (0,)),  # alpha has P=2
        ).build()
        with pytest.raises(ConfigurationError, match="P="):
            executor.run_plan(plan)


class TestSyntheticSweep:
    @pytest.mark.parametrize("seed", range(4))
    def test_synthetic_socs_pass_full_plans(self, seed):
        from repro.core.tam import CasBusTamDesign

        soc = make_synthetic_soc(seed, num_cores=4, bus_width=4)
        tam = CasBusTamDesign.for_soc(soc)
        result = tam.run()
        assert result.passed, soc.describe()


class TestExternalCore:
    def test_external_only_soc(self):
        soc = SocSpec(
            name="ext", bus_width=2,
            cores=(CoreSpec.external("e1", seed=4, num_ffs=8,
                                     stream_patterns=10),),
        )
        executor = _executor(soc)
        plan = PlanBuilder().add_session(
            flat_assignment("e1", (1,))
        ).build()
        result = executor.run_plan(plan)
        assert result.passed
        ext = result.core_results()[0]
        assert "signature" in ext.detail

    def test_external_fault_breaks_signature(self):
        soc = SocSpec(
            name="ext", bus_width=2,
            cores=(CoreSpec.external("e1", seed=4, num_ffs=8,
                                     stream_patterns=10),),
        )
        clean = soc.core_named("e1").build_scannable()
        fault = random_detectable_fault(clean, seed=2)
        executor = _executor(soc, inject_faults={"e1": fault})
        plan = PlanBuilder().add_session(
            flat_assignment("e1", (0,))
        ).build()
        result = executor.run_plan(plan)
        assert not result.passed
