"""Diagnosis guarantees, as properties.

The acceptance bar for the subsystem: on every ITC'02-style table
workload, a seeded single stuck-at injection is localised to the
correct core with the true fault inside the top-5 ranked candidates,
strictly cheaper (in cycles) than naively re-running the full test
program, with both simulation backends byte-identical.  The hypothesis
suite widens the same claims over generated SoCs and scenario seeds:
the true fault is *always* in the ranked candidate list, and a
defect-free SoC never produces a false positive.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.diagnose.engine import diagnose_soc
from repro.diagnose.inject import random_scenario
from repro.soc.itc02 import benchmark_names, benchmark_soc, random_soc

#: Generated-SoC shape used by the hypothesis properties: small enough
#: that one diagnosis runs in well under a second, heterogeneous enough
#: (scan / BIST / external mix) to exercise every dictionary kind.
_SOC_SEEDS = st.integers(min_value=0, max_value=7)
_SCENARIO_SEEDS = st.integers(min_value=0, max_value=31)

_PROPERTY_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _property_soc(soc_seed: int):
    return random_soc(soc_seed, num_cores=4, bus_width=4)


class TestAcceptanceOnItc02Tables:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_seeded_stuck_at_is_localised(self, name):
        soc = benchmark_soc(name)
        scenario = random_scenario(soc, seed=7)
        results = {
            backend: diagnose_soc(soc, scenario, backend=backend)
            for backend in ("legacy", "kernel")
        }
        for backend, result in results.items():
            # Localised to the correct core...
            assert result.localized_core == scenario.core, backend
            # ...with the true fault in the top-5 ranked candidates...
            rank = result.scenario_rank()
            assert rank is not None and rank <= 5, backend
            # ...strictly cheaper than re-running the full schedule.
            assert (result.diagnosis_cycles
                    < result.full_retest_cycles), backend
        legacy = results["legacy"].to_dict()
        kernel = results["kernel"].to_dict()
        legacy.pop("backend")
        kernel.pop("backend")
        # Both backends produce identical syndromes and rankings.
        assert legacy == kernel

    @pytest.mark.parametrize("name", benchmark_names())
    def test_clean_table_soc_diagnoses_clean(self, name):
        result = diagnose_soc(benchmark_soc(name))
        assert result.is_clean


class TestHypothesisProperties:
    @_PROPERTY_SETTINGS
    @given(soc_seed=_SOC_SEEDS, scenario_seed=_SCENARIO_SEEDS)
    def test_true_fault_always_in_candidate_list(
        self, soc_seed, scenario_seed
    ):
        soc = _property_soc(soc_seed)
        scenario = random_scenario(soc, scenario_seed)
        result = diagnose_soc(soc, scenario)
        assert scenario.core in result.failing_cores
        rank = result.scenario_rank()
        assert rank is not None, (
            f"{scenario.describe()} missing from "
            f"{[c.describe() for c in result.candidates]}"
        )
        assert result.candidates[0].score == 1.0
        assert result.localized_core == scenario.core

    @_PROPERTY_SETTINGS
    @given(soc_seed=_SOC_SEEDS)
    def test_defect_free_soc_never_false_positives(self, soc_seed):
        result = diagnose_soc(_property_soc(soc_seed))
        assert result.is_clean
        assert result.failing_cores == ()
        assert result.diagnosis_cycles == 0

    @_PROPERTY_SETTINGS
    @given(soc_seed=_SOC_SEEDS, scenario_seed=_SCENARIO_SEEDS)
    def test_diagnosis_never_widens_past_full_retest_budget(
        self, soc_seed, scenario_seed
    ):
        """Probe accounting sanity: sessions and cycles are counted,
        and every probe is reflected in the totals."""
        soc = _property_soc(soc_seed)
        scenario = random_scenario(soc, scenario_seed)
        result = diagnose_soc(soc, scenario)
        assert result.probe_sessions >= 1
        assert result.diagnosis_cycles > 0
        assert result.planned_diagnosis_cycles > 0
        assert result.retest_cycles > 0
        assert result.screening_cycles == result.full_retest_cycles
