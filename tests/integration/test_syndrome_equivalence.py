"""Golden equivalence of syndrome capture across backends.

The opt-in ``capture_syndromes`` flag must be invisible when off (both
backends produce exactly the pre-flag results) and *byte-identical*
between backends when on: the diagnosis engine matches syndromes
against dictionaries, so a single differing bit would corrupt a
localisation.
"""

from __future__ import annotations

import pytest

from repro.bist.engine import random_detectable_fault
from repro.core.tam import CasBusTamDesign
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.soc.itc02 import benchmark_soc, random_soc
from repro.soc.library import fig1_soc, small_soc


def _run(soc, *, backend, capture, inject_faults=None):
    system = build_system(soc, inject_faults=inject_faults)
    executor = SessionExecutor(
        system, backend=backend, capture_syndromes=capture
    )
    plan = CasBusTamDesign.for_soc(soc).executable_plan()
    return executor.run_plan(plan)


def _detectable(soc, victim, seed):
    clean = soc.core_named(victim).build_scannable()
    return {victim: random_detectable_fault(clean, seed=seed)}


class TestCaptureOffIsInvisible:
    @pytest.mark.parametrize("backend", ["legacy", "kernel"])
    def test_results_carry_no_syndrome(self, backend):
        program = _run(small_soc(), backend=backend, capture=False)
        for result in program.core_results():
            assert result.syndrome is None

    def test_cycle_counts_match_with_and_without_capture(self):
        soc = fig1_soc()
        faults = _detectable(soc, "core2", 3)
        off = _run(soc, backend="kernel", capture=False,
                   inject_faults=faults)
        on = _run(soc, backend="kernel", capture=True,
                  inject_faults=faults)
        assert off.total_cycles == on.total_cycles
        assert off.config_cycles == on.config_cycles
        for a, b in zip(off.core_results(), on.core_results()):
            assert a.mismatches == b.mismatches
            assert a.bits_compared == b.bits_compared


class TestBackendsEmitIdenticalSyndromes:
    @pytest.mark.parametrize("victim,seed", [
        ("core1", 5),          # scan, three chains
        ("core2", 3),          # scan, two chains
        ("core3", 7),          # BIST signature
        ("core4", 2),          # external LFSR/MISR
        ("core6", 4),          # scan, single chain
    ])
    def test_fig1_fault_syndromes_identical(self, victim, seed):
        soc = fig1_soc()
        faults = _detectable(soc, victim, seed)
        legacy = _run(soc, backend="legacy", capture=True,
                      inject_faults=faults)
        kernel = _run(soc, backend="kernel", capture=True,
                      inject_faults=faults)
        assert legacy == kernel
        failing = [
            r for r in kernel.core_results() if not r.passed
        ]
        assert [r.name for r in failing] == [victim]
        assert failing[0].syndrome is not None
        assert not failing[0].syndrome.is_clean

    def test_hierarchical_fault_syndromes_identical(self):
        soc = fig1_soc()
        faults = {
            "core5/core5b": random_detectable_fault(
                soc.core_named("core5").inner.core_named(
                    "core5b").build_scannable(),
                seed=9,
            )
        }
        legacy = _run(soc, backend="legacy", capture=True,
                      inject_faults=faults)
        kernel = _run(soc, backend="kernel", capture=True,
                      inject_faults=faults)
        assert legacy == kernel

    def test_clean_program_syndromes_identical_and_empty(self):
        soc = small_soc()
        legacy = _run(soc, backend="legacy", capture=True)
        kernel = _run(soc, backend="kernel", capture=True)
        assert legacy == kernel
        for result in kernel.core_results():
            assert result.syndrome is not None
            assert result.syndrome.is_clean

    # d695's legacy run is the expensive one and its backend equality
    # is already pinned end-to-end by the diagnosis acceptance suite;
    # the mid/small tables cover the program-level syndrome identity.
    @pytest.mark.parametrize("name", ["g1023", "h953"])
    def test_itc02_soc_syndromes_identical(self, name):
        soc = benchmark_soc(name)
        victim = soc.cores[1].name
        faults = _detectable(soc, victim, 6)
        legacy = _run(soc, backend="legacy", capture=True,
                      inject_faults=faults)
        kernel = _run(soc, backend="kernel", capture=True,
                      inject_faults=faults)
        assert legacy == kernel

    def test_random_soc_syndromes_identical(self):
        soc = random_soc(13, num_cores=5, bus_width=4)
        victim = next(
            core.name for core in soc.cores
        )
        faults = _detectable(soc, victim, 8)
        legacy = _run(soc, backend="legacy", capture=True,
                      inject_faults=faults)
        kernel = _run(soc, backend="kernel", capture=True,
                      inject_faults=faults)
        assert legacy == kernel
