"""Property-based integration tests over randomly generated systems.

Hypothesis drives random SoCs, random wire choices and random session
orders through the full simulator; the invariants are the paper's
architectural guarantees, so any counterexample is a real bug in the
reproduction.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import values as lv
from repro.core.instruction import BYPASS_CODE
from repro.sim.plan import PlanBuilder, flat_assignment
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.soc.core import CoreSpec
from repro.soc.library import make_synthetic_soc
from repro.soc.soc import SocSpec


@st.composite
def scan_socs(draw):
    """Small random scan-only SoCs plus a per-core wire choice."""
    num_cores = draw(st.integers(1, 3))
    cores = []
    total_p = 0
    for index in range(num_cores):
        chains = draw(st.integers(1, 2))
        total_p += chains
        ffs = draw(st.integers(chains * 2, chains * 5))
        cores.append(CoreSpec.scan(
            f"c{index}", seed=draw(st.integers(0, 999)),
            num_ffs=ffs, num_chains=chains, num_pis=2, num_pos=2,
            atpg_max_patterns=6,
        ))
    bus_width = draw(st.integers(total_p, total_p + 2))
    soc = SocSpec(name="prop", bus_width=bus_width, cores=tuple(cores))
    soc.validate()
    # A random disjoint wire choice for a one-session plan.
    wires = draw(st.permutations(range(bus_width)))
    cursor = 0
    assignments = []
    for core in cores:
        chosen = tuple(wires[cursor:cursor + core.p])
        cursor += core.p
        assignments.append((core.name, chosen))
    return soc, assignments


class TestRandomSocsPass:
    @settings(max_examples=15, deadline=None)
    @given(scan_socs())
    def test_any_disjoint_wire_choice_passes(self, case):
        soc, assignments = case
        executor = SessionExecutor(build_system(soc))
        builder = PlanBuilder()
        builder.add_session(
            *[flat_assignment(name, wires) for name, wires in assignments]
        )
        result = executor.run_plan(builder.build())
        assert result.passed, soc.describe()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 50))
    def test_synthetic_mixed_socs_pass(self, seed):
        from repro.core.tam import CasBusTamDesign

        soc = make_synthetic_soc(seed, num_cores=3, bus_width=3,
                                 allow_hierarchy=False)
        result = CasBusTamDesign.for_soc(soc).run()
        assert result.passed, soc.describe()


class TestArchitecturalInvariants:
    @settings(max_examples=15, deadline=None)
    @given(scan_socs())
    def test_bus_transparent_after_any_session(self, case):
        """After a session, all CASes return to BYPASS on the next
        session's teardown -- or explicitly: a configured-then-reset
        system routes the bus transparently."""
        soc, assignments = case
        system = build_system(soc)
        executor = SessionExecutor(system)
        builder = PlanBuilder()
        builder.add_session(
            *[flat_assignment(name, wires) for name, wires in assignments]
        )
        executor.run_plan(builder.build())
        system.run_configuration({
            f"{node.path}.cas": BYPASS_CODE for node in system.walk()
        })
        stimulus = tuple(
            lv.ONE if w % 2 else lv.ZERO for w in range(system.n)
        )
        assert system.route_bus(stimulus, config=False) == stimulus

    @settings(max_examples=15, deadline=None)
    @given(scan_socs(), st.integers(0, 3))
    def test_session_results_independent_of_history(self, case, repeats):
        """Running the same session repeatedly gives identical
        outcomes (the TAM is fully reinitialised by configuration)."""
        soc, assignments = case
        executor = SessionExecutor(build_system(soc))
        builder = PlanBuilder()
        for _ in range(repeats + 2):
            builder.add_session(
                *[flat_assignment(name, wires)
                  for name, wires in assignments]
            )
        result = executor.run_plan(builder.build())
        assert result.passed
        reference = result.sessions[0]
        for session in result.sessions[1:]:
            assert session.test_cycles == reference.test_cycles
            for a, b in zip(reference.core_results,
                            session.core_results):
                assert (a.name, a.bits_compared, a.mismatches) == \
                    (b.name, b.bits_compared, b.mismatches)
