"""Integration: the abstract timing model must agree with the
cycle-accurate simulator.

These tests are the reproduction's keystone: every section 4 experiment
(trade-off, balancing, reconfiguration) runs on the abstract model for
ITC'02-scale workloads, so the model must be *exactly* right where the
simulator can check it.
"""

from __future__ import annotations

import pytest

from repro.soc.core import CoreSpec
from repro.soc.library import fig1_soc, small_soc
from repro.soc.soc import SocSpec
from repro.schedule.timing import (
    config_cycles,
    scan_test_cycles,
    session_config_cycles,
)
from repro.sim.plan import PlanBuilder, flat_assignment
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system


def _scan_soc(num_ffs, num_chains, patterns, bus_width=None, seed=5):
    core = CoreSpec.scan(
        "dut", seed=seed, num_ffs=num_ffs, num_chains=num_chains,
        num_pis=2, num_pos=2, atpg_max_patterns=patterns,
        atpg_target=1.0,
    )
    soc = SocSpec(name="timing", bus_width=bus_width or num_chains + 1,
                  cores=(core,))
    soc.validate()
    return soc


class TestScanTiming:
    @pytest.mark.parametrize("num_ffs,num_chains", [
        (8, 1), (8, 2), (12, 3), (15, 2),
    ])
    def test_simulated_test_cycles_match_formula(self, num_ffs, num_chains):
        soc = _scan_soc(num_ffs, num_chains, patterns=16)
        system = build_system(soc)
        executor = SessionExecutor(system)
        plan = PlanBuilder().add_session(
            flat_assignment("dut", tuple(range(num_chains)))
        ).build()
        result = executor.run_plan(plan)
        assert result.passed
        node = system.node_at(("dut",))
        longest = max(node.wrapper.wrapper_chain_lengths())
        patterns = len(executor._test_sets["dut"].patterns)
        predicted = scan_test_cycles(longest, patterns)
        assert result.sessions[0].test_cycles == predicted

    def test_config_cycles_match_model(self):
        soc = fig1_soc()
        system = build_system(soc)
        executor = SessionExecutor(system)
        plan = PlanBuilder().add_session(
            flat_assignment("core1", (0, 1, 2)),
            flat_assignment("core3", (3,)),
        ).build()
        result = executor.run_plan(plan)
        # Model: stage A over all CAS bits, stage B adds 2 spliced WIRs.
        all_np = []
        for node in system.walk():
            all_np.append((node.cas.n, node.cas.p))
        predicted = session_config_cycles(all_np, num_mode_changes=2)
        assert result.sessions[0].config_cycles == predicted

    def test_planner_predictor_matches_executor(self):
        """The sim-side predictor (shared cost model) is cycle-exact."""
        from repro.sim.config import predicted_config_cycles

        soc = fig1_soc()
        plan = PlanBuilder().add_session(
            flat_assignment("core1", (0, 1, 2)),
            flat_assignment("core3", (3,)),
        ).add_session(
            flat_assignment("core2", (0, 1)),
        ).build()
        for session_index, session in enumerate(plan.sessions):
            # Fresh system per probe: the prediction depends on which
            # wrappers an earlier session left in a test mode, exactly
            # like the executor's own stage-B splice count.
            system = build_system(soc)
            executor = SessionExecutor(system)
            result = executor.run_plan(
                PlanBuilder().add_session(
                    *plan.sessions[session_index].assignments
                ).build()
            )
            probe = build_system(soc)
            predicted = predicted_config_cycles(
                probe, plan.sessions[session_index]
            )
            assert result.sessions[0].config_cycles == predicted

    def test_chain_bits_equal_sum_of_k(self):
        system = build_system(fig1_soc())
        layout_bits = sum(r.width for r in system.serial_layout())
        expected = sum(node.cas.k for node in system.walk())
        assert layout_bits == expected
        assert config_cycles(layout_bits) == layout_bits + 1


class TestBistTiming:
    def test_bist_session_length(self):
        soc = fig1_soc()
        system = build_system(soc)
        executor = SessionExecutor(system)
        plan = PlanBuilder().add_session(
            flat_assignment("core3", (0,))
        ).build()
        result = executor.run_plan(plan)
        spec = soc.core_named("core3")
        assert result.sessions[0].test_cycles == (
            spec.bist_cycles + spec.signature_width
        )


class TestSessionMaxRule:
    def test_concurrent_session_is_max_not_sum(self):
        soc = small_soc()
        system = build_system(soc)
        executor = SessionExecutor(system)
        both = PlanBuilder().add_session(
            flat_assignment("alpha", (0, 1)),
            flat_assignment("beta", (2,)),
        ).build()
        result = executor.run_plan(both)
        solo_times = []
        for name, wires in (("alpha", (0, 1)), ("beta", (2,))):
            solo_system = build_system(soc)
            solo_exec = SessionExecutor(solo_system)
            solo = PlanBuilder().add_session(
                flat_assignment(name, wires)
            ).build()
            solo_times.append(solo_exec.run_plan(solo).test_cycles)
        assert result.test_cycles == max(solo_times)
        assert result.test_cycles < sum(solo_times)
