"""Observability is identity-neutral: tracing never changes results.

The contract that lets ``--trace`` stay on in production campaigns:
with observability off, on, or on across a worker pool, every
``RunResult`` serializes to the same bytes and every config hash is
unchanged -- spans observe work, they are not part of it.  The other
half of the contract is that the trace is actually *useful*: a traced
campaign exports valid JSONL whose spans nest (campaign > store
appends, executor phases under the run), and a fault sweep records its
batch dispatches.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.api import Experiment
from repro.api.runner import run_many
from repro.campaign import Campaign
from repro.campaign.hashing import config_hash
from repro.bist.engine import random_detectable_fault
from repro.obs import JsonlSink, read_trace
from repro.soc.library import fig1_soc


@pytest.fixture(autouse=True)
def _no_global_collector():
    obs.shutdown()
    yield
    obs.shutdown()


def _experiments():
    """A mixed grid: simulated runs across two bus widths."""
    return [
        Experiment(fig1_soc(bus_width=width)).with_label(f"w{width}")
        for width in (3, 4)
    ]


def _result_bytes(results):
    return [
        json.dumps(result.to_dict(), sort_keys=True).encode()
        for result in results
    ]


class TestIdentityNeutral:
    def test_results_and_hashes_identical_across_tracing_modes(
        self, tmp_path
    ):
        experiments = _experiments()
        hashes_off = [config_hash(item) for item in experiments]

        plain = run_many(experiments, parallel=False)

        with obs.capture(
            sinks=[JsonlSink(tmp_path / "trace.jsonl")]
        ) as collector:
            traced = run_many(experiments, parallel=False)
            hashes_on = [config_hash(item) for item in experiments]
            parallel = run_many(experiments, parallel=True,
                                max_workers=4)
            collector.close()
        assert collector.spans(), "tracing recorded nothing"

        assert hashes_on == hashes_off
        assert _result_bytes(traced) == _result_bytes(plain)
        assert _result_bytes(parallel) == _result_bytes(plain)

    def test_campaign_stores_identical_records(self, tmp_path):
        """The persisted record's result payload is tracing-invariant."""

        def stored_results(name, traced):
            campaign = Campaign(name, _experiments(),
                                store_dir=tmp_path)
            if traced:
                with obs.capture():
                    campaign.run(parallel=False)
            else:
                campaign.run(parallel=False)
            return [
                json.dumps(record["result"], sort_keys=True)
                for record in campaign.store.records()
            ]

        assert stored_results("plain", False) == \
            stored_results("traced", True)


class TestTraceContents:
    def test_campaign_trace_nests_runs_and_appends(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        campaign = Campaign("traced", _experiments(),
                            store_dir=tmp_path)
        with obs.capture(sinks=[JsonlSink(path)]) as collector:
            campaign.run(parallel=False)
            collector.close()

        spans, metrics = read_trace(path)
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)

        (root,) = by_name["campaign.run"]
        assert root.parent_id is None
        assert root.attrs["campaign"] == "traced"
        assert root.attrs["executed"] == 2

        appends = by_name["store.append"]
        assert len(appends) == 2
        assert all(s.parent_id == root.span_id for s in appends)

        # Executor phases nest under their session span.
        sessions = {s.span_id for s in by_name["executor.session"]}
        assert sessions
        for phase in ("executor.compile", "executor.capture"):
            assert all(s.parent_id in sessions for s in by_name[phase])

        assert metrics["histograms"]["campaign.record_s"]["count"] == 2

    def test_fault_sweep_records_batch_dispatches(self):
        soc = fig1_soc()
        clean = soc.core_named("core2").build_scannable()
        fault = {"core2": random_detectable_fault(clean, seed=3)}
        base = Experiment(soc)
        experiments = [base, base.with_faults(fault)]

        with obs.capture() as collector:
            results = run_many(experiments, parallel=False)
        assert results[0].passed and not results[1].passed

        names = [span.name for span in collector.spans()]
        assert "batch.run" in names
        dispatches = [
            span for span in collector.spans()
            if span.name == "batch.dispatch"
        ]
        assert dispatches
        assert all(s.attrs["scenarios"] == 2 for s in dispatches)
        histograms = collector.metrics.snapshot()["histograms"]
        assert histograms["batch.scenarios_per_dispatch"]["max"] == 2
