"""Golden equivalence: the vectorized batch kernel vs both scalar
backends.

The batch executor (:mod:`repro.sim.batch`) lowers one compiled
program geometry plus N scenario variants into packed word arrays and
executes the whole batch per dispatch.  Its contract is
*fresh-instance semantics*: element ``i`` of a batch run must be
byte-identical to a fresh :class:`~repro.sim.session.SessionExecutor`
over ``scenarios[i]`` -- cycle counts, pass/fail, mismatch counters,
detail strings and captured syndromes alike -- on the scalar kernel
and the legacy object-stepping executor.  These tests pin that on the
fig-1 SoC (scan, BIST, external and hierarchical victims), through
the public entry points (``backend="batch"``, ``run_batch``,
``run_many``), and as a hypothesis property over generated SoCs and
mixed-kind defect scenarios (transport defects exercise the
per-scenario fallback path).
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bist.engine import random_detectable_fault
from repro.core.tam import CasBusTamDesign
from repro.diagnose.inject import random_scenario
from repro.sim.batch import BatchExecutor
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.soc.itc02 import random_soc
from repro.soc.library import fig1_soc


def _plan(soc):
    return CasBusTamDesign.for_soc(soc).executable_plan()


def _fig1_scenarios():
    """Clean plus one detectable stuck-at per victim kind."""
    soc = fig1_soc()
    scenarios = [None]
    for victim, seed in (
        ("core2", 3),          # scan, multi-chain
        ("core3", 7),          # BIST
        ("core4", 2),          # external LFSR/MISR
    ):
        clean = soc.core_named(victim).build_scannable()
        scenarios.append({victim: random_detectable_fault(clean,
                                                          seed=seed)})
    inner = soc.core_named("core5").inner.core_named("core5b")
    scenarios.append({
        "core5/core5b": random_detectable_fault(
            inner.build_scannable(), seed=9
        ),
    })
    return soc, scenarios


def _scalar_reference(soc, plan, scenarios, *, backend,
                      capture_syndromes=False):
    """One fresh scalar executor per scenario (the contract's RHS)."""
    results = []
    for scenario in scenarios:
        faults = scenario if isinstance(scenario, dict) else None
        system = (build_system(soc, inject_faults=faults)
                  if faults is not None or scenario is None
                  else None)
        if system is None:
            from repro.diagnose.inject import build_faulty_system

            system = build_faulty_system(soc, scenario)
        executor = SessionExecutor(
            system, backend=backend,
            capture_syndromes=capture_syndromes,
        )
        results.append(executor.run_plan(plan))
    return results


class TestFig1BatchEquivalence:
    @pytest.mark.parametrize("backend", ["kernel", "legacy"])
    def test_batch_matches_scalar_backends(self, backend):
        soc, scenarios = _fig1_scenarios()
        plan = _plan(soc)
        batch = BatchExecutor(soc).run_batch(plan, scenarios)
        scalar = _scalar_reference(soc, plan, scenarios, backend=backend)
        assert batch == scalar
        assert batch[0].passed
        assert not any(result.passed for result in batch[1:])

    @pytest.mark.parametrize("backend", ["kernel", "legacy"])
    def test_syndrome_capture_is_bit_exact(self, backend):
        soc, scenarios = _fig1_scenarios()
        plan = _plan(soc)
        batch = BatchExecutor(soc, capture_syndromes=True).run_batch(
            plan, scenarios
        )
        scalar = _scalar_reference(
            soc, plan, scenarios, backend=backend,
            capture_syndromes=True,
        )
        assert batch == scalar
        failing = [
            core
            for result in batch[1:]
            for core in result.core_results()
            if not core.passed
        ]
        assert failing
        assert all(core.syndrome is not None for core in failing)

    def test_mismatch_counts_are_bit_exact(self):
        soc, scenarios = _fig1_scenarios()
        plan = _plan(soc)
        batch = BatchExecutor(soc).run_batch(plan, scenarios)
        scalar = _scalar_reference(soc, plan, scenarios,
                                   backend="kernel")
        for result_b, result_s in zip(batch, scalar):
            for core_b, core_s in zip(
                result_b.core_results(), result_s.core_results()
            ):
                assert core_b.mismatches == core_s.mismatches
                assert core_b.bits_compared == core_s.bits_compared
                assert core_b.detail == core_s.detail

    def test_transport_defects_fall_back_per_scenario(self):
        """Non-stuck-at scenarios cannot overlay the shared template:
        they must take the fresh-executor fallback and still match."""
        from repro.diagnose.inject import DefectScenario

        soc = fig1_soc()
        plan = _plan(soc)
        scenarios = [
            None,
            DefectScenario.open_wire(1),
            DefectScenario.stuck_at("core2", 3, 1),
        ]
        batch = BatchExecutor(soc).run_batch(plan, scenarios)
        # "auto": a transport-defective system is not kernel-supported,
        # so a pinned scalar backend would refuse what the fallback
        # path legitimately runs on the legacy executor.
        scalar = _scalar_reference(soc, plan, scenarios, backend="auto")
        assert batch == scalar


class TestEntryPoints:
    def test_backend_batch_single_run(self):
        soc = fig1_soc()
        plan = _plan(soc)
        fault = {"core2": random_detectable_fault(
            soc.core_named("core2").build_scannable(), seed=3
        )}
        results = {
            backend: SessionExecutor(
                build_system(soc, inject_faults=fault), backend=backend
            ).run_plan(plan)
            for backend in ("legacy", "kernel", "batch", "auto")
        }
        assert (results["batch"] == results["kernel"]
                == results["legacy"] == results["auto"])

    def test_session_executor_run_batch(self):
        soc, scenarios = _fig1_scenarios()
        plan = _plan(soc)
        executor = SessionExecutor(build_system(soc), backend="batch")
        batch = executor.run_batch(plan, scenarios)
        assert batch == _scalar_reference(soc, plan, scenarios,
                                          backend="kernel")

    def test_run_batch_legacy_backend_loops(self):
        """A pinned scalar backend never takes the batch path, but the
        entry point still answers with identical results."""
        soc, scenarios = _fig1_scenarios()
        plan = _plan(soc)
        executor = SessionExecutor(build_system(soc), backend="legacy")
        batch = executor.run_batch(plan, scenarios[:3])
        assert batch == _scalar_reference(
            soc, plan, scenarios[:3], backend="legacy"
        )

    def test_run_many_routes_fault_sweeps(self):
        from repro.api import Experiment
        from repro.api.runner import _batch_partition, run_many

        soc, scenarios = _fig1_scenarios()
        base = Experiment(soc)
        experiments = [
            base if scenario is None else base.with_faults(scenario)
            for scenario in scenarios
        ]
        grouped, rest = _batch_partition(experiments)
        assert [len(group) for group in grouped] == [len(experiments)]
        assert rest == []
        batched = run_many(experiments, parallel=False)
        reference = [item.run() for item in experiments]
        assert batched == reference

    def test_experiment_backend_batch(self):
        from repro.api import Experiment

        experiment = Experiment(fig1_soc()).with_backend("batch")
        assert experiment.run() == (
            Experiment(fig1_soc()).with_backend("kernel").run()
        )


_SOC_SEEDS = st.integers(min_value=0, max_value=7)
_SCENARIO_SEEDS = st.lists(
    st.integers(min_value=0, max_value=63),
    min_size=1, max_size=5,
)

_PROPERTY_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestBatchProperty:
    @given(soc_seed=_SOC_SEEDS, scenario_seeds=_SCENARIO_SEEDS)
    @_PROPERTY_SETTINGS
    def test_batch_equals_fresh_scalar_runs(self, soc_seed,
                                            scenario_seeds):
        """Random geometry, random mixed-kind scenario batch: the
        batch dispatch is byte-identical to fresh per-scenario scalar
        executors (stuck-at scenarios on the vector path, transport
        defects through the fallback)."""
        soc = random_soc(soc_seed, num_cores=4, bus_width=4)
        plan = _plan(soc)
        scenarios = [None] + [
            random_scenario(soc, seed) for seed in scenario_seeds
        ]
        batch = BatchExecutor(soc, capture_syndromes=True).run_batch(
            plan, scenarios
        )
        scalar = _scalar_reference(
            soc, plan, scenarios, backend="auto",
            capture_syndromes=True,
        )
        assert batch == scalar
