"""Integration: compiled controller programs configure real systems."""

from __future__ import annotations

from repro.core.instruction import CHAIN_CODE
from repro.sim.program import (
    compile_configuration_program,
    configuration_report,
    replay_program,
)
from repro.sim.system import build_system
from repro.soc.library import fig1_soc, small_soc


class TestCompileAndReplay:
    def test_program_equivalent_to_direct_configuration(self):
        targets = {"alpha.cas": 3, "beta.cas": 2}
        direct = build_system(small_soc())
        direct_cycles = direct.run_configuration(targets)

        replayed = build_system(small_soc())
        program = compile_configuration_program(replayed, targets)
        replay_cycles = replay_program(replayed, program)

        assert replay_cycles == direct_cycles == len(program)
        for path, want in targets.items():
            name = path.split(".")[0]
            assert replayed.node_at((name,)).cas.active_code == want
            assert direct.node_at((name,)).cas.active_code == want

    def test_program_reaches_hierarchy(self):
        system = build_system(fig1_soc())
        targets = {"core5/core5a.cas": 2}
        program = compile_configuration_program(system, targets)
        replay_program(system, program)
        assert system.node_at(("core5", "core5a")).cas.active_code == 2

    def test_two_stage_splice_via_programs(self):
        """The CHAIN splice works as two compiled programs."""
        system = build_system(small_soc())
        stage_a = compile_configuration_program(
            system, {"alpha.cas": CHAIN_CODE}
        )
        replay_program(system, stage_a)
        assert system.node_at(("alpha",)).cas.active_code == CHAIN_CODE
        stage_b = compile_configuration_program(
            system, {"alpha.cas": 0, "alpha.wir": 2}
        )
        # Stage B's chain is longer: alpha's WIR is spliced in.
        assert len(stage_b) == len(stage_a) + 3
        replay_program(system, stage_b)
        node = system.node_at(("alpha",))
        assert node.wrapper.mode == "INTEST"
        assert node.cas.active_code == 0

    def test_report_mentions_shifts_and_updates(self):
        system = build_system(small_soc())
        program = compile_configuration_program(system, {"alpha.cas": 1})
        text = configuration_report(program)
        assert "shift cycles" in text
        assert "update pulses" in text

    def test_program_length_is_chain_plus_update(self):
        system = build_system(fig1_soc())
        program = compile_configuration_program(system, {})
        chain_bits = sum(r.width for r in system.serial_layout())
        assert len(program) == chain_bits + 1
