"""Integration: PODEM-backed test sets through the simulated CAS-BUS."""

from __future__ import annotations

from repro.sim.plan import PlanBuilder, flat_assignment
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.soc.core import CoreSpec
from repro.soc.soc import SocSpec


def _soc(deterministic: bool) -> SocSpec:
    soc = SocSpec(
        name="det",
        bus_width=3,
        cores=(
            CoreSpec.scan("dut", seed=7, num_ffs=12, num_chains=2,
                          num_pis=3, num_pos=3, atpg_max_patterns=48,
                          atpg_deterministic=deterministic),
        ),
    )
    soc.validate()
    return soc


class TestDeterministicAtpgThroughTam:
    def test_session_passes_with_podem_patterns(self):
        executor = SessionExecutor(build_system(_soc(True)))
        plan = PlanBuilder().add_session(
            flat_assignment("dut", (0, 1))
        ).build()
        result = executor.run_plan(plan)
        assert result.passed
        test_set = executor._test_sets["dut"]
        assert test_set.untestable_faults > 0
        assert test_set.effective_coverage >= 0.9

    def test_fault_detected_with_podem_patterns(self):
        from repro.bist.engine import random_detectable_fault

        soc = _soc(True)
        clean = soc.core_named("dut").build_scannable()
        fault = random_detectable_fault(clean, seed=5)
        executor = SessionExecutor(
            build_system(soc, inject_faults={"dut": fault})
        )
        plan = PlanBuilder().add_session(
            flat_assignment("dut", (0, 1))
        ).build()
        result = executor.run_plan(plan)
        assert not result.passed

    def test_deterministic_spec_flag_round_trips(self):
        assert _soc(True).core_named("dut").atpg_deterministic
        assert not _soc(False).core_named("dut").atpg_deterministic
