"""Integration: sessions run identically with gate-level CASes.

The strongest cross-layer check: selected CASes are instantiated from
their generated netlists (four-valued gate simulation) inside the live
system, and whole test programs must produce bit-identical outcomes
and cycle counts versus the behavioural models.
"""

from __future__ import annotations

import pytest

from repro import values as lv
from repro.bist.engine import random_detectable_fault
from repro.core.gatelevel import GateLevelCoreAccessSwitch
from repro.core.generator import generate_cas
from repro.errors import ConfigurationError
from repro.sim.plan import PlanBuilder, flat_assignment
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.soc.library import small_soc


class TestGateLevelCasUnit:
    @pytest.fixture(scope="class")
    def pair(self):
        from repro.core.cas import CoreAccessSwitch

        design = generate_cas(3, 1)
        return (CoreAccessSwitch(design.iset, name="beh"),
                GateLevelCoreAccessSwitch(design, name="gate"))

    def test_power_on_state_matches(self, pair):
        behavioural, gates = pair
        behavioural.reset()
        gates.reset()
        assert gates.active_code == behavioural.active_code == 0
        assert gates.shift_register == behavioural.shift_register

    def test_shift_sequence_matches(self, pair):
        behavioural, gates = pair
        behavioural.reset()
        gates.reset()
        stream = [1, 0, 1, 1, 0, 0, 1]
        for bit in stream:
            assert gates.shift(bit) == behavioural.shift(bit)
        assert gates.shift_register == behavioural.shift_register

    def test_update_and_route_match(self, pair):
        behavioural, gates = pair
        for code in range(gates.iset.m):
            behavioural.reset()
            gates.reset()
            behavioural.load_code(code)
            gates.load_code(code)
            assert gates.update() == behavioural.update() == code
            for e_pattern in range(8):
                e = tuple(
                    lv.ONE if e_pattern >> w & 1 else lv.ZERO
                    for w in range(3)
                )
                for ret in (lv.ZERO, lv.ONE):
                    got = gates.route(e, (ret,))
                    want = behavioural.route(e, (ret,))
                    assert got == want, (code, e, ret)

    def test_config_mode_routes_serial_chain(self, pair):
        behavioural, gates = pair
        behavioural.reset()
        gates.reset()
        behavioural.load_code(0b101)
        gates.load_code(0b101)
        e = (lv.ONE, lv.ZERO, lv.ONE)
        got = gates.route(e, (lv.ZERO,), config=True)
        want = behavioural.route(e, (lv.ZERO,), config=True)
        assert got.s[0] == want.s[0] == lv.ONE
        assert got.o == want.o == (lv.Z,)

    def test_strict_update_rejects_invalid(self):
        design = generate_cas(4, 2)  # m=14 < 16: codes 14,15 invalid
        gates = GateLevelCoreAccessSwitch(design, strict=True)
        gates.load_code(15)
        with pytest.raises(ConfigurationError):
            gates.update()

    def test_lenient_update_degrades_to_bypass(self):
        design = generate_cas(4, 2)
        gates = GateLevelCoreAccessSwitch(design, strict=False)
        gates.load_code(15)
        assert gates.update() == 0


class TestGateLevelInSystem:
    def _run(self, gate_level):
        soc = small_soc()
        system = build_system(soc, gate_level=gate_level)
        executor = SessionExecutor(system)
        plan = (PlanBuilder()
                .add_session(flat_assignment("alpha", (0, 1)),
                             flat_assignment("beta", (2,)))
                .add_session(flat_assignment("alpha", (2, 0)))
                .build())
        return executor.run_plan(plan)

    def test_session_identical_with_gate_level_cas(self):
        behavioural = self._run(gate_level=None)
        gate_backed = self._run(gate_level={"alpha"})
        assert gate_backed.passed
        assert gate_backed.total_cycles == behavioural.total_cycles
        for a, b in zip(behavioural.core_results(),
                        gate_backed.core_results()):
            assert (a.name, a.passed, a.bits_compared, a.mismatches) == \
                (b.name, b.passed, b.bits_compared, b.mismatches)

    def test_all_cas_gate_level(self):
        result = self._run(gate_level={"alpha", "beta"})
        assert result.passed

    def test_fault_detected_through_gate_level_cas(self):
        soc = small_soc()
        clean = soc.core_named("alpha").build_scannable()
        fault = random_detectable_fault(clean, seed=1)
        system = build_system(soc, inject_faults={"alpha": fault},
                              gate_level={"alpha"})
        executor = SessionExecutor(system)
        plan = PlanBuilder().add_session(
            flat_assignment("alpha", (0, 1))
        ).build()
        result = executor.run_plan(plan)
        assert not result.passed
