"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.instruction import InstructionSet


@pytest.fixture(scope="session")
def iset_4_2() -> InstructionSet:
    """The workhorse small instruction set: N=4, P=2, m=14, k=4."""
    return InstructionSet(4, 2)


@pytest.fixture(scope="session")
def iset_3_1() -> InstructionSet:
    """The smallest Table 1 configuration: N=3, P=1, m=5, k=3."""
    return InstructionSet(3, 1)
