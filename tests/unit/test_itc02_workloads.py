"""Unit tests for the ITC'02-style workload family and the named
workload registry."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.soc.core import CoreTestParams, TestMethod
from repro.soc import itc02


class TestTables:
    @pytest.mark.parametrize("name,count", [
        ("d695", 10), ("g1023", 14), ("p22810", 28), ("h953", 8),
        ("t512505", 31), ("p93791", 110),
    ])
    def test_family_members_well_formed(self, name, count):
        cores = itc02.workload(name)
        assert len(cores) == count
        assert len({core.name for core in cores}) == count
        for core in cores:
            assert isinstance(core, CoreTestParams)
            if core.method == TestMethod.BIST:
                assert core.fixed_cycles and core.fixed_cycles > 0
                assert core.max_wires == 1
            else:
                assert core.flops > 0 and core.patterns > 0
                assert core.max_wires >= 1

    def test_named_helpers_match_workload(self):
        assert itc02.d695_like() == itc02.workload("d695")
        assert itc02.g1023_like() == itc02.workload("g1023")
        assert itc02.p22810_like() == itc02.workload("p22810")
        assert itc02.h953_like() == itc02.workload("h953")
        assert itc02.t512505_like() == itc02.workload("t512505")
        assert itc02.p93791_like() == itc02.workload("p93791")

    def test_h953_is_bist_dominated(self):
        cores = itc02.h953_like()
        bist = [c for c in cores if c.method == TestMethod.BIST]
        assert len(bist) > len(cores) / 2

    def test_industrial_tables_have_scale(self):
        """The portfolio's targets: a dominant monster core in
        t512505, 100+ cores with a dozen BIST blocks in p93791."""
        t512505 = itc02.t512505_like()
        tallest = max(t512505, key=lambda core: core.flops)
        others = [core.flops for core in t512505 if core is not tallest]
        assert tallest.flops > 4 * max(others)
        p93791 = itc02.p93791_like()
        assert len(p93791) >= 100
        bist = [c for c in p93791 if c.method == TestMethod.BIST]
        assert len(bist) >= 10

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="known:"):
            itc02.workload("z9999")
        with pytest.raises(ConfigurationError, match="known:"):
            itc02.benchmark_soc("z9999")


class TestSeededRandomness:
    def test_params_deterministic_by_seed(self):
        assert itc02.random_test_params(7) == itc02.random_test_params(7)
        assert (itc02.random_test_params(7)
                != itc02.random_test_params(8))

    def test_params_accept_caller_rng(self):
        a = itc02.random_test_params(random.Random(11), num_cores=5)
        b = itc02.random_test_params(random.Random(11), num_cores=5)
        assert a == b

    def test_caller_rng_not_module_global(self):
        """Passing a Random never touches module-global random state."""
        random.seed(123)
        before = random.getstate()
        itc02.random_test_params(random.Random(2))
        itc02.random_soc(random.Random(2))
        assert random.getstate() == before

    def test_shared_rng_yields_distinct_workloads(self):
        """Successive draws from one caller-owned generator must not
        collide on names or per-core seeds."""
        rng = random.Random(99)
        socs = [itc02.random_soc(rng, num_cores=4) for _ in range(3)]
        assert len({soc.name for soc in socs}) == 3
        seeds = [tuple(core.seed for core in soc.cores) for soc in socs]
        assert len(set(seeds)) == 3
        tables = [itc02.random_test_params(rng) for _ in range(3)]
        assert len({table[0].name for table in tables}) == 3

    def test_random_soc_deterministic(self):
        a = itc02.random_soc(3, num_cores=6)
        b = itc02.random_soc(3, num_cores=6)
        assert a.describe() == b.describe()
        assert [c.seed for c in a.cores] == [c.seed for c in b.cores]


class TestSimulatableSocs:
    @pytest.mark.parametrize("name", itc02.benchmark_names())
    def test_benchmark_socs_validate(self, name):
        soc = itc02.benchmark_soc(name)
        soc.validate()
        # Industrial tables sample down to the simulatable cap.
        assert len(soc.cores) == min(32, len(itc02.workload(name)))
        assert all(core.p <= soc.bus_width for core in soc.cores)

    def test_benchmark_soc_preserves_method_mix(self):
        table = itc02.workload("h953")
        soc = itc02.benchmark_soc("h953")
        for params, spec in zip(table, soc.cores):
            assert params.name == spec.name
            assert (params.method == TestMethod.BIST) == (
                spec.method == TestMethod.BIST
            )

    def test_random_soc_simulates_and_passes(self):
        from repro.core.tam import CasBusTamDesign

        soc = itc02.random_soc(1, num_cores=5, bus_width=6)
        result = CasBusTamDesign.for_soc(soc).run()
        assert result.passed

    def test_random_soc_needs_a_core(self):
        with pytest.raises(ConfigurationError):
            itc02.random_soc(1, num_cores=0)


class TestWorkloadRegistry:
    def test_builtins_registered(self):
        from repro.api import list_workloads

        names = list_workloads()
        for member in itc02.benchmark_names():
            assert f"itc02-{member}" in names
            assert f"itc02-{member}-soc" in names
        assert "fig1" in names and "small" in names

    def test_get_workload_names_tables(self):
        from repro.api import get_workload

        workload = get_workload("itc02-p22810")
        assert workload.name == "itc02-p22810"
        assert len(workload.cores) == 28
        assert workload.soc is None  # abstract table

    def test_soc_workloads_are_simulatable(self):
        from repro.api import get_workload

        workload = get_workload("itc02-d695-soc")
        assert workload.soc is not None
        assert workload.bus_width == workload.soc.bus_width

    def test_aliases_resolve(self):
        from repro.api import get_workload

        assert get_workload("d695").cores == get_workload(
            "itc02-d695").cores

    def test_experiment_accepts_workload_names(self):
        from repro.api import Experiment

        result = (Experiment("itc02-h953")
                  .with_bus_width(8)
                  .run())
        assert result.source == "model"
        assert result.workload == "itc02-h953"

    def test_unknown_workload_suggests(self):
        from repro.api import get_workload

        with pytest.raises(ConfigurationError, match="workload"):
            get_workload("itc02-z9999")

    def test_run_matrix_accepts_bare_name(self):
        from repro.api import run_matrix

        results = run_matrix("itc02-d695", bus_widths=(8,),
                             parallel=False)
        assert len(results) == 1
        assert results[0].workload == "itc02-d695"

    def test_run_matrix_spans_workloads(self):
        from repro.api import run_matrix

        results = run_matrix(
            ["itc02-d695", "itc02-h953"],
            architectures=("casbus", "daisy-chain"),
            bus_widths=(8,),
            parallel=False,
        )
        assert len(results) == 4
        assert {r.workload for r in results} == {
            "itc02-d695", "itc02-h953"
        }
        assert {r.architecture for r in results} == {
            "casbus", "daisy-chain"
        }
