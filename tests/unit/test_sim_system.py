"""Unit tests for the system assembly and the serial config chain."""

from __future__ import annotations

import pytest

from repro import values as lv
from repro.errors import ConfigurationError
from repro.core.instruction import BYPASS_CODE, CHAIN_CODE
from repro.soc.core import CoreSpec
from repro.soc.library import fig1_soc, small_soc
from repro.soc.soc import SocSpec
from repro.sim.nodes import BistNode, HierNode, ScanNode
from repro.sim.system import build_system


class TestBuild:
    def test_small_soc_nodes(self):
        system = build_system(small_soc())
        assert [type(n) for n in system.nodes] == [ScanNode, ScanNode]
        assert system.n == 3

    def test_fig1_node_types(self):
        system = build_system(fig1_soc())
        kinds = {n.path: type(n).__name__ for n in system.nodes}
        assert kinds["core3"] == "BistNode"
        assert kinds["core4"] == "ExternalNode"
        assert kinds["core5"] == "HierNode"

    def test_walk_includes_inner_nodes(self):
        system = build_system(fig1_soc())
        paths = [node.path for node in system.walk()]
        assert "core5/core5a" in paths
        assert "core5/core5b" in paths

    def test_node_at_hierarchy(self):
        system = build_system(fig1_soc())
        node = system.node_at(("core5", "core5b"))
        assert node.path == "core5/core5b"
        with pytest.raises(ConfigurationError):
            system.node_at(("core5", "missing"))
        with pytest.raises(ConfigurationError):
            system.node_at(("core1", "oops"))  # core1 not hierarchical

    def test_fault_injection_routing(self):
        system = build_system(
            fig1_soc(),
            inject_faults={"core1": (5, 1), "core5/core5a": (3, 0)},
        )
        core1 = system.node_at(("core1",))
        inner = system.node_at(("core5", "core5a"))
        assert core1.wrapper.core.fault == (5, 1)
        assert inner.wrapper.core.fault == (3, 0)
        clean = system.node_at(("core2",))
        assert clean.wrapper.core.fault is None


class TestSerialChain:
    def test_layout_without_splices(self):
        system = build_system(small_soc())
        layout = system.serial_layout()
        assert [reg.kind for reg in layout] == ["cas", "cas"]

    def test_layout_grows_when_spliced(self):
        system = build_system(small_soc())
        system.run_configuration({"alpha.cas": CHAIN_CODE})
        layout = system.serial_layout()
        assert [reg.path for reg in layout] == [
            "alpha.cas", "alpha.wir", "beta.cas"
        ]

    def test_hierarchical_layout_order(self):
        system = build_system(fig1_soc())
        paths = [reg.path for reg in system.serial_layout()]
        index_outer = paths.index("core5.cas")
        index_a = paths.index("core5/core5a.cas")
        index_next = paths.index("core6.cas")
        assert index_outer < index_a < index_next

    def test_configuration_loads_all_levels(self):
        system = build_system(fig1_soc())
        cycles = system.run_configuration({
            "core1.cas": BYPASS_CODE,
            "core5/core5a.cas": 2,
        })
        inner = system.node_at(("core5", "core5a"))
        assert inner.cas.active_code == 2
        layout_bits = sum(r.width for r in system.serial_layout())
        assert cycles == layout_bits + 1

    def test_unknown_target_rejected(self):
        system = build_system(small_soc())
        with pytest.raises(ConfigurationError, match="not on the chain"):
            system.config_stream({"alpha.wir": 2})

    def test_wir_target_after_splice(self):
        system = build_system(small_soc())
        system.run_configuration({"alpha.cas": CHAIN_CODE})
        system.run_configuration({"alpha.cas": BYPASS_CODE,
                                  "alpha.wir": 2})
        node = system.node_at(("alpha",))
        assert node.wrapper.mode == "INTEST"
        assert node.cas.active_code == BYPASS_CODE
        # Splice gone again.
        assert len(system.serial_layout()) == 2

    def test_untouched_registers_hold_value(self):
        system = build_system(small_soc())
        system.run_configuration({"alpha.cas": 3})
        system.run_configuration({"beta.cas": 2})
        assert system.node_at(("alpha",)).cas.active_code == 3
        assert system.node_at(("beta",)).cas.active_code == 2


class TestBusTransport:
    def test_bypass_system_is_transparent(self):
        system = build_system(small_soc())
        bus_in = (lv.ONE, lv.ZERO, lv.ONE)
        assert system.route_bus(bus_in, config=False) == bus_in

    def test_config_mode_puts_chain_on_wire0(self):
        system = build_system(small_soc())
        out = system.route_bus((lv.ONE, lv.ZERO, lv.ZERO), config=True)
        # Wire 0 carries the chain's serial out (a 0/1, never Z).
        assert out[0] in (lv.ZERO, lv.ONE)
        assert out[1:] == (lv.ZERO, lv.ZERO)

    def test_describe_lists_all_nodes(self):
        text = build_system(fig1_soc()).describe()
        assert "core5/core5a" in text
        assert "BYPASS" in text


class TestStrictness:
    def test_duplicate_core_names_rejected_at_build(self):
        core = CoreSpec.bist("x", seed=1)
        soc = SocSpec(name="bad", bus_width=2, cores=(core, core))
        with pytest.raises(ConfigurationError):
            build_system(soc)
