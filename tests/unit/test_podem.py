"""Unit and property tests for the PODEM deterministic ATPG."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.scan.atpg import generate_test_set
from repro.scan.core_model import CombCloud, CombOp, ScannableCore
from repro.scan.fault_sim import run_fault_simulation
from repro.scan.faults import Fault, all_stuck_at_faults
from repro.scan.podem import (
    ABORTED,
    TESTABLE,
    UNTESTABLE,
    PodemAtpg,
    podem_pattern,
)


def _brute_force_detectable(cloud: CombCloud, fault: Fault) -> bool:
    for bits in itertools.product((0, 1), repeat=cloud.num_inputs):
        good = cloud.evaluate_words(list(bits), mask=1)
        bad = cloud.evaluate_words(
            list(bits), mask=1, fault=(fault.node, fault.stuck_value)
        )
        if good != bad:
            return True
    return False


def _and_tree_cloud(width: int) -> CombCloud:
    """A wide AND: the classic random-pattern-resistant structure."""
    ops = [CombOp("AND", 0, 1)]
    node = width
    for index in range(2, width):
        ops.append(CombOp("AND", node, index))
        node += 1
    return CombCloud(num_inputs=width, ops=ops, outputs=[node])


class TestKnownStructures:
    def test_and_output_sa0_needs_all_ones(self):
        cloud = _and_tree_cloud(6)
        fault = Fault(node=cloud.num_nodes - 1, stuck_value=0)
        result = PodemAtpg(cloud).generate(fault)
        assert result.verdict == TESTABLE
        # The cube must set every input to 1.
        assert all(result.assignment.get(i) == 1 for i in range(6))

    def test_redundant_fault_proven_untestable(self):
        # f = a AND (NOT a): constant 0 -- SA0 at the output is
        # undetectable.
        cloud = CombCloud(
            num_inputs=1,
            ops=[CombOp("NOT", 0), CombOp("AND", 0, 1)],
            outputs=[2],
        )
        fault = Fault(node=2, stuck_value=0)
        result = PodemAtpg(cloud).generate(fault)
        assert result.verdict == UNTESTABLE

    def test_unobservable_node_untestable(self):
        # Node 1 (NOT a) feeds nothing observable.
        cloud = CombCloud(
            num_inputs=2,
            ops=[CombOp("NOT", 0), CombOp("BUF", 1)],
            outputs=[3],
        )
        result = PodemAtpg(cloud).generate(Fault(node=2, stuck_value=0))
        assert result.verdict == UNTESTABLE

    def test_xor_path_sensitisation(self):
        cloud = CombCloud(
            num_inputs=2,
            ops=[CombOp("XOR", 0, 1)],
            outputs=[2],
        )
        for stuck in (0, 1):
            result = PodemAtpg(cloud).generate(Fault(node=0,
                                                     stuck_value=stuck))
            assert result.verdict == TESTABLE

    def test_fault_node_out_of_range(self):
        cloud = _and_tree_cloud(3)
        with pytest.raises(ConfigurationError):
            PodemAtpg(cloud).generate(Fault(node=99, stuck_value=0))


class TestExactnessProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_verdicts_match_brute_force(self, seed):
        """PODEM == exhaustive truth on every fault of a random cloud."""
        cloud = CombCloud.random(num_inputs=4, num_ops=9,
                                 num_outputs=3, seed=seed)
        engine = PodemAtpg(cloud, backtrack_limit=512)
        for fault in all_stuck_at_faults(cloud):
            result = engine.generate(fault)
            truth = _brute_force_detectable(cloud, fault)
            assert result.verdict != ABORTED
            assert (result.verdict == TESTABLE) == truth, fault
            if result.verdict == TESTABLE:
                bits = [result.assignment.get(i, 0)
                        for i in range(cloud.num_inputs)]
                good = cloud.evaluate_words(bits, mask=1)
                bad = cloud.evaluate_words(
                    bits, mask=1, fault=(fault.node, fault.stuck_value)
                )
                assert good != bad, "returned cube does not detect"


class TestCoreIntegration:
    def _resistant_core(self) -> ScannableCore:
        """A core whose fault universe includes a wide AND cone.

        Inputs: 2 PIs + 10 FFs.  Next-state: each FF reloads itself
        (BUF); the single PO is the AND of all 12 inputs -- activating
        a SA0 on the cone output needs the all-ones pattern
        (probability 2^-12 per random try).
        """
        width = 12
        num_ffs = width - 2
        ops = [CombOp("AND", 0, 1)]
        node = width
        for index in range(2, width):
            ops.append(CombOp("AND", node, index))
            node += 1
        and_output = node
        d_nodes = []
        for ff_input in range(2, width):
            ops.append(CombOp("BUF", ff_input))
            node += 1
            d_nodes.append(node)
        cloud = CombCloud(
            num_inputs=width,
            ops=ops,
            outputs=d_nodes + [and_output],
        )
        return ScannableCore(
            name="resistant",
            cloud=cloud,
            num_pis=2,
            num_pos=1,
            chains=[list(range(num_ffs))],
        )

    def test_podem_pattern_detects_target(self):
        core = self._resistant_core()
        fault = Fault(node=core.cloud.num_nodes - 1, stuck_value=0)
        pattern, verdict = podem_pattern(core, fault)
        assert verdict == TESTABLE
        sim = run_fault_simulation(core, [pattern], [fault])
        assert fault in sim.detected

    def test_topup_beats_random_on_resistant_logic(self):
        core = self._resistant_core()
        random_only = generate_test_set(core, seed=2, max_patterns=48)
        topped = generate_test_set(core, seed=2, max_patterns=64,
                                   deterministic_topup=True)
        assert topped.fault_coverage > random_only.fault_coverage
        # The all-ones activation exists, so the AND-cone SA0 faults
        # are found deterministically.
        assert topped.effective_coverage == pytest.approx(1.0)

    def test_topup_proves_redundancy_on_random_cores(self):
        core = ScannableCore.generate(
            "dut", seed=3, num_pis=3, num_pos=2, num_ffs=12,
            num_chains=3,
        )
        topped = generate_test_set(core, seed=5, max_patterns=128,
                                   deterministic_topup=True)
        assert topped.untestable_faults > 0
        assert topped.effective_coverage >= 0.95
        # Book-keeping is consistent.
        assert (topped.detected_faults + topped.untestable_faults
                + topped.aborted_faults <= topped.total_faults)

    def test_responses_stay_consistent_with_patterns(self):
        core = ScannableCore.generate(
            "dut", seed=9, num_pis=2, num_pos=2, num_ffs=8,
            num_chains=2,
        )
        topped = generate_test_set(core, seed=1, max_patterns=64,
                                   deterministic_topup=True)
        assert len(topped.patterns) == len(topped.responses)
