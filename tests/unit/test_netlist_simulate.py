"""Unit tests for the four-valued event-driven netlist simulator."""

from __future__ import annotations

import pytest

from repro import values as lv
from repro.errors import SimulationError
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import NetlistSimulator


def _xor_netlist() -> Netlist:
    nl = Netlist(name="xor")
    a = nl.add_input("a")
    b = nl.add_input("b")
    y = nl.add_output("y")
    nl.add_gate("XOR", (a, b), y)
    return nl


class TestCombinational:
    def test_xor_truth_table(self):
        sim = NetlistSimulator(_xor_netlist())
        for a, b in ((0, 0), (0, 1), (1, 0), (1, 1)):
            sim.set_inputs({"a": a, "b": b})
            assert sim.read("y") == a ^ b

    def test_multi_level_propagation(self):
        nl = Netlist(name="chain")
        a = nl.add_input("a")
        nl.add_output("y")
        nl.add_gate("INV", (a,), "n1")
        nl.add_gate("INV", ("n1",), "n2")
        nl.add_gate("INV", ("n2",), "y")
        sim = NetlistSimulator(nl)
        sim.set_input("a", lv.ZERO)
        assert sim.read("y") == lv.ONE
        sim.set_input("a", lv.ONE)
        assert sim.read("y") == lv.ZERO

    def test_x_propagates(self):
        sim = NetlistSimulator(_xor_netlist())
        sim.set_inputs({"a": lv.X, "b": lv.ONE})
        assert sim.read("y") == lv.X

    def test_read_unknown_net_raises(self):
        sim = NetlistSimulator(_xor_netlist())
        with pytest.raises(SimulationError):
            sim.read("nope")

    def test_driving_non_input_raises(self):
        sim = NetlistSimulator(_xor_netlist())
        with pytest.raises(SimulationError):
            sim.set_input("y", lv.ONE)

    def test_bad_value_rejected(self):
        sim = NetlistSimulator(_xor_netlist())
        with pytest.raises(SimulationError):
            sim.set_input("a", 7)


class TestTristate:
    def _bus(self) -> Netlist:
        nl = Netlist(name="bus")
        for name in ("d0", "d1", "en0", "en1"):
            nl.add_input(name)
        nl.add_output("y")
        nl.add_gate("TRIBUF", ("d0", "en0"), "y")
        nl.add_gate("TRIBUF", ("d1", "en1"), "y")
        return nl

    def test_single_driver_wins(self):
        sim = NetlistSimulator(self._bus())
        sim.set_inputs({"d0": lv.ONE, "en0": lv.ONE,
                        "d1": lv.ZERO, "en1": lv.ZERO})
        assert sim.read("y") == lv.ONE

    def test_no_driver_floats(self):
        sim = NetlistSimulator(self._bus())
        sim.set_inputs({"d0": lv.ONE, "en0": lv.ZERO,
                        "d1": lv.ZERO, "en1": lv.ZERO})
        assert sim.read("y") == lv.Z

    def test_contention_is_x(self):
        sim = NetlistSimulator(self._bus())
        sim.set_inputs({"d0": lv.ONE, "en0": lv.ONE,
                        "d1": lv.ZERO, "en1": lv.ONE})
        assert sim.read("y") == lv.X

    def test_agreeing_drivers_keep_value(self):
        sim = NetlistSimulator(self._bus())
        sim.set_inputs({"d0": lv.ONE, "en0": lv.ONE,
                        "d1": lv.ONE, "en1": lv.ONE})
        assert sim.read("y") == lv.ONE


class TestSequential:
    def _shift_register(self, stages: int = 3) -> Netlist:
        nl = Netlist(name="sr")
        nl.add_input("si")
        nl.add_output("so")
        previous = "si"
        for index in range(stages):
            q = f"q{index}"
            nl.add_gate("DFF", (previous,), q, name=f"ff{index}")
            previous = q
        nl.add_gate("BUF", (previous,), "so")
        return nl

    def test_shift_register_delay(self):
        sim = NetlistSimulator(self._shift_register(3))
        sim.load_state({"ff0": lv.ZERO, "ff1": lv.ZERO, "ff2": lv.ZERO})
        sequence = [lv.ONE, lv.ZERO, lv.ONE, lv.ONE, lv.ZERO, lv.ZERO]
        seen = []
        for bit in sequence:
            sim.set_input("si", bit)
            seen.append(sim.read("so"))
            sim.clock()
        # Output is the input delayed by 3 cycles.
        assert seen[3:] == sequence[:3]

    def test_dffe_holds_when_disabled(self):
        nl = Netlist(name="hold")
        nl.add_input("d")
        nl.add_input("en")
        nl.add_output("q")
        nl.add_gate("DFFE", ("d", "en"), "q", name="ff")
        sim = NetlistSimulator(nl)
        sim.load_state({"ff": lv.ZERO})
        sim.set_inputs({"d": lv.ONE, "en": lv.ZERO})
        sim.clock()
        assert sim.read("q") == lv.ZERO
        sim.set_inputs({"en": lv.ONE})
        sim.clock()
        assert sim.read("q") == lv.ONE
        sim.set_inputs({"d": lv.ZERO, "en": lv.ZERO})
        sim.clock(3)
        assert sim.read("q") == lv.ONE

    def test_state_of_and_load_state(self):
        nl = Netlist(name="ff")
        nl.add_input("d")
        nl.add_output("q")
        nl.add_gate("DFF", ("d",), "q", name="ff")
        sim = NetlistSimulator(nl)
        sim.load_state({"ff": lv.ONE})
        assert sim.state_of("ff") == lv.ONE
        assert sim.read("q") == lv.ONE
        with pytest.raises(SimulationError):
            sim.state_of("nope")
        with pytest.raises(SimulationError):
            sim.load_state({"nope": lv.ONE})

    def test_uninitialised_state_is_x(self):
        sim = NetlistSimulator(self._shift_register(2))
        assert sim.read("so") == lv.X

    def test_feedback_counter(self):
        # q toggles every cycle: d = not q.
        nl = Netlist(name="toggle")
        nl.add_input("unused")
        nl.add_output("q")
        nl.add_gate("INV", ("q",), "d")
        nl.add_gate("DFF", ("d",), "q", name="ff")
        sim = NetlistSimulator(nl)
        sim.load_state({"ff": lv.ZERO})
        values = []
        for _ in range(4):
            values.append(sim.read("q"))
            sim.clock()
        assert values == [lv.ZERO, lv.ONE, lv.ZERO, lv.ONE]


class TestOscillationDetection:
    def test_combinational_loop_without_state_raises_on_validate(self):
        # A latch-like loop is rejected by validate(), which the
        # simulator runs at construction.
        nl = Netlist(name="latch")
        nl.add_input("a")
        nl.add_gate("NOR", ("a", "y"), "x")
        nl.add_gate("NOR", ("x", "a"), "y")
        with pytest.raises(Exception):
            NetlistSimulator(nl)
