"""Unit tests for VHDL emission and the structural linter."""

from __future__ import annotations

from repro.core.generator import generate_cas
from repro.core.vhdl import lint_vhdl


class TestEmission:
    def test_entity_name_matches_netlist(self):
        design = generate_cas(4, 2)
        assert "entity cas_4_2 is" in design.vhdl
        assert "end entity cas_4_2;" in design.vhdl

    def test_port_widths(self):
        design = generate_cas(5, 3)
        assert "std_logic_vector(4 downto 0)" in design.vhdl  # e and s
        assert "std_logic_vector(2 downto 0)" in design.vhdl  # o and i

    def test_processes_present(self):
        text = generate_cas(3, 1).vhdl
        for name in ("shift_proc", "update_proc", "decode_proc"):
            assert f"{name} : process" in text
            assert f"end process {name};" in text

    def test_tristate_default(self):
        text = generate_cas(3, 1).vhdl
        assert "'Z';" in text

    def test_bypass_instruction_not_in_case(self):
        # BYPASS (all zeros) must fall into the default arm.
        design = generate_cas(3, 1)
        zero_literal = f'when "{0:0{design.k}b}"'
        assert zero_literal not in design.vhdl
        assert "when others => null;" in design.vhdl

    def test_decoder_arm_count(self):
        design = generate_cas(4, 2)
        arms = design.vhdl.count("when \"")
        assert arms == len(design.iset.schemes)

    def test_serial_chain_comment_present(self):
        assert "e0/s0" in generate_cas(3, 1).vhdl


class TestLint:
    def test_generated_vhdl_is_clean(self):
        for n, p in ((3, 1), (4, 2), (5, 3)):
            report = lint_vhdl(generate_cas(n, p).vhdl)
            assert report.ok, report.issues

    def test_missing_end_detected(self):
        text = generate_cas(3, 1).vhdl.replace("end process shift_proc;", "")
        report = lint_vhdl(text)
        assert not report.ok
        assert any("process" in issue for issue in report.issues)

    def test_missing_default_arm_detected(self):
        text = generate_cas(3, 1).vhdl.replace("when others => null;", "")
        report = lint_vhdl(text)
        assert not report.ok

    def test_case_balance_detected(self):
        text = generate_cas(3, 1).vhdl.replace("end case;", "")
        report = lint_vhdl(text)
        assert not report.ok
