"""Unit and property tests for the behavioural Core Access Switch."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import values as lv
from repro.errors import ConfigurationError, SimulationError
from repro.core.cas import (
    MODE_BYPASS,
    MODE_CHAIN,
    MODE_CONFIGURATION,
    MODE_TEST,
    CoreAccessSwitch,
)
from repro.core.instruction import BYPASS_CODE, CHAIN_CODE, InstructionSet


def _cas(n=4, p=2, policy="all") -> CoreAccessSwitch:
    return CoreAccessSwitch(InstructionSet(n, p, policy), name=f"cas{n}{p}")


def _bits(width, pattern=0):
    return tuple((pattern >> i) & 1 for i in range(width))


class TestModes:
    def test_power_on_is_bypass(self):
        cas = _cas()
        assert cas.active_code == BYPASS_CODE
        assert cas.mode() == MODE_BYPASS

    def test_config_signal_wins(self):
        cas = _cas()
        assert cas.mode(config=True) == MODE_CONFIGURATION

    def test_test_mode_after_update(self):
        cas = _cas()
        cas.load_code(2)
        cas.update()
        assert cas.mode() == MODE_TEST

    def test_chain_mode(self):
        cas = _cas()
        cas.load_code(CHAIN_CODE)
        cas.update()
        assert cas.mode() == MODE_CHAIN

    def test_reset_restores_bypass(self):
        cas = _cas()
        cas.load_code(3)
        cas.update()
        cas.reset()
        assert cas.active_code == BYPASS_CODE
        assert cas.shift_register == (0,) * cas.k


class TestShifting:
    def test_shift_k_bits_loads_code(self):
        cas = _cas(4, 2)
        code = 9
        for bit in cas.iset.code_to_bits(code):
            cas.shift(bit)
        assert cas.update() == code

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 5), st.integers(0, 1000))
    def test_shift_round_trip_property(self, n, raw):
        p = 1 + raw % n
        cas = _cas(n, p)
        code = raw % cas.iset.m
        for bit in cas.iset.code_to_bits(code):
            cas.shift(bit)
        assert cas.update() == code

    def test_shift_returns_displaced_bit(self):
        cas = _cas(3, 1)  # k = 3
        cas.load_code(0b101)
        out = [cas.shift(0) for _ in range(3)]
        assert out == [1, 0, 1]  # LSB leaves first

    def test_serial_out_is_stage_zero(self):
        cas = _cas(3, 1)
        cas.load_code(0b001)
        assert cas.serial_out() == 1

    def test_shift_non_binary_rejected(self):
        cas = _cas()
        with pytest.raises(SimulationError):
            cas.shift(2)

    def test_update_invalid_pattern_strict(self):
        cas = _cas(4, 2)  # m=14, k=4 -> patterns 14, 15 invalid
        cas.load_code(15)
        with pytest.raises(ConfigurationError):
            cas.update()

    def test_update_invalid_pattern_lenient(self):
        iset = InstructionSet(4, 2)
        cas = CoreAccessSwitch(iset, strict=False)
        cas.load_code(15)
        assert cas.update() == BYPASS_CODE

    def test_shifting_does_not_disturb_active_instruction(self):
        cas = _cas()
        cas.load_code(5)
        cas.update()
        for bit in (1, 0, 1, 1):
            cas.shift(bit)
        assert cas.active_code == 5  # update stage untouched


class TestRouting:
    def test_bypass_passes_everything(self):
        cas = _cas(4, 2)
        e = (lv.ONE, lv.ZERO, lv.ONE, lv.X)
        routing = cas.route(e, (lv.ZERO, lv.ZERO))
        assert routing.s == e
        assert routing.o == (lv.Z, lv.Z)

    def test_chain_routes_like_bypass(self):
        cas = _cas(4, 2)
        cas.load_code(CHAIN_CODE)
        cas.update()
        e = (lv.ONE, lv.ONE, lv.ZERO, lv.ZERO)
        routing = cas.route(e, (lv.ONE, lv.ONE))
        assert routing.s == e
        assert routing.o == (lv.Z, lv.Z)

    def test_test_mode_routing_heuristic(self):
        # Scheme (2, 0): e2 -> o0 / i0 -> s2 and e0 -> o1 / i1 -> s0.
        cas = _cas(4, 2)
        scheme = next(
            s for s in cas.iset.schemes if s.wire_of_port == (2, 0)
        )
        cas.load_code(cas.iset.encode(scheme))
        cas.update()
        e = (lv.ONE, lv.ZERO, lv.ZERO, lv.ONE)
        returns = (lv.ONE, lv.ZERO)
        routing = cas.route(e, returns)
        assert routing.o == (e[2], e[0])
        assert routing.s[2] == returns[0]
        assert routing.s[0] == returns[1]
        # Non-switched wires bypass.
        assert routing.s[1] == e[1]
        assert routing.s[3] == e[3]

    def test_configuration_mode_routing(self):
        cas = _cas(4, 2)
        cas.load_code(0b1001)
        e = (lv.ONE, lv.ZERO, lv.ONE, lv.ZERO)
        routing = cas.route(e, (lv.ZERO, lv.ZERO), config=True)
        # s0 carries the serial out (stage 0 = LSB of loaded pattern).
        assert routing.s[0] == lv.ONE
        assert routing.s[1:] == e[1:]
        assert routing.o == (lv.Z, lv.Z)

    def test_wrong_bus_width_rejected(self):
        cas = _cas(4, 2)
        with pytest.raises(SimulationError):
            cas.route((lv.ZERO,) * 3, (lv.ZERO, lv.ZERO))

    def test_wrong_return_width_rejected(self):
        cas = _cas(4, 2)
        with pytest.raises(SimulationError):
            cas.route((lv.ZERO,) * 4, (lv.ZERO,))

    @settings(max_examples=60, deadline=None)
    @given(st.integers(2, 5), st.data())
    def test_pairing_heuristic_property(self, n, data):
        """Paper 3.2: e_i -> o_j implies i_j -> s_i, for every scheme."""
        p = data.draw(st.integers(1, n))
        iset = InstructionSet(n, p)
        cas = CoreAccessSwitch(iset)
        scheme = data.draw(st.sampled_from(list(iset.schemes)))
        cas.load_code(iset.encode(scheme))
        cas.update()
        e = tuple(
            data.draw(st.sampled_from((lv.ZERO, lv.ONE))) for _ in range(n)
        )
        returns = tuple(
            data.draw(st.sampled_from((lv.ZERO, lv.ONE))) for _ in range(p)
        )
        routing = cas.route(e, returns)
        for port, wire in enumerate(scheme.wire_of_port):
            assert routing.o[port] == e[wire]
            assert routing.s[wire] == returns[port]
        for wire in scheme.bypassed_wires:
            assert routing.s[wire] == e[wire]

    def test_repr_shows_active_instruction(self):
        cas = _cas()
        assert "BYPASS" in repr(cas)
