"""Unit tests for the P1500-style wrapper (WIR, WBR, modes, chains)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.scan.core_model import ScannableCore
from repro.scan.atpg import ScanPattern
from repro.wrapper.boundary import BoundaryRegister
from repro.wrapper.wir import WIR_INSTRUCTIONS, Wir
from repro.wrapper.wrapper import P1500Wrapper


def _core(**kwargs) -> ScannableCore:
    defaults = dict(seed=7, num_pis=3, num_pos=2, num_ffs=10, num_chains=2)
    defaults.update(kwargs)
    return ScannableCore.generate("dut", **defaults)


class TestWir:
    def test_power_on_normal(self):
        wir = Wir()
        assert wir.active_name == "NORMAL"

    def test_shift_and_update(self):
        wir = Wir()
        for bit in wir.code_to_bits(WIR_INSTRUCTIONS["INTEST"]):
            wir.shift(bit)
        assert wir.update() == "INTEST"

    def test_every_instruction_round_trips(self):
        for name, code in WIR_INSTRUCTIONS.items():
            wir = Wir()
            wir.load_code(code)
            assert wir.update() == name

    def test_unknown_pattern_rejected(self):
        wir = Wir()
        wir._shift_reg = [1, 1, 1]  # 7: not an instruction
        with pytest.raises(ConfigurationError):
            wir.update()

    def test_code_of_unknown_name(self):
        with pytest.raises(ConfigurationError):
            Wir.code_of("SELFDESTRUCT")

    def test_shift_rejects_non_binary(self):
        with pytest.raises(SimulationError):
            Wir().shift(3)

    def test_reset(self):
        wir = Wir()
        wir.load_code(WIR_INSTRUCTIONS["EXTEST"])
        wir.update()
        wir.reset()
        assert wir.active_name == "NORMAL"


class TestBoundaryRegister:
    def test_shift_order(self):
        reg = BoundaryRegister.for_core(2, 1)
        outs = [reg.shift(bit) for bit in (1, 0, 1, 0, 0)]
        # 3 cells: first bit emerges after 3 shifts.
        assert outs == [0, 0, 0, 1, 0]

    def test_capture_outputs(self):
        reg = BoundaryRegister.for_core(1, 3)
        reg.capture_outputs([1, 0, 1])
        assert [c.shift_value for c in reg.output_cells] == [1, 0, 1]

    def test_capture_wrong_count(self):
        reg = BoundaryRegister.for_core(1, 2)
        with pytest.raises(SimulationError):
            reg.capture_outputs([1])

    def test_update_inputs(self):
        reg = BoundaryRegister.for_core(2, 0)
        reg.cells[0].shift_value = 1
        reg.update_inputs()
        assert reg.driven_inputs() == [1, 0]

    def test_empty_register_passthrough(self):
        reg = BoundaryRegister.for_core(0, 0)
        assert reg.shift(1) == 1


class TestWrapperGeometry:
    def test_p_matches_chains(self):
        wrapper = P1500Wrapper(_core(num_chains=3, num_ffs=12))
        assert wrapper.p == 3

    def test_boundary_balancing(self):
        # 10 FFs in chains (5,5); 3 PIs + 2 POs spread to balance.
        wrapper = P1500Wrapper(_core())
        lengths = wrapper.wrapper_chain_lengths()
        assert sum(lengths) == 10 + 3 + 2
        assert max(lengths) - min(lengths) <= 1

    def test_boundary_only_wrapper(self):
        wrapper = P1500Wrapper(None, num_inputs=4, num_outputs=4)
        assert wrapper.p == 1
        assert wrapper.wrapper_chain_lengths() == (8,)


class TestWrapperModes:
    def test_default_normal(self):
        wrapper = P1500Wrapper(_core())
        assert wrapper.mode == "NORMAL"

    def test_serial_protocol_sets_mode(self):
        wrapper = P1500Wrapper(_core())
        for bit in wrapper.wir.code_to_bits(WIR_INSTRUCTIONS["INTEST"]):
            wrapper.serial_shift(bit)
        assert wrapper.serial_update() == "INTEST"
        assert wrapper.mode == "INTEST"

    def test_shift_outside_test_mode_rejected(self):
        wrapper = P1500Wrapper(_core())
        with pytest.raises(SimulationError, match="mode NORMAL"):
            wrapper.test_shift((0, 0))

    def test_capture_outside_intest_rejected(self):
        wrapper = P1500Wrapper(_core())
        wrapper.set_mode("EXTEST")
        with pytest.raises(SimulationError, match="need INTEST"):
            wrapper.test_capture()

    def test_wrong_parallel_width_rejected(self):
        wrapper = P1500Wrapper(_core())
        wrapper.set_mode("INTEST")
        with pytest.raises(SimulationError):
            wrapper.test_shift((0,))


class TestIntestDataPath:
    def test_pattern_load_and_capture_round_trip(self):
        """Shift a pattern in, capture, and verify the response stream
        matches the ATPG-computed expectation."""
        from repro.scan.atpg import compute_responses

        core = _core()
        wrapper = P1500Wrapper(core)
        wrapper.set_mode("INTEST")
        pattern = ScanPattern(
            pi=(1, 0, 1),
            chains=tuple(
                tuple((i + j) % 2 for j in range(length))
                for i, length in enumerate(core.chain_lengths)
            ),
        )
        golden_core = _core()
        response = compute_responses(golden_core, [pattern])[0]

        streams = wrapper.pattern_streams(pattern)
        max_len = max(len(s) for s in streams)
        padded = [[0] * (max_len - len(s)) + s for s in streams]
        for cycle in range(max_len):
            wrapper.test_shift(tuple(s[cycle] for s in padded))
        wrapper.test_capture()

        expected = wrapper.expected_response_streams(response)
        depth = max(len(stream) for stream in expected)
        for position in range(depth):
            returns = wrapper.test_returns()
            for c in range(wrapper.p):
                if position < len(expected[c]):
                    want = expected[c][position]
                    if want is not None:
                        assert returns[c] == want, (c, position)
            wrapper.test_shift((0,) * wrapper.p)

    def test_extest_boundary_chain(self):
        core = _core()
        wrapper = P1500Wrapper(core)
        wrapper.set_mode("EXTEST")
        total = len(wrapper.boundary)
        sent = [(i * 3) % 2 for i in range(total)]
        outs = []
        for bit in sent:
            outs.append(wrapper.test_shift((bit,) + (0,) * (wrapper.p - 1))[0])
        # After `total` more shifts the sent bits re-emerge in order.
        for bit in sent:
            outs.append(wrapper.test_shift((0,) * wrapper.p)[0])
        assert outs[total:] == sent

    def test_reset_clears_everything(self):
        core = _core()
        wrapper = P1500Wrapper(core)
        wrapper.set_mode("INTEST")
        wrapper.test_shift((1, 1))
        wrapper.reset()
        assert wrapper.mode == "NORMAL"
        assert all(v == 0 for v in core.ff_values)
