"""Unit tests for the preemptive (staircase) scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.soc.core import CoreTestParams, TestMethod
from repro.soc.itc02 import d695_like, random_test_params
from repro.schedule.preemptive import schedule_preemptive
from repro.schedule.scheduler import lower_bound, schedule_greedy
from repro.schedule.timing import core_test_cycles


def _scan(name, flops, patterns, max_wires):
    return CoreTestParams(name=name, method=TestMethod.SCAN, flops=flops,
                          patterns=patterns, max_wires=max_wires)


def _bist(name, cycles):
    return CoreTestParams(name=name, method=TestMethod.BIST, flops=0,
                          patterns=0, max_wires=1, fixed_cycles=cycles)


class TestBasics:
    def test_single_core_matches_closed_form(self):
        core = _scan("c", 100, 10, 2)
        schedule = schedule_preemptive([core], 4, charge_config=False)
        assert schedule.test_cycles == core_test_cycles(core, 2)
        assert len(schedule.segments) == 1

    def test_bist_runs_to_completion(self):
        cores = [_bist("b", 500), _scan("c", 10, 3, 1)]
        schedule = schedule_preemptive(cores, 2, charge_config=False)
        names = {name for seg in schedule.segments
                 for name, _ in seg.allocations}
        assert names == {"b", "c"}
        assert schedule.test_cycles >= 500

    def test_wire_capacity_respected(self):
        cores = [_scan(f"c{i}", 60, 10, 4) for i in range(5)]
        schedule = schedule_preemptive(cores, 4, charge_config=False)
        for segment in schedule.segments:
            assert sum(w for _, w in segment.allocations) <= 4

    def test_zero_width_rejected(self):
        with pytest.raises(ScheduleError):
            schedule_preemptive([_scan("c", 10, 2, 1)], 0)

    def test_config_charged_per_boundary(self):
        cores = [_scan("a", 50, 10, 2), _scan("b", 20, 4, 1)]
        charged = schedule_preemptive(cores, 2, charge_config=True)
        free = schedule_preemptive(cores, 2, charge_config=False)
        assert charged.test_cycles == free.test_cycles
        assert charged.config_cycles_total > 0
        assert (charged.config_cycles_total
                % len(charged.segments) == 0)

    def test_describe(self):
        schedule = schedule_preemptive([_scan("a", 50, 10, 2)], 2)
        assert "segments" in schedule.describe()


class TestQuality:
    def test_not_worse_than_greedy_on_d695(self):
        cores = d695_like()
        for n in (4, 8, 16):
            preemptive = schedule_preemptive(cores, n,
                                             charge_config=False)
            greedy = schedule_greedy(cores, n, charge_config=False)
            assert preemptive.test_cycles <= greedy.test_cycles * 1.05

    def test_respects_lower_bound(self):
        cores = d695_like()
        schedule = schedule_preemptive(cores, 8, charge_config=False)
        assert schedule.test_cycles >= lower_bound(cores, 8)

    def test_unchanged_allocation_loses_no_progress(self):
        """A core keeping its wires across boundaries finishes in
        exactly its closed-form time."""
        # b finishes early; a keeps 2 wires throughout.
        cores = [_scan("a", 100, 50, 2), _scan("b", 10, 2, 1)]
        schedule = schedule_preemptive(cores, 3, charge_config=False)
        assert schedule.test_cycles == core_test_cycles(cores[0], 2)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 5000), st.integers(1, 16))
    def test_everything_finishes_property(self, seed, n):
        cores = random_test_params(seed, num_cores=6)
        schedule = schedule_preemptive(cores, n, charge_config=False)
        scheduled = {name for seg in schedule.segments
                     for name, _ in seg.allocations}
        expected = {c.name for c in cores
                    if c.patterns or c.fixed_cycles}
        assert scheduled == expected
        for segment in schedule.segments:
            assert segment.duration > 0
            assert sum(w for _, w in segment.allocations) <= n

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 5000))
    def test_preemptive_beats_or_ties_greedy_property(self, seed):
        cores = random_test_params(seed, num_cores=8)
        for n in (4, 8):
            preemptive = schedule_preemptive(cores, n,
                                             charge_config=False)
            greedy = schedule_greedy(cores, n, charge_config=False)
            # Preemption never hurts by more than quantisation noise.
            assert preemptive.test_cycles <= greedy.test_cycles * 1.10
