"""The Experiment builder and the parallel sweep runner."""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.api import (
    Experiment,
    RunConfig,
    RunResult,
    results_table,
    run_many,
    run_sweep,
    sweep_experiments,
)
from repro.baselines.casbus import CasBusTam
from repro.core.tam import CasBusTamDesign
from repro.errors import ConfigurationError
from repro.schedule.preemptive import schedule_preemptive
from repro.soc.itc02 import d695_like
from repro.soc.library import small_soc


class TestExperimentSimulation:
    def test_matches_legacy_facade_cycle_for_cycle(self):
        legacy = CasBusTamDesign.for_soc(small_soc()).run()
        result = (Experiment(small_soc())
                  .with_architecture("casbus")
                  .run())
        assert result.source == "simulation"
        assert result.total_cycles == legacy.total_cycles
        assert result.test_cycles == legacy.test_cycles
        assert result.config_cycles == legacy.config_cycles
        assert result.passed == legacy.passed is True
        # Per-session detail mirrors the executor's sessions.
        assert len(result.sessions) == len(legacy.sessions)
        for detail, session in zip(result.sessions, legacy.sessions):
            assert detail.test_cycles == session.test_cycles
            assert detail.config_cycles == session.config_cycles
            assert detail.passed == session.passed

    def test_fault_injection_fails_the_run(self):
        from repro.bist.engine import random_detectable_fault

        soc = small_soc()
        fault = random_detectable_fault(
            soc.core_named("beta").build_scannable(), seed=8
        )
        result = Experiment(soc).with_faults({"beta": fault}).run()
        assert result.source == "simulation"
        assert result.passed is False

    def test_faults_without_simulation_rejected(self):
        with pytest.raises(ConfigurationError, match="simulation"):
            (Experiment(d695_like())  # abstract workload: no simulator
             .with_architecture("casbus")
             .with_faults({"c1": (0, 1)})
             .run())

    def test_forced_simulation_on_baseline_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot simulate"):
            (Experiment(small_soc())
             .with_architecture("mux-bus")
             .simulated(True)
             .run())

    def test_cas_policy_reaches_simulated_hardware(self):
        default = (Experiment(small_soc())
                   .with_architecture("casbus")
                   .run())
        pinned = (Experiment(small_soc())
                  .with_architecture("casbus")
                  .with_policy("contiguous")
                  .run())
        assert pinned.source == default.source == "simulation"
        assert pinned.passed and default.passed
        # "contiguous" enumerates fewer schemes than the default "all",
        # so the generated CAS hardware must shrink.
        assert pinned.area_ge < default.area_ge

    def test_simulation_forbidden_falls_back_to_model(self):
        result = (Experiment(small_soc())
                  .with_architecture("casbus")
                  .simulated(False)
                  .run())
        assert result.source == "model"
        assert result.passed is None


class TestExperimentModel:
    def test_model_matches_legacy_baseline(self):
        cores = d695_like()
        legacy = CasBusTam().evaluate(cores, 8)
        result = (Experiment(cores)
                  .with_architecture("casbus")
                  .with_bus_width(8)
                  .evaluate())
        assert result.source == "model"
        assert result.test_cycles == legacy.test_cycles
        assert result.config_cycles == legacy.config_cycles
        assert result.area_ge == legacy.area_proxy
        assert result.extra_pins == legacy.extra_pins

    def test_reconfig_strategy_honours_cas_policy(self):
        from repro.api import get_scheduler

        cores = d695_like()
        loose = get_scheduler("reconfig").schedule(cores, 8,
                                                   cas_policy=None)
        strict = get_scheduler("reconfig").schedule(cores, 8,
                                                    cas_policy="all")
        # The practical policy shrinks instruction registers, so the
        # charged reconfiguration cost must differ from "all".
        assert loose.config_cycles != strict.config_cycles

    def test_scheduler_strategy_plugs_in(self):
        cores = d695_like()
        reference = schedule_preemptive(cores, 8, cas_policy=None)
        result = (Experiment(cores)
                  .with_architecture("casbus")
                  .with_scheduler("preemptive")
                  .with_bus_width(8)
                  .run())
        assert result.source == "model"  # preemptive is not executable
        assert result.scheduler == "preemptive"
        assert result.test_cycles == reference.test_cycles
        assert result.config_cycles == reference.config_cycles_total

    def test_unknown_names_rejected_eagerly(self):
        experiment = Experiment(small_soc())
        with pytest.raises(ConfigurationError):
            experiment.with_architecture("token-ring")
        with pytest.raises(ConfigurationError):
            experiment.with_scheduler("oracle")

    def test_builder_is_immutable(self):
        base = Experiment(small_soc())
        widened = base.with_bus_width(7)
        assert base.config.bus_width is None
        assert widened.config.bus_width == 7
        assert widened is not base

    def test_abstract_workload_needs_a_width(self):
        with pytest.raises(ConfigurationError, match="bus width"):
            Experiment(d695_like()).evaluate()

    def test_lifecycle_schedule_step(self):
        outcome = (Experiment(d695_like())
                   .with_architecture("casbus")
                   .with_bus_width(8)
                   .schedule())
        assert outcome is not None
        assert outcome.strategy == "greedy"
        # Fixed-model architectures have nothing to schedule.
        assert (Experiment(d695_like())
                .with_architecture("daisy-chain")
                .with_bus_width(8)
                .schedule()) is None


class TestRunMany:
    ARCHS = ("casbus", "mux-bus", "direct-access")
    WIDTHS = (4, 8, 16)

    def _grid(self):
        return sweep_experiments(
            d695_like(), architectures=self.ARCHS, bus_widths=self.WIDTHS
        )

    def test_parallel_equals_serial(self):
        serial = run_many(self._grid(), parallel=False)
        parallel = run_many(self._grid(), parallel=True)
        assert serial == parallel
        assert len(serial) == len(self.ARCHS) * len(self.WIDTHS)

    def test_results_are_uniform_and_tabulatable(self):
        results = run_sweep(
            d695_like(), architectures=self.ARCHS,
            bus_widths=self.WIDTHS, parallel=True,
        )
        assert all(isinstance(r, RunResult) for r in results)
        headers, rows = results_table(results)
        table = format_table(headers, rows, title="sweep")
        for arch in self.ARCHS:
            assert arch in table
        assert len(rows) == len(results)

    def test_order_matches_input(self):
        results = run_many(self._grid(), parallel=True)
        expected = [
            (arch, width)
            for arch in self.ARCHS for width in self.WIDTHS
        ]
        assert [(r.architecture, r.bus_width) for r in results] == expected

    def test_empty_and_invalid_input(self):
        assert run_many([]) == []
        with pytest.raises(ConfigurationError, match="Experiment"):
            run_many([RunConfig()])  # configs alone are not runnable

    def test_simulated_experiments_cross_process_boundary(self):
        experiments = [
            Experiment(small_soc()).with_architecture("casbus"),
            Experiment(small_soc()).with_architecture("daisy-chain"),
        ]
        results = run_many(experiments, parallel=True)
        assert results[0].source == "simulation"
        assert results[0].passed is True
        assert results[1].source == "model"
