"""Unit tests for the generic-VHDL generation alternative (section 3.3)."""

from __future__ import annotations

from repro.core.generator import generate_cas
from repro.core.instruction import FIRST_TEST_CODE
from repro.core.vhdl import emit_generic_vhdl, emit_scheme_package


class TestGenericEntity:
    def test_entity_present_once(self):
        text = emit_generic_vhdl()
        assert text.count("entity cas_generic is") == 1
        assert text.count("end entity cas_generic;") == 1

    def test_generics_declared(self):
        text = emit_generic_vhdl()
        for generic in ("G_N", "G_P", "G_K"):
            assert generic in text

    def test_processes_balanced(self):
        text = emit_generic_vhdl()
        assert text.count("process (") == text.count("end process")

    def test_tristate_default(self):
        assert "'Z';" in emit_generic_vhdl()

    def test_stable_output(self):
        assert emit_generic_vhdl() == emit_generic_vhdl()


class TestSchemePackage:
    def test_constants_match_design(self):
        design = generate_cas(4, 2)
        text = emit_scheme_package(design)
        assert "constant C_N : natural := 4;" in text
        assert "constant C_P : natural := 2;" in text
        assert f"constant C_K : natural := {design.k};" in text
        assert f"constant C_M : natural := {design.m};" in text

    def test_one_row_per_instruction(self):
        design = generate_cas(4, 2)
        text = emit_scheme_package(design)
        for code in range(design.m):
            assert f"    {code} => " in text

    def test_rows_encode_schemes(self):
        design = generate_cas(3, 1)
        text = emit_scheme_package(design)
        for index, scheme in enumerate(design.iset.schemes):
            code = FIRST_TEST_CODE + index
            assert f"{code} => (0 => {scheme.wire_of_port[0]})" in text

    def test_multiport_row_format(self):
        design = generate_cas(4, 2)
        text = emit_scheme_package(design)
        first = design.iset.schemes[0]
        expected = f"({first.wire_of_port[0]}, {first.wire_of_port[1]})"
        assert expected in text

    def test_package_name_carries_configuration(self):
        text = emit_scheme_package(generate_cas(5, 3))
        assert "package cas_schemes_5_3 is" in text
        assert "end package cas_schemes_5_3;" in text
