"""Registry round-trips for the repro.api architecture and scheduler
plugins."""

from __future__ import annotations

import pytest

from repro.api import (
    BASELINE_ORDER,
    Registry,
    get_architecture,
    get_scheduler,
    list_architectures,
    list_schedulers,
)
from repro.api.architectures import TamArchitecture
from repro.api.schedulers import ScheduleOutcome, SchedulerStrategy
from repro.baselines.base import TamBaseline, TamReport
from repro.errors import ConfigurationError
from repro.soc.itc02 import d695_like

EXPECTED_ARCHITECTURES = {
    "casbus", "mux-bus", "daisy-chain", "static-distribution",
    "direct-access", "system-bus",
}
EXPECTED_SCHEDULERS = {
    "greedy", "exhaustive", "balanced-lpt", "preemptive", "reconfig",
    "optimize-bnb", "optimize-anneal", "optimize-portfolio",
}


class TestArchitectureRegistry:
    def test_all_expected_names_listed(self):
        assert set(list_architectures()) == EXPECTED_ARCHITECTURES

    @pytest.mark.parametrize("name", sorted(EXPECTED_ARCHITECTURES))
    def test_round_trip_by_name(self, name):
        architecture = get_architecture(name)
        assert isinstance(architecture, TamArchitecture)
        assert architecture.key == name
        # A fresh instance every time (no shared mutable state).
        assert get_architecture(name) is not architecture

    @pytest.mark.parametrize("alias,canonical", [
        ("cas-bus", "casbus"),
        ("CASBUS", "casbus"),
        ("daisy", "daisy-chain"),
        ("direct", "direct-access"),
        ("sysbus", "system-bus"),
        ("distribution", "static-distribution"),
    ])
    def test_aliases_resolve(self, alias, canonical):
        assert get_architecture(alias).key == canonical

    def test_unknown_name_raises_with_suggestion(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            get_architecture("no-such-tam")
        with pytest.raises(ConfigurationError, match="casbus"):
            get_architecture("cashbus")  # close enough to suggest

    @pytest.mark.parametrize("name", sorted(EXPECTED_ARCHITECTURES))
    def test_model_is_a_legacy_baseline(self, name):
        model = get_architecture(name).model()
        assert isinstance(model, TamBaseline)
        assert model.key == name

    def test_evaluate_matches_underlying_baseline(self):
        cores = d695_like()
        for name in list_architectures():
            architecture = get_architecture(name)
            report = architecture.evaluate(cores, 8)
            assert isinstance(report, TamReport)
            assert report == architecture.model().evaluate(cores, 8)

    def test_baseline_order_covers_registry(self):
        assert set(BASELINE_ORDER) == EXPECTED_ARCHITECTURES
        assert BASELINE_ORDER[-1] == "casbus"


class TestSchedulerRegistry:
    def test_all_expected_names_listed(self):
        assert set(list_schedulers()) == EXPECTED_SCHEDULERS

    @pytest.mark.parametrize("name", sorted(EXPECTED_SCHEDULERS))
    def test_round_trip_by_name(self, name):
        strategy = get_scheduler(name)
        assert isinstance(strategy, SchedulerStrategy)
        assert strategy.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            get_scheduler("simulated-annealing")

    @pytest.mark.parametrize("name", sorted(EXPECTED_SCHEDULERS))
    def test_strategies_produce_outcomes(self, name):
        cores = d695_like()[:4]  # small enough for exhaustive
        outcome = get_scheduler(name).schedule(cores, 4)
        assert isinstance(outcome, ScheduleOutcome)
        assert outcome.strategy == name
        assert outcome.bus_width == 4
        assert outcome.test_cycles > 0
        assert outcome.config_cycles >= 0
        assert outcome.total_cycles == (outcome.test_cycles
                                        + outcome.config_cycles)
        assert outcome.describe()

    def test_only_greedy_is_executable(self):
        executable = {
            name for name in list_schedulers()
            if get_scheduler(name).executable
        }
        assert executable == {"greedy"}

    @pytest.mark.parametrize("alias,canonical", [
        ("bnb", "optimize-bnb"),
        ("anneal", "optimize-anneal"),
        ("optimal", "exhaustive"),
        ("staircase", "preemptive"),
    ])
    def test_scheduler_aliases_resolve(self, alias, canonical):
        assert get_scheduler(alias).name == canonical

    def test_every_strategy_has_metadata(self):
        from repro.api import SCHEDULERS

        entries = {entry.name: entry for entry in SCHEDULERS.entries()}
        assert set(entries) == EXPECTED_SCHEDULERS
        for entry in entries.values():
            assert entry.description  # one-liner for `repro list`
        assert "session" in entries["greedy"].aliases
        assert "anneal" in entries["optimize-anneal"].aliases


class TestRegistryMechanics:
    def test_duplicate_registration_rejected(self):
        registry: Registry = Registry("widget")
        registry.register("a", dict)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("a", list)
        registry.register("a", list, replace=True)
        assert registry.create("a") == []

    def test_contains_and_names(self):
        registry: Registry = Registry("widget")
        registry.register("thing", dict, aliases=("alias",))
        assert "thing" in registry
        assert "alias" in registry
        assert "other" not in registry
        assert registry.names() == ["thing"]

    def test_name_alias_collisions_rejected(self):
        registry: Registry = Registry("widget")
        registry.register("a", dict, aliases=("b",))
        # A new canonical name may not shadow an existing alias...
        with pytest.raises(ConfigurationError, match="alias"):
            registry.register("b", list)
        # ...and a new alias may not hijack an existing name.
        with pytest.raises(ConfigurationError, match="collides"):
            registry.register("c", list, aliases=("a",))
        assert registry.resolve("b") == "a"  # unchanged

    def test_replace_canonicalises_a_former_alias(self):
        registry: Registry = Registry("widget")
        registry.register("a", dict, aliases=("b",))
        registry.register("b", list, replace=True)
        assert registry.create("b") == []  # now its own entry
        assert registry.resolve("a") == "a"
