"""Smoke tests of the public API surface and error hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    ReproError,
    ScheduleError,
    SimulationError,
    SynthesisError,
    VerificationError,
)


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_surface(self):
        """The README quickstart names resolve and work."""
        design = repro.generate_cas(4, 2)
        assert (design.m, design.k) == (14, 4)
        soc = repro.fig1_soc()
        tam = repro.CasBusTamDesign.for_soc(soc)
        assert tam.total_cas_cells > 0

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_values_alias_matches_canonical(self):
        from repro import values as canonical
        from repro.sim import values as alias

        assert alias.ZERO == canonical.ZERO
        assert alias.resolve is canonical.resolve


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigurationError, SimulationError, SynthesisError,
        ScheduleError, VerificationError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_library_raises_its_own_errors(self):
        with pytest.raises(ConfigurationError):
            repro.InstructionSet(2, 5)  # P > N
        with pytest.raises(ConfigurationError):
            repro.SwitchScheme(n=2, p=1, wire_of_port=(7,))


class TestVerifyFailurePaths:
    def test_equivalence_mismatch_reports_stimulus(self):
        from repro.netlist.netlist import Netlist
        from repro.netlist.verify import check_combinational_equivalence
        from repro import values as lv

        nl = Netlist(name="wrong")
        a = nl.add_input("a")
        nl.add_output("y")
        nl.add_gate("BUF", (a,), "y")

        def reference(assignment):
            return {"y": lv.v_not(assignment["a"])}  # expects INV

        with pytest.raises(VerificationError, match="output 'y'"):
            check_combinational_equivalence(nl, reference, ["a"], ["y"])

    def test_equivalence_pass_returns_count(self):
        from repro.netlist.netlist import Netlist
        from repro.netlist.verify import check_combinational_equivalence
        from repro import values as lv

        nl = Netlist(name="right")
        a = nl.add_input("a")
        b = nl.add_input("b")
        nl.add_output("y")
        nl.add_gate("AND", (a, b), "y")

        def reference(assignment):
            return {"y": lv.v_and((assignment["a"], assignment["b"]))}

        assert check_combinational_equivalence(
            nl, reference, ["a", "b"], ["y"]
        ) == 4
