"""Unit tests for the baseline TAM architectures."""

from __future__ import annotations

import pytest

from repro.soc.core import CoreTestParams, TestMethod
from repro.soc.itc02 import d695_like
from repro.baselines import (
    CasBusTam,
    DaisyChain,
    DirectAccess,
    MultiplexedBus,
    StaticDistribution,
    SystemBusTam,
    all_baselines,
)


def _workload():
    return d695_like()


class TestInterfaces:
    def test_every_baseline_reports(self):
        for baseline in all_baselines():
            report = baseline.evaluate(_workload(), 8)
            assert report.test_cycles > 0
            assert report.total_cycles >= report.test_cycles
            assert report.extra_pins >= 0
            assert report.area_proxy >= 0
            assert report.name == baseline.name

    def test_names_unique(self):
        names = [b.name for b in all_baselines()]
        assert len(set(names)) == len(names)


class TestOrderings:
    """The qualitative relations the paper's section 4 argues for."""

    def test_direct_access_is_fastest(self):
        direct = DirectAccess().evaluate(_workload(), 8)
        for baseline in (MultiplexedBus(), DaisyChain(),
                         StaticDistribution(), CasBusTam()):
            report = baseline.evaluate(_workload(), 8)
            assert direct.test_cycles <= report.test_cycles

    def test_direct_access_is_pin_hungry(self):
        direct = DirectAccess().evaluate(_workload(), 8)
        cas = CasBusTam().evaluate(_workload(), 8)
        assert direct.extra_pins > cas.extra_pins

    def test_daisy_chain_minimal_pins_slowest(self):
        daisy = DaisyChain().evaluate(_workload(), 8)
        cas = CasBusTam().evaluate(_workload(), 8)
        assert daisy.extra_pins == 1
        assert daisy.test_cycles > cas.test_cycles

    def test_casbus_beats_mux_bus_on_heterogeneous_load(self):
        # Multiplexed bus serialises everything; CAS-BUS overlaps
        # narrow cores, winning on workloads with wire-limited cores.
        cores = _workload()
        mux = MultiplexedBus().evaluate(cores, 8)
        cas = CasBusTam().evaluate(cores, 8)
        assert cas.total_cycles < mux.total_cycles

    def test_casbus_not_worse_than_static(self):
        cores = _workload()
        static = StaticDistribution().evaluate(cores, 8)
        cas = CasBusTam().evaluate(cores, 8)
        assert cas.test_cycles <= static.test_cycles

    def test_sysbus_zero_pins(self):
        assert SystemBusTam().evaluate(_workload(), 8).extra_pins == 0


class TestScaling:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_casbus_time_monotone_in_width(self, n):
        report = CasBusTam().evaluate(_workload(), n)
        assert report.test_cycles > 0

    def test_widths_improve_casbus(self):
        times = [
            CasBusTam().evaluate(_workload(), n).test_cycles
            for n in (2, 4, 8, 16)
        ]
        assert times == sorted(times, reverse=True)

    def test_casbus_area_grows_with_width(self):
        # Under a fixed enumeration policy, wider buses always cost
        # more area (the auto policy may dip at a policy switch, which
        # is the designer's m-limiting heuristic working as intended).
        tam = CasBusTam(policy="contiguous")
        small = tam.evaluate(_workload(), 4).area_proxy
        large = tam.evaluate(_workload(), 8).area_proxy
        assert large > small

    def test_bist_core_unaffected_by_bus(self):
        cores = [CoreTestParams(name="b", method=TestMethod.BIST,
                                flops=0, patterns=0, max_wires=1,
                                fixed_cycles=777)]
        narrow = CasBusTam().evaluate(cores, 2)
        wide = CasBusTam().evaluate(cores, 8)
        assert narrow.test_cycles == wide.test_cycles == 777
