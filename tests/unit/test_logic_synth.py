"""Unit tests for cover-to-netlist synthesis with node sharing."""

from __future__ import annotations

import itertools

import pytest

from repro import values as lv
from repro.errors import SynthesisError
from repro.logic.cover import Cover
from repro.logic.cube import Cube
from repro.logic.minimize import minimize
from repro.logic.synth import CoverSynthesizer, synthesize_covers
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import NetlistSimulator


def _build(covers: dict[str, Cover], num_vars: int) -> tuple[Netlist, list[str]]:
    netlist = Netlist(name="dec")
    inputs = [netlist.add_input(f"a{i}") for i in range(num_vars)]
    for name in covers:
        netlist.add_output(name)
    synthesize_covers(netlist, inputs, covers)
    netlist.validate()
    return netlist, inputs


def _check_function(netlist: Netlist, inputs: list[str],
                    outputs: dict[str, Cover]) -> None:
    sim = NetlistSimulator(netlist)
    num_vars = len(inputs)
    for point in range(1 << num_vars):
        assignment = {
            inputs[i]: (lv.ONE if point >> i & 1 else lv.ZERO)
            for i in range(num_vars)
        }
        sim.set_inputs(assignment)
        for name, cover in outputs.items():
            expected = lv.ONE if cover.evaluate(point) else lv.ZERO
            assert sim.read(name) == expected, (name, point)


class TestSingleCover:
    def test_simple_function(self):
        cover = minimize([1, 3, 5, 7], 3)  # = a0
        netlist, inputs = _build({"f": cover}, 3)
        _check_function(netlist, inputs, {"f": cover})

    def test_constant_false(self):
        cover = Cover.constant(False, 2)
        netlist, inputs = _build({"f": cover}, 2)
        sim = NetlistSimulator(netlist)
        sim.set_inputs({"a0": lv.ONE, "a1": lv.ONE})
        assert sim.read("f") == lv.ZERO

    def test_constant_true(self):
        cover = Cover.constant(True, 2)
        netlist, inputs = _build({"f": cover}, 2)
        sim = NetlistSimulator(netlist)
        sim.set_inputs({"a0": lv.ZERO, "a1": lv.ZERO})
        assert sim.read("f") == lv.ONE

    def test_multi_cube_function(self):
        cover = Cover(num_vars=3, cubes=(Cube.from_string("11-"),
                                         Cube.from_string("--1")))
        netlist, inputs = _build({"f": cover}, 3)
        _check_function(netlist, inputs, {"f": cover})

    def test_wrong_arity_rejected(self):
        netlist = Netlist(name="bad")
        inputs = [netlist.add_input("a0")]
        synthesizer = CoverSynthesizer(netlist, inputs)
        with pytest.raises(SynthesisError):
            synthesizer.synthesize(Cover.constant(True, 3), "f")


class TestSharing:
    def test_identical_product_terms_shared(self):
        cube = Cube.from_string("101")
        cover_a = Cover(num_vars=3, cubes=(cube,))
        cover_b = Cover(num_vars=3, cubes=(cube,))
        netlist, _ = _build({"fa": cover_a, "fb": cover_b}, 3)
        and_gates = [g for g in netlist.gates if g.kind == "AND"]
        # One shared AND tree (2 AND2 nodes for 3 literals), not two.
        assert len(and_gates) == 2

    def test_common_prefix_shared(self):
        # Terms a0&a1&a2 and a0&a1&a3 share the a0&a1 node.
        cover = Cover(num_vars=4, cubes=(Cube.from_string("111-"),
                                         Cube.from_string("11-1")))
        netlist, inputs = _build({"f": cover}, 4)
        _check_function(netlist, inputs, {"f": cover})
        and_gates = [g for g in netlist.gates if g.kind == "AND"]
        assert len(and_gates) == 3  # (a0&a1), (&a2), (&a3)

    def test_inverter_shared(self):
        cover = Cover(num_vars=2, cubes=(Cube.from_string("01"),
                                         Cube.from_string("0-"),))
        netlist, inputs = _build({"f": cover}, 2)
        inverters = [g for g in netlist.gates if g.kind == "INV"]
        assert len(inverters) == 1
        _check_function(netlist, inputs, {"f": cover})


class TestMultiOutputCorrectness:
    def test_random_multi_output_decoder(self):
        # A realistic shape: several functions over one 4-bit input.
        covers = {
            f"out{i}": minimize(on, 4)
            for i, on in enumerate(
                ([0, 1, 2, 3], [3, 7, 11, 15], [5], [0, 15], [6, 7, 14, 15])
            )
        }
        netlist, inputs = _build(covers, 4)
        _check_function(netlist, inputs, covers)

    def test_exhaustive_small_pairs(self):
        # Every pair of 2-variable functions synthesises correctly.
        points = [0, 1, 2, 3]
        functions = []
        for bits in range(16):
            functions.append([p for p in points if bits >> p & 1])
        for on_a, on_b in itertools.islice(
            itertools.product(functions, repeat=2), 0, 256, 7
        ):
            covers = {"fa": minimize(on_a, 2), "fb": minimize(on_b, 2)}
            netlist, inputs = _build(covers, 2)
            _check_function(netlist, inputs, covers)
