"""Unit and property tests for two-level minimisation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cube import Cube
from repro.logic.minimize import (
    minimize,
    minimize_exact,
    minimize_heuristic,
    prime_implicants,
    select_cover,
)


class TestKnownFunctions:
    def test_classic_qm_example(self):
        # f = sum m(4, 8, 10, 11, 12, 15) + d(9, 14), the textbook case.
        on = [4, 8, 10, 11, 12, 15]
        dc = [9, 14]
        cover = minimize_exact(on, 4, dc)
        assert cover.agrees_with(on, [m for m in range(16)
                                      if m not in set(on) | set(dc)])
        assert len(cover) <= 3

    def test_full_space_is_tautology(self):
        cover = minimize(list(range(8)), 3)
        assert cover.is_constant_true()

    def test_empty_on_set(self):
        cover = minimize([], 4)
        assert cover.is_constant_false()

    def test_single_minterm(self):
        cover = minimize([5], 3)
        assert len(cover) == 1
        assert cover.on_set() == {5}

    def test_dc_absorbs_into_tautology(self):
        cover = minimize([0, 1], 1)
        assert cover.is_constant_true()

    def test_parity_is_irreducible(self):
        on = [m for m in range(16) if bin(m).count("1") % 2]
        cover = minimize_exact(on, 4)
        assert len(cover) == 8  # parity has no mergeable minterms
        assert all(cube.num_literals() == 4 for cube in cover)


class TestValidation:
    def test_overlapping_on_dc_rejected(self):
        with pytest.raises(ValueError):
            minimize([1], 2, [1])

    def test_out_of_range_minterm_rejected(self):
        with pytest.raises(ValueError):
            minimize([4], 2)


class TestPrimes:
    def test_primes_cover_all_on_minterms(self):
        on = [0, 1, 2, 5, 6, 7]
        primes = prime_implicants(on, [], 3)
        for m in on:
            assert any(p.covers_point(m) for p in primes)

    def test_no_prime_contains_another(self):
        primes = prime_implicants([0, 1, 2, 3, 5], [], 3)
        for a in primes:
            for b in primes:
                if a != b:
                    assert not a.covers_cube(b)

    def test_select_cover_stays_within_primes(self):
        on = [0, 1, 2, 5, 6, 7]
        primes = prime_implicants(on, [], 3)
        chosen = select_cover(primes, on, 3)
        assert set(chosen) <= set(primes)


@st.composite
def incompletely_specified(draw, num_vars: int = 5):
    space = 1 << num_vars
    on = draw(st.sets(st.integers(0, space - 1), max_size=space))
    remaining = sorted(set(range(space)) - on)
    dc = draw(st.sets(st.sampled_from(remaining), max_size=len(remaining))
              if remaining else st.just(set()))
    return sorted(on), sorted(dc), num_vars


class TestProperties:
    @settings(max_examples=120, deadline=None)
    @given(incompletely_specified())
    def test_exact_agrees_with_spec(self, spec):
        on, dc, num_vars = spec
        cover = minimize_exact(on, num_vars, dc)
        care_off = [m for m in range(1 << num_vars)
                    if m not in set(on) | set(dc)]
        assert cover.agrees_with(on, care_off)

    @settings(max_examples=120, deadline=None)
    @given(incompletely_specified())
    def test_heuristic_agrees_with_spec(self, spec):
        on, dc, num_vars = spec
        cover = minimize_heuristic(on, num_vars, dc)
        care_off = [m for m in range(1 << num_vars)
                    if m not in set(on) | set(dc)]
        assert cover.agrees_with(on, care_off)

    @settings(max_examples=60, deadline=None)
    @given(incompletely_specified())
    def test_exact_not_larger_than_canonical(self, spec):
        on, dc, num_vars = spec
        cover = minimize_exact(on, num_vars, dc)
        assert len(cover) <= max(1, len(on))

    @settings(max_examples=60, deadline=None)
    @given(incompletely_specified(num_vars=4))
    def test_dispatcher_matches_exact_on_small_spaces(self, spec):
        on, dc, num_vars = spec
        via_dispatch = minimize(on, num_vars, dc)
        care_off = [m for m in range(1 << num_vars)
                    if m not in set(on) | set(dc)]
        assert via_dispatch.agrees_with(on, care_off)

    @settings(max_examples=60, deadline=None)
    @given(incompletely_specified())
    def test_primes_are_implicants(self, spec):
        on, dc, num_vars = spec
        if not on:
            return
        care_on = set(on) | set(dc)
        for prime in prime_implicants(on, dc, num_vars):
            assert set(prime.points(num_vars)) <= care_on


def test_cube_count_beats_minterm_count_when_mergeable():
    on = [0, 1, 2, 3]
    cover = minimize_exact(on, 3)
    assert len(cover) == 1
    assert cover.cubes[0] == Cube.from_string("--0")
