"""Mutation tests for the static verifier's rule catalogue.

Every registered rule gets two guarantees here:

* valid artifacts produced by the real pipeline verify **clean**;
* a minimally corrupted artifact makes exactly that rule fire, at a
  location pointing into the corrupted part.

The completeness test at the bottom keeps the two in lock-step: a rule
registered without a mutation (or a mutation for an unregistered rule)
fails the suite.
"""

from __future__ import annotations

import copy
import dataclasses
import types

import pytest

from repro.api import Experiment
from repro.api.registry import get_scheduler, list_schedulers
from repro.api.results import RunConfig
from repro.campaign.hashing import config_hash
from repro.campaign.store import CampaignStore, make_record
from repro.core.tam import CasBusTamDesign
from repro.diagnose.inject import DefectScenario
from repro.schedule.model import (
    Schedule,
    ScheduledEntry,
    ScheduledSession,
    TamProblem,
)
from repro.schedule.preemptive import Segment, schedule_preemptive
from repro.schedule.reconfig import static_partition
from repro.schedule.scheduler import schedule_greedy
from repro.sim.kernel import _scan_program
from repro.sim.config import configuration_targets
from repro.sim.system import build_system
from repro.soc.core import CoreTestParams, TestMethod
from repro.soc.library import fig1_soc, small_soc
from repro.verify import (
    RULES,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    VerifyReport,
    verify_batch_program,
    verify_configuration_targets,
    verify_outcome,
    verify_preemptive,
    verify_record,
    verify_scan_program,
    verify_scenario,
    verify_schedule,
    verify_session_programs,
    verify_static_plan,
    verify_store,
    verify_system,
)


def _scan(name, flops, patterns, max_wires):
    return CoreTestParams(name=name, method=TestMethod.SCAN, flops=flops,
                          patterns=patterns, max_wires=max_wires)


def _bist(name, cycles):
    return CoreTestParams(name=name, method=TestMethod.BIST, flops=0,
                          patterns=0, max_wires=1, fixed_cycles=cycles)


def _external(name, patterns):
    return CoreTestParams(name=name, method=TestMethod.EXTERNAL, flops=20,
                          patterns=patterns, max_wires=1)


WIDTH = 4
CORES = (
    _scan("c1", 35, 24, 2),
    _scan("c2", 20, 12, 2),
    _bist("c3", 96),
    _external("c4", 10),
)
PROBLEM = TamProblem.of(CORES, WIDTH)


def _greedy():
    return schedule_greedy(CORES, WIDTH)


def _preemptive():
    return schedule_preemptive(CORES, WIDTH)


def _scan_node(system):
    for node in system.nodes:
        if node.wrapper is not None:
            return node
    raise AssertionError("no scan node in system")


def _program(system):
    node = _scan_node(system)
    return _scan_program(node.spec, node.wrapper), node.spec


def _model_record():
    experiment = Experiment(
        list(CORES), RunConfig(bus_width=WIDTH, simulate=False)
    )
    result = experiment.run()
    return make_record(experiment, result,
                       config_hash=config_hash(experiment))


def _sim_record():
    experiment = Experiment(small_soc())
    result = experiment.run()
    return make_record(experiment, result,
                       config_hash=config_hash(experiment))


# -- valid artifacts verify clean ------------------------------------------


def test_greedy_schedule_is_clean():
    report = verify_schedule(_greedy(), PROBLEM)
    assert report.diagnostics == []
    assert report.checked == 1


def test_preemptive_schedule_is_clean():
    assert verify_preemptive(_preemptive(), PROBLEM).diagnostics == []


def test_static_plan_is_clean():
    plan = static_partition(CORES, WIDTH)
    assert verify_static_plan(plan, PROBLEM).diagnostics == []


@pytest.mark.parametrize("strategy", list_schedulers())
def test_every_strategy_outcome_is_clean(strategy):
    options = {}
    if strategy == "optimize-anneal":
        options = {"seed": 0, "iterations": 40}
    outcome = get_scheduler(strategy).schedule(CORES, WIDTH, **options)
    report = verify_outcome(outcome, PROBLEM)
    assert report.diagnostics == [], report.table()


def test_built_systems_are_clean():
    for soc in (small_soc(), fig1_soc()):
        report = verify_system(build_system(soc))
        assert report.diagnostics == [], report.table()


def test_session_programs_are_clean():
    soc = small_soc()
    system = build_system(soc)
    plan = CasBusTamDesign.for_soc(soc).executable_plan()
    report = VerifyReport()
    for session in plan.sessions:
        verify_session_programs(system, session, report=report)
    assert report.diagnostics == [], report.table()


def test_valid_scenarios_are_clean():
    soc = small_soc()
    scenarios = (
        DefectScenario.stuck_at("alpha", 0, 1),
        DefectScenario.open_wire(0),
        DefectScenario.bridge(0, 1),
        DefectScenario.dead_cell("alpha", 1),
    )
    for scenario in scenarios:
        assert verify_scenario(scenario, soc).diagnostics == []


def test_real_records_are_clean():
    for record in (_model_record(), _sim_record()):
        assert verify_record(record).diagnostics == []


def test_real_store_is_clean(tmp_path):
    store = CampaignStore(tmp_path / "store.jsonl")
    store.append(_model_record())
    report = verify_store(store)
    assert report.diagnostics == [], report.table()


# -- one mutation per rule -------------------------------------------------


class _LyingEntry:
    """Duck-typed schedule entry whose cycle claim is a plain lie.

    The real :class:`ScheduledEntry` derives ``cycles`` so it cannot
    disagree with itself; a deserialized or hand-built schedule can.
    """

    def __init__(self, params, wires, cycles):
        self.params = params
        self.wires = wires
        self.cycles = cycles


def _mut_sch001():
    schedule = _greedy()
    schedule.bus_width += 1
    return verify_schedule(schedule, PROBLEM), "schedule"


def _mut_sch002():
    entry = ScheduledEntry(CORES[2], 1)
    schedule = Schedule(WIDTH, [ScheduledSession((entry, entry))])
    return verify_schedule(schedule, PROBLEM), "entry[1]"


def _mut_sch003_unknown():
    ghost = ScheduledEntry(_scan("ghost", 10, 4, 1), 1)
    schedule = Schedule(WIDTH, [ScheduledSession((ghost,))])
    return verify_schedule(schedule, PROBLEM), "entry[0]"


def _mut_sch003_divergent():
    changed = dataclasses.replace(CORES[0], patterns=CORES[0].patterns + 1)
    schedule = Schedule(WIDTH, [ScheduledSession((
        ScheduledEntry(changed, 2),
    ))])
    return verify_schedule(schedule, PROBLEM), "entry[0]"


def _mut_sch004():
    schedule = Schedule(WIDTH, [ScheduledSession((
        ScheduledEntry(CORES[2], 1),
    ))])
    return verify_schedule(schedule, PROBLEM), "schedule"


def _mut_sch005():
    schedule = Schedule(WIDTH, [ScheduledSession((
        ScheduledEntry(CORES[2], 0),
    ))])
    return verify_schedule(schedule, PROBLEM), "entry[0]"


def _mut_sch006():
    liar = _LyingEntry(CORES[0], 2, cycles=123)
    schedule = Schedule(WIDTH, [ScheduledSession((liar,))])
    return verify_schedule(schedule, PROBLEM), "entry[0]"


def _mut_sch007():
    schedule = _greedy()
    schedule.config_cycles_total += 1
    return verify_schedule(schedule, PROBLEM), "schedule"


def _mut_pre001():
    schedule = _preemptive()
    schedule.segments.append(
        Segment(duration=10, allocations=(("c1", WIDTH + 1),))
    )
    return verify_preemptive(schedule, PROBLEM), "segment"


def _mut_pre002():
    schedule = _preemptive()
    schedule.segments.append(
        Segment(duration=10, allocations=(("c1", 1), ("c1", 1)))
    )
    return verify_preemptive(schedule, PROBLEM), "segment"


def _mut_pre003():
    schedule = _preemptive()
    schedule.config_cycles_total += 1
    return verify_preemptive(schedule, PROBLEM), "preemptive"


def _mut_sta001():
    plan = static_partition(CORES, WIDTH)
    broken = dataclasses.replace(
        plan, wires_per_group=plan.wires_per_group + (1,)
    )
    return verify_static_plan(broken, PROBLEM), "static-plan"


def _mut_sta002():
    plan = static_partition(CORES, WIDTH)
    broken = dataclasses.replace(
        plan, groups=(plan.groups[0][1:],) + plan.groups[1:]
    )
    return verify_static_plan(broken, PROBLEM), "static-plan"


def _mut_out001():
    outcome = get_scheduler("greedy").schedule(CORES, WIDTH)
    lying = dataclasses.replace(
        outcome, test_cycles=outcome.test_cycles + 1
    )
    return verify_outcome(lying, PROBLEM), "outcome[greedy]"


def _mut_prg001_overflow():
    system = build_system(small_soc())
    program, spec = _program(system)
    beyond = 1 << program.lengths[0]
    want_care = [list(response) for response in program.want_care]
    want_care[0][0] = (beyond, beyond)
    broken = dataclasses.replace(
        program,
        want_care=tuple(tuple(response) for response in want_care),
    )
    return (
        verify_scan_program(broken, spec),
        "response[0]/chain[0]",
    )


def _mut_prg001_outside_care():
    system = build_system(small_soc())
    program, spec = _program(system)
    want_care = [list(response) for response in program.want_care]
    want_care[0][0] = (1, 0)  # expects a bit it does not care about
    broken = dataclasses.replace(
        program,
        want_care=tuple(tuple(response) for response in want_care),
    )
    return (
        verify_scan_program(broken, spec),
        "response[0]/chain[0]",
    )


def _mut_prg002():
    system = build_system(small_soc())
    program, spec = _program(system)
    geometries = list(program.geometries)
    geometries[0] = dataclasses.replace(
        geometries[0], ff_ids=geometries[0].ff_ids[1:]
    )
    broken = dataclasses.replace(program, geometries=tuple(geometries))
    return verify_scan_program(broken, spec), f"program[{spec.name}]"


def _mut_prg003():
    system = build_system(small_soc())
    program, spec = _program(system)
    broken = dataclasses.replace(
        program, total_cycles=program.total_cycles + 1
    )
    return verify_scan_program(broken, spec), f"program[{spec.name}]"


def _batch_program():
    np = pytest.importorskip("numpy")
    from repro.sim.batch import batch_scan_program

    system = build_system(small_soc())
    node = _scan_node(system)
    return np, batch_scan_program(node.spec, node.wrapper), node.spec


def test_batch_programs_are_clean():
    _, program, spec = _batch_program()
    report = verify_batch_program(program, spec)
    assert report.diagnostics == [], report.table()


def _mut_prg006():
    np, program, spec = _batch_program()
    golden = program.golden.copy()
    golden[0, 0] ^= np.uint64(1)  # flip pattern 0 of output 0
    broken = dataclasses.replace(program, golden=golden)
    return (
        verify_batch_program(broken, spec),
        "response[0]/output[0]",
    )


def _mut_prg007():
    _, program, spec = _batch_program()
    broken = dataclasses.replace(program, words=program.words + 1)
    return verify_batch_program(broken, spec), f"batch[{spec.name}]"


def _mut_prg007_mask():
    np, program, spec = _batch_program()
    masks = program.masks.copy()
    masks[0] = np.uint64(1)
    broken = dataclasses.replace(program, masks=masks)
    return verify_batch_program(broken, spec), "word[0]"


def _session_targets():
    soc = small_soc()
    system = build_system(soc)
    plan = CasBusTamDesign.for_soc(soc).executable_plan()
    cas_targets, _ = configuration_targets(system, plan.sessions[0])
    return system, dict(cas_targets)


def _mut_prg004():
    system, cas_targets = _session_targets()
    cas_targets["ghost.cas"] = 0
    return (
        verify_configuration_targets(system, cas_targets),
        "ghost.cas",
    )


def _mut_prg005():
    system, cas_targets = _session_targets()
    register = sorted(cas_targets)[0]
    cas_targets[register] = 1 << 30
    return verify_configuration_targets(system, cas_targets), register


def _mut_des001():
    system = build_system(small_soc())
    node = system.nodes[0]
    node.cas = types.SimpleNamespace(n=system.n, p=node.spec.p + 1)
    return verify_system(system), node.path


def _mut_des002():
    system = build_system(small_soc())
    node = _scan_node(system)
    node.wrapper.chain_layout = lambda: [((0,), (0,))]
    return verify_system(system), node.path


def _mut_des003():
    system = build_system(small_soc())
    node = system.nodes[0]
    node.cas = types.SimpleNamespace(n=system.n + 1, p=node.spec.p)
    return verify_system(system), node.path


def _mut_scn001_missing():
    scenario = DefectScenario.stuck_at("ghost", 0, 1)
    return verify_scenario(scenario, small_soc()), "scenario"


def _mut_scn001_hierarchical():
    scenario = DefectScenario.stuck_at("core5", 0, 1)
    return verify_scenario(scenario, fig1_soc()), "scenario"


def _mut_scn002():
    scenario = DefectScenario.open_wire(99)
    return verify_scenario(scenario, small_soc()), "scenario"


def _mut_scn003():
    scenario = DefectScenario.dead_cell("alpha", 99)
    return verify_scenario(scenario, small_soc()), "scenario"


def _mut_scn004():
    scenario = DefectScenario.open_wire(0)
    return (
        verify_scenario(scenario, small_soc(), backend="kernel"),
        "scenario",
    )


def _mut_rec001():
    return verify_record(["not", "a", "mapping"]), "record"


def _mut_rec001_schema():
    record = _model_record()
    record["schema"] = 999
    return verify_record(record), "record"


def _mut_rec002():
    record = _model_record()
    record["hash"] = "nope"
    return verify_record(record), "record"


def _mut_rec003():
    record = _model_record()
    del record["result"]["architecture"]
    return verify_record(record), "record"


def _mut_rec004():
    record = _sim_record()
    record["result"]["test_cycles"] += 1
    return verify_record(record), "record"


def _mut_rec005():
    record = _model_record()
    record["result"]["passed"] = True
    return verify_record(record), "record"


def _mut_rec006():
    record = _model_record()
    record["result"]["architecture"] = "warp-drive"
    return verify_record(record), "record"


def _mut_rec007(tmp_path):
    store = CampaignStore(tmp_path / "torn.jsonl")
    store.append(_model_record())
    with open(store.path, "a") as handle:
        handle.write("{torn-off mid-append\n")
    return verify_store(store), "torn.jsonl"


def _mut_rec008(tmp_path):
    store = CampaignStore(tmp_path / "empty.jsonl")
    return verify_store(store), "empty.jsonl"


def _mut_rec009(tmp_path):
    import sqlite3

    from repro.campaign import SqliteStore

    store = SqliteStore(tmp_path / "drift.sqlite")
    store.append(_model_record())
    # Drift the maintained aggregates away from the records the way
    # only out-of-band writes can (append/merge keep them in step).
    with sqlite3.connect(store.path) as connection:
        connection.execute("UPDATE aggregates SET runs = runs + 5")
    return verify_store(store), "drift.sqlite"


MUTATIONS = [
    ("SCH001", _mut_sch001),
    ("SCH002", _mut_sch002),
    ("SCH003", _mut_sch003_unknown),
    ("SCH003", _mut_sch003_divergent),
    ("SCH004", _mut_sch004),
    ("SCH005", _mut_sch005),
    ("SCH006", _mut_sch006),
    ("SCH007", _mut_sch007),
    ("PRE001", _mut_pre001),
    ("PRE002", _mut_pre002),
    ("PRE003", _mut_pre003),
    ("STA001", _mut_sta001),
    ("STA002", _mut_sta002),
    ("OUT001", _mut_out001),
    ("PRG001", _mut_prg001_overflow),
    ("PRG001", _mut_prg001_outside_care),
    ("PRG002", _mut_prg002),
    ("PRG003", _mut_prg003),
    ("PRG004", _mut_prg004),
    ("PRG005", _mut_prg005),
    ("PRG006", _mut_prg006),
    ("PRG007", _mut_prg007),
    ("PRG007", _mut_prg007_mask),
    ("DES001", _mut_des001),
    ("DES002", _mut_des002),
    ("DES003", _mut_des003),
    ("SCN001", _mut_scn001_missing),
    ("SCN001", _mut_scn001_hierarchical),
    ("SCN002", _mut_scn002),
    ("SCN003", _mut_scn003),
    ("SCN004", _mut_scn004),
    ("REC001", _mut_rec001),
    ("REC001", _mut_rec001_schema),
    ("REC002", _mut_rec002),
    ("REC003", _mut_rec003),
    ("REC004", _mut_rec004),
    ("REC005", _mut_rec005),
    ("REC006", _mut_rec006),
    ("REC007", _mut_rec007),
    ("REC008", _mut_rec008),
    ("REC009", _mut_rec009),
]


@pytest.mark.parametrize(
    "rule_id,mutate", MUTATIONS,
    ids=[f"{rule_id}-{fn.__name__}" for rule_id, fn in MUTATIONS],
)
def test_mutation_fires_exact_rule(rule_id, mutate, tmp_path):
    if "tmp_path" in mutate.__code__.co_varnames[
            :mutate.__code__.co_argcount]:
        report, location_part = mutate(tmp_path)
    else:
        report, location_part = mutate()
    fired = [d for d in report.diagnostics if d.rule_id == rule_id]
    assert fired, (
        f"{rule_id} did not fire; got {sorted(report.rule_ids())}"
    )
    assert any(location_part in d.location for d in fired), (
        f"no {rule_id} diagnostic at a location containing "
        f"{location_part!r}: {[d.location for d in fired]}"
    )
    for diagnostic in fired:
        assert diagnostic.severity == RULES[rule_id].severity


def test_every_registered_rule_has_a_mutation():
    covered = {rule_id for rule_id, _ in MUTATIONS}
    assert covered == set(RULES), (
        f"rules without mutation: {sorted(set(RULES) - covered)}; "
        f"mutations for unregistered rules: "
        f"{sorted(covered - set(RULES))}"
    )


def test_rule_catalogue_is_well_formed():
    for rule_id, registered in RULES.items():
        assert registered.rule_id == rule_id
        assert registered.severity in (SEVERITY_ERROR, SEVERITY_WARNING)
        assert registered.summary


def test_report_round_trips_and_renders():
    report, _ = _mut_sch007()
    (diagnostic,) = report.diagnostics
    from repro.verify import Diagnostic

    assert Diagnostic.from_dict(diagnostic.to_dict()) == diagnostic
    assert "SCH007" in diagnostic.render()
    assert "SCH007" in report.table()
    assert not report.ok
    with pytest.raises(Exception) as excinfo:
        report.raise_if_failed("ctx")
    assert "ctx" in str(excinfo.value)


def test_deep_copied_record_stays_clean():
    # Guard against mutation helpers aliasing one shared record.
    record = _model_record()
    assert verify_record(copy.deepcopy(record)).diagnostics == []
