"""Unit tests for the four-valued logic primitives."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import values as lv

value_st = st.sampled_from(lv.VALUES)


class TestConversions:
    def test_char_round_trip(self):
        for value in lv.VALUES:
            assert lv.from_char(lv.to_char(value)) == value

    def test_string_round_trip(self):
        seq = (lv.ZERO, lv.ONE, lv.X, lv.Z)
        assert lv.from_string(lv.to_string(seq)) == seq

    def test_from_char_rejects_garbage(self):
        with pytest.raises(ValueError):
            lv.from_char("q")

    def test_lowercase_accepted(self):
        assert lv.from_char("x") == lv.X
        assert lv.from_char("z") == lv.Z


class TestGates:
    def test_not_truth_table(self):
        assert lv.v_not(lv.ZERO) == lv.ONE
        assert lv.v_not(lv.ONE) == lv.ZERO
        assert lv.v_not(lv.X) == lv.X
        assert lv.v_not(lv.Z) == lv.X

    def test_and_dominant_zero(self):
        for other in lv.VALUES:
            assert lv.v_and((lv.ZERO, other)) == lv.ZERO
            assert lv.v_and((other, lv.ZERO)) == lv.ZERO

    def test_or_dominant_one(self):
        for other in lv.VALUES:
            assert lv.v_or((lv.ONE, other)) == lv.ONE
            assert lv.v_or((other, lv.ONE)) == lv.ONE

    def test_and_unknown_propagation(self):
        assert lv.v_and((lv.ONE, lv.X)) == lv.X
        assert lv.v_and((lv.ONE, lv.Z)) == lv.X
        assert lv.v_and((lv.ONE, lv.ONE)) == lv.ONE

    def test_xor_known_parity(self):
        assert lv.v_xor((lv.ONE, lv.ONE, lv.ONE)) == lv.ONE
        assert lv.v_xor((lv.ONE, lv.ONE)) == lv.ZERO
        assert lv.v_xor((lv.ONE, lv.X)) == lv.X

    def test_buf_cleans_floating(self):
        assert lv.v_buf(lv.Z) == lv.X
        assert lv.v_buf(lv.ONE) == lv.ONE

    @given(value_st, value_st)
    def test_de_morgan_two_inputs(self, a, b):
        left = lv.v_not(lv.v_and((a, b)))
        right = lv.v_or((lv.v_not(a), lv.v_not(b)))
        assert left == right


class TestMux:
    def test_select_known(self):
        assert lv.v_mux(lv.ZERO, lv.ONE, lv.ZERO) == lv.ZERO
        assert lv.v_mux(lv.ZERO, lv.ONE, lv.ONE) == lv.ONE

    def test_unknown_select_agreeing_data(self):
        assert lv.v_mux(lv.ONE, lv.ONE, lv.X) == lv.ONE
        assert lv.v_mux(lv.ZERO, lv.ZERO, lv.Z) == lv.ZERO

    def test_unknown_select_disagreeing_data(self):
        assert lv.v_mux(lv.ZERO, lv.ONE, lv.X) == lv.X

    @given(value_st, value_st, value_st)
    def test_mux_never_returns_z(self, d0, d1, sel):
        assert lv.v_mux(d0, d1, sel) != lv.Z


class TestTristate:
    def test_enabled_passes_data(self):
        assert lv.v_tristate(lv.ONE, lv.ONE) == lv.ONE
        assert lv.v_tristate(lv.ZERO, lv.ONE) == lv.ZERO

    def test_disabled_floats(self):
        for data in lv.VALUES:
            assert lv.v_tristate(data, lv.ZERO) == lv.Z

    def test_unknown_enable_is_x(self):
        assert lv.v_tristate(lv.ONE, lv.X) == lv.X


class TestResolution:
    def test_z_is_identity(self):
        for value in lv.VALUES:
            assert lv.resolve(value, lv.Z) == value
            assert lv.resolve(lv.Z, value) == value

    def test_contention_is_x(self):
        assert lv.resolve(lv.ZERO, lv.ONE) == lv.X

    def test_agreement_keeps_value(self):
        assert lv.resolve(lv.ONE, lv.ONE) == lv.ONE
        assert lv.resolve(lv.ZERO, lv.ZERO) == lv.ZERO

    def test_empty_net_floats(self):
        assert lv.resolve_all(()) == lv.Z

    @given(value_st, value_st)
    def test_resolve_commutative(self, a, b):
        assert lv.resolve(a, b) == lv.resolve(b, a)

    @given(value_st, value_st, value_st)
    def test_resolve_associative(self, a, b, c):
        left = lv.resolve(lv.resolve(a, b), c)
        right = lv.resolve(a, lv.resolve(b, c))
        assert left == right

    @given(st.lists(value_st, max_size=6))
    def test_resolve_all_matches_pairwise(self, drivers):
        expected = lv.Z
        for d in drivers:
            expected = lv.resolve(expected, d)
        assert lv.resolve_all(drivers) == expected

    def test_exhaustive_resolution_table(self):
        # X wins over everything except when both sides agree.
        for a, b in itertools.product(lv.VALUES, repeat=2):
            result = lv.resolve(a, b)
            if a == lv.Z:
                assert result == b
            elif b == lv.Z:
                assert result == a
            elif a == b and a in lv.DRIVEN:
                assert result == a
            else:
                assert result == lv.X
