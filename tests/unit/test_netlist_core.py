"""Unit tests for the netlist IR, cell library and area model."""

from __future__ import annotations

import pytest

from repro import values as lv
from repro.errors import SynthesisError
from repro.netlist.area import area_report, mapped_cell_units
from repro.netlist.cells import CELL_LIBRARY, cell_spec
from repro.netlist.netlist import Netlist


class TestCellLibrary:
    def test_every_combinational_cell_evaluates(self):
        for name, spec in CELL_LIBRARY.items():
            if spec.sequential:
                continue
            arity = spec.num_inputs if spec.num_inputs is not None else 2
            result = spec.evaluate([lv.ONE] * arity)
            assert result in lv.VALUES, name

    def test_unknown_cell_rejected(self):
        with pytest.raises(KeyError, match="unknown cell kind"):
            cell_spec("FLUXCAP")

    def test_sequential_flags(self):
        assert cell_spec("DFF").sequential
        assert cell_spec("DFFE").sequential
        assert not cell_spec("AND").sequential

    def test_tristate_flag(self):
        assert cell_spec("TRIBUF").tristate
        assert not cell_spec("MUX2").tristate


class TestNetlistConstruction:
    def test_basic_build(self):
        nl = Netlist(name="t")
        a = nl.add_input("a")
        b = nl.add_input("b")
        y = nl.add_output("y")
        nl.add_gate("AND", (a, b), y)
        nl.validate()
        assert nl.stats()["gates"] == 1

    def test_duplicate_input_rejected(self):
        nl = Netlist(name="t")
        nl.add_input("a")
        with pytest.raises(SynthesisError):
            nl.add_input("a")

    def test_wrong_pin_count_rejected(self):
        nl = Netlist(name="t")
        nl.add_input("a")
        with pytest.raises(SynthesisError):
            nl.add_gate("MUX2", ("a",), "y")

    def test_multiple_drivers_rejected_for_plain_gates(self):
        nl = Netlist(name="t")
        a = nl.add_input("a")
        nl.add_gate("BUF", (a,), "y")
        with pytest.raises(SynthesisError, match="multiple non-tristate"):
            nl.add_gate("BUF", (a,), "y")

    def test_multiple_tristate_drivers_allowed(self):
        nl = Netlist(name="t")
        a = nl.add_input("a")
        en = nl.add_input("en")
        nl.add_gate("TRIBUF", (a, en), "y")
        nl.add_gate("TRIBUF", (a, en), "y")
        assert len(nl.drivers_of("y")) == 2

    def test_driving_primary_input_rejected(self):
        nl = Netlist(name="t")
        a = nl.add_input("a")
        b = nl.add_input("b")
        with pytest.raises(SynthesisError):
            nl.add_gate("BUF", (b,), a)

    def test_undriven_output_caught_by_validate(self):
        nl = Netlist(name="t")
        nl.add_output("y")
        with pytest.raises(SynthesisError, match="undriven"):
            nl.validate()

    def test_combinational_cycle_caught(self):
        nl = Netlist(name="t")
        nl.add_input("a")
        nl.add_gate("AND", ("a", "loop"), "x")
        nl.add_gate("BUF", ("x",), "loop")
        with pytest.raises(SynthesisError, match="cycle"):
            nl.validate()

    def test_cycle_through_dff_is_fine(self):
        nl = Netlist(name="t")
        a = nl.add_input("a")
        nl.add_gate("AND", (a, "q"), "d")
        nl.add_gate("DFF", ("d",), "q")
        nl.validate()

    def test_duplicate_instance_name_rejected(self):
        nl = Netlist(name="t")
        a = nl.add_input("a")
        nl.add_gate("BUF", (a,), "x", name="u1")
        with pytest.raises(SynthesisError, match="duplicate instance"):
            nl.add_gate("BUF", (a,), "y", name="u1")


class TestAreaModel:
    def test_fixed_arity_maps_to_one_cell(self):
        assert mapped_cell_units("MUX2", 3) == 1
        assert mapped_cell_units("DFF", 1) == 1

    def test_variadic_maps_to_tree(self):
        assert mapped_cell_units("AND", 2) == 1
        assert mapped_cell_units("AND", 5) == 4
        assert mapped_cell_units("OR", 1) == 1

    def test_report_counts(self):
        nl = Netlist(name="t")
        a = nl.add_input("a")
        b = nl.add_input("b")
        c = nl.add_input("c")
        y = nl.add_output("y")
        nl.add_gate("AND", (a, b, c), "x")
        nl.add_gate("DFF", ("x",), y)
        report = area_report(nl)
        assert report.cell_count == 3  # 2 AND2 + 1 DFF
        assert report.by_kind == {"AND": 2, "DFF": 1}
        assert report.area_ge == pytest.approx(2 * 1.5 + 4.25)

    def test_report_str_mentions_name(self):
        nl = Netlist(name="mydesign")
        a = nl.add_input("a")
        nl.add_output("y")
        nl.add_gate("BUF", (a,), "y")
        assert "mydesign" in str(area_report(nl))
