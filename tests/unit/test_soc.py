"""Unit tests for SoC workload descriptors."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.soc.core import CoreSpec, TestMethod
from repro.soc.itc02 import d695_like, random_test_params
from repro.soc.library import fig1_soc, make_synthetic_soc, small_soc
from repro.soc.soc import SocSpec


class TestCoreSpec:
    def test_scan_p_is_chain_count(self):
        core = CoreSpec.scan("c", seed=1, num_ffs=12, num_chains=3)
        assert core.p == 3
        core.validate()

    def test_bist_p_is_one(self):
        core = CoreSpec.bist("c", seed=1)
        assert core.p == 1
        core.validate()

    def test_external_p_is_one(self):
        core = CoreSpec.external("c", seed=1)
        assert core.p == 1
        core.validate()

    def test_hierarchical_p_is_inner_width(self):
        inner = small_soc(bus_width=3)
        core = CoreSpec.hierarchical("h", inner=inner)
        assert core.p == 3
        core.validate()

    def test_hierarchical_without_inner_rejected(self):
        core = CoreSpec(name="h", method=TestMethod.HIERARCHICAL)
        with pytest.raises(ConfigurationError, match="inner"):
            core.validate()

    def test_chain_length_mismatch_rejected(self):
        core = CoreSpec.scan("c", seed=1, num_ffs=10, num_chains=2,
                             chain_lengths=(4, 4))
        with pytest.raises(ConfigurationError):
            core.validate()

    def test_build_scannable_deterministic(self):
        spec = CoreSpec.scan("c", seed=42, num_ffs=10, num_chains=2)
        a = spec.build_scannable()
        b = spec.build_scannable()
        assert a.cloud.ops == b.cloud.ops
        assert a.chains == b.chains

    def test_hierarchical_has_no_flat_model(self):
        core = CoreSpec.hierarchical("h", inner=small_soc())
        with pytest.raises(ConfigurationError):
            core.build_scannable()

    def test_test_params_scan(self):
        spec = CoreSpec.scan("c", seed=1, num_ffs=20, num_chains=4,
                             num_pis=3, num_pos=5, atpg_max_patterns=50)
        params = spec.test_params()
        assert params.flops == 28
        assert params.patterns == 50
        assert params.max_wires == 4
        assert params.fixed_cycles is None

    def test_test_params_bist(self):
        spec = CoreSpec.bist("c", seed=1, bist_cycles=100,
                             signature_width=16)
        params = spec.test_params()
        assert params.fixed_cycles == 116
        assert params.max_wires == 1


class TestSocSpec:
    def test_fig1_validates(self):
        soc = fig1_soc()
        assert len(soc) == 7
        assert soc.bus_width == 4
        methods = {core.method for core in soc}
        assert methods == set(TestMethod)

    def test_fig1_core_p_values(self):
        soc = fig1_soc()
        assert soc.core_named("core1").p == 3
        assert soc.core_named("core3").p == 1
        assert soc.core_named("core5").p == 2

    def test_fig1_needs_width_three(self):
        with pytest.raises(ConfigurationError):
            fig1_soc(bus_width=2)

    def test_p_exceeding_bus_rejected(self):
        soc = SocSpec(
            name="bad", bus_width=2,
            cores=(CoreSpec.scan("c", seed=1, num_ffs=9, num_chains=3),),
        )
        with pytest.raises(ConfigurationError, match="P <= N"):
            soc.validate()

    def test_duplicate_names_rejected(self):
        core = CoreSpec.bist("dup", seed=1)
        soc = SocSpec(name="bad", bus_width=2, cores=(core, core))
        with pytest.raises(ConfigurationError, match="duplicate"):
            soc.validate()

    def test_core_named_missing(self):
        with pytest.raises(ConfigurationError):
            small_soc().core_named("nope")

    def test_describe_mentions_cores(self):
        text = fig1_soc().describe()
        assert "core5" in text and "hierarchical" in text
        assert "system bus" in text

    def test_synthetic_socs_validate(self):
        for seed in range(8):
            soc = make_synthetic_soc(seed, num_cores=4, bus_width=4)
            soc.validate()

    def test_synthetic_deterministic(self):
        a = make_synthetic_soc(3, num_cores=5)
        b = make_synthetic_soc(3, num_cores=5)
        assert a == b


class TestItc02Workloads:
    def test_d695_like_shape(self):
        cores = d695_like()
        assert len(cores) == 10
        assert any(core.flops > 2000 for core in cores)
        assert any(core.flops < 100 for core in cores)

    def test_random_params_deterministic(self):
        assert random_test_params(5) == random_test_params(5)

    def test_random_params_mixes_methods(self):
        cores = random_test_params(1, num_cores=30, bist_fraction=0.4)
        methods = {core.method for core in cores}
        assert TestMethod.SCAN in methods
        assert TestMethod.BIST in methods

    def test_bist_cores_have_fixed_cycles(self):
        for core in random_test_params(2, num_cores=20, bist_fraction=1.0):
            assert core.fixed_cycles is not None
            assert core.max_wires == 1
