"""Unit and property tests for the test bus and CAS chains."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import values as lv
from repro.errors import ConfigurationError, SimulationError
from repro.core.bus import CasChain
from repro.core.bus import TestBus as Bus  # alias dodges pytest collection
from repro.core.cas import CoreAccessSwitch
from repro.core.instruction import InstructionSet


def _chain(specs):
    """Build a chain from (n, p) pairs sharing bus width n."""
    cases = [
        CoreAccessSwitch(InstructionSet(n, p), name=f"cas{i}")
        for i, (n, p) in enumerate(specs)
    ]
    return CasChain(cases)


class TestBusBasics:
    def test_wire_names(self):
        assert Bus(3).wire_names() == ["w0", "w1", "w2"]

    def test_zero_width_rejected(self):
        with pytest.raises(ConfigurationError):
            Bus(0)

    def test_empty_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            CasChain([])

    def test_mixed_widths_rejected(self):
        a = CoreAccessSwitch(InstructionSet(3, 1))
        b = CoreAccessSwitch(InstructionSet(4, 1))
        with pytest.raises(ConfigurationError, match="share N"):
            CasChain([a, b])


class TestConfigurationChain:
    def test_total_ir_bits(self):
        chain = _chain([(4, 2), (4, 1), (4, 3)])  # k = 4, 3, 5
        assert chain.total_ir_bits() == 12

    def test_run_configuration_loads_codes(self):
        chain = _chain([(4, 2), (4, 1), (4, 3)])
        codes = [5, 3, 7]
        cycles = chain.run_configuration(codes)
        assert [cas.active_code for cas in chain.cases] == codes
        assert cycles == chain.total_ir_bits() + 1

    def test_bitstream_length(self):
        chain = _chain([(4, 2), (4, 2)])
        stream = chain.config_bitstream([0, 1])
        assert len(stream) == 8

    def test_invalid_code_rejected_early(self):
        chain = _chain([(4, 2)])
        with pytest.raises(ConfigurationError, match="invalid"):
            chain.config_bitstream([99])

    def test_wrong_code_count_rejected(self):
        chain = _chain([(4, 2), (4, 2)])
        with pytest.raises(ConfigurationError):
            chain.config_bitstream([1])

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_configuration_round_trip_property(self, data):
        """Any code vector shifted through any chain lands correctly --
        this pins down the stream ordering rules."""
        n = data.draw(st.integers(2, 5))
        count = data.draw(st.integers(1, 4))
        specs = [(n, data.draw(st.integers(1, n))) for _ in range(count)]
        chain = _chain(specs)
        codes = [
            data.draw(st.integers(0, cas.iset.m - 1)) for cas in chain.cases
        ]
        chain.run_configuration(codes)
        assert [cas.active_code for cas in chain.cases] == codes

    def test_reconfiguration_overwrites(self):
        chain = _chain([(4, 2), (4, 2)])
        chain.run_configuration([2, 3])
        chain.run_configuration([0, 5])
        assert [cas.active_code for cas in chain.cases] == [0, 5]

    def test_reset_all(self):
        chain = _chain([(4, 2), (4, 2)])
        chain.run_configuration([4, 5])
        chain.reset_all()
        assert [cas.active_code for cas in chain.cases] == [0, 0]


class TestTransport:
    def test_all_bypass_is_transparent(self):
        chain = _chain([(4, 2), (4, 1), (4, 3)])
        bus_in = (lv.ONE, lv.ZERO, lv.ONE, lv.ONE)
        returns = [(lv.ZERO,) * cas.p for cas in chain.cases]
        routing = chain.route(bus_in, returns)
        assert routing.bus_out == bus_in
        for o in routing.core_outputs:
            assert all(v == lv.Z for v in o)

    def test_two_cores_on_disjoint_wires(self):
        """Concurrent test: CAS0 uses wires {0,1}, CAS1 uses wires {2,3}."""
        chain = _chain([(4, 2), (4, 2)])
        iset = chain.cases[0].iset
        scheme0 = next(s for s in iset.schemes if s.wire_of_port == (0, 1))
        scheme1 = next(s for s in iset.schemes if s.wire_of_port == (2, 3))
        chain.run_configuration(
            [iset.encode(scheme0), iset.encode(scheme1)]
        )
        bus_in = (lv.ONE, lv.ZERO, lv.ZERO, lv.ONE)
        returns = [(lv.ONE, lv.ONE), (lv.ZERO, lv.ZERO)]
        routing = chain.route(bus_in, returns)
        # CAS0 sees wires 0,1 and returns its values on them.
        assert routing.core_outputs[0] == (lv.ONE, lv.ZERO)
        assert routing.bus_out[0] == lv.ONE
        assert routing.bus_out[1] == lv.ONE
        # CAS1 sees wires 2,3 (untouched by CAS0's returns).
        assert routing.core_outputs[1] == (lv.ZERO, lv.ONE)
        assert routing.bus_out[2] == lv.ZERO
        assert routing.bus_out[3] == lv.ZERO

    def test_serial_path_through_two_tested_cores(self):
        """Same wire switched by two CASes in sequence: the wire forms a
        path source -> core A -> core B -> sink (the paper's path
        construction property)."""
        chain = _chain([(3, 1), (3, 1)])
        iset = chain.cases[0].iset
        scheme_w1 = next(s for s in iset.schemes if s.wire_of_port == (1,))
        code = iset.encode(scheme_w1)
        chain.run_configuration([code, code])
        bus_in = (lv.ZERO, lv.ONE, lv.ZERO)
        # Core A returns 0, core B returns 1.
        routing = chain.route(bus_in, [(lv.ZERO,), (lv.ONE,)])
        # CAS0 forwarded e1 to its core; its return (0) became CAS1's e1.
        assert routing.core_outputs[0] == (lv.ONE,)
        assert routing.core_outputs[1] == (lv.ZERO,)
        assert routing.bus_out[1] == lv.ONE

    def test_route_validates_widths(self):
        chain = _chain([(3, 1)])
        with pytest.raises(SimulationError):
            chain.route((lv.ZERO,) * 2, [(lv.ZERO,)])
        with pytest.raises(SimulationError):
            chain.route((lv.ZERO,) * 3, [])

    def test_idle_bus(self):
        chain = _chain([(3, 1)])
        assert chain.idle_bus() == (lv.ZERO, lv.ZERO, lv.ZERO)

    def test_config_mode_exposes_serial_chain(self):
        chain = _chain([(3, 1), (3, 1)])
        chain.cases[0].load_code(0b001)
        chain.cases[1].load_code(0b000)
        routing = chain.route(
            (lv.ONE, lv.ZERO, lv.ZERO),
            [(lv.ZERO,), (lv.ZERO,)],
            config=True,
        )
        # s0 of the chain is the last CAS's serial out (0 here).
        assert routing.bus_out[0] == lv.ZERO
