"""The ``python -m repro`` command line, end to end.

Most tests drive ``main(argv)`` in-process; one subprocess test pins
the ``python -m repro`` wiring itself.  The central assertion mirrors
the CI campaign job: shard 1/2 + shard 2/2 + merge reports exactly
the unsharded table.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.campaign.cli import main

SWEEP_ARGS = [
    "--architectures", "casbus,mux-bus",
    "--bus-widths", "8,16",
    "--schedulers", "greedy",
    "--serial",
]


def _sweep(store, *extra) -> int:
    return main([
        "sweep", "itc02-d695", "itc02-g1023",
        "--campaign", "cli", "--store", str(store),
        *SWEEP_ARGS, "--quiet", *extra,
    ])


class TestShardMergeEquivalence:
    def test_sharded_merge_reproduces_unsharded_table(
            self, tmp_path, capsys):
        full = tmp_path / "full.jsonl"
        assert _sweep(full) == 0
        shards = []
        for index in (1, 2):
            shard_store = tmp_path / f"shard{index}.jsonl"
            assert _sweep(shard_store, "--shard", f"{index}/2") == 0
            shards.append(str(shard_store))
        merged = tmp_path / "merged.jsonl"
        assert main(["merge", *shards, "-o", str(merged)]) == 0
        capsys.readouterr()

        assert main(["report", str(full)]) == 0
        expected = capsys.readouterr().out
        assert main(["report", str(merged)]) == 0
        assert capsys.readouterr().out == expected

    def test_shards_partition_the_grid(self, tmp_path, capsys):
        full = tmp_path / "full.jsonl"
        _sweep(full)
        counts = []
        for index in (1, 2):
            shard_store = tmp_path / f"s{index}.jsonl"
            _sweep(shard_store, "--shard", f"{index}/2")
            counts.append(len(shard_store.read_text().splitlines()))
        assert sum(counts) == len(full.read_text().splitlines())


class TestSweep:
    def test_sweep_resumes(self, tmp_path, capsys):
        store = tmp_path / "s.jsonl"
        _sweep(store)
        first = capsys.readouterr().out
        assert "8 executed, 0 cached" in first
        _sweep(store)
        second = capsys.readouterr().out
        assert "0 executed, 8 cached" in second

    def test_sweep_table_sorted_by_hash(self, tmp_path, capsys):
        store = tmp_path / "s.jsonl"
        main([
            "sweep", "itc02-d695", "--campaign", "cli",
            "--store", str(store), *SWEEP_ARGS,
        ])
        out = capsys.readouterr().out
        # summary, header, separator, then one row per run
        table = [line for line in out.splitlines() if line][3:]
        hashes = [line.split()[0] for line in table]
        assert len(hashes) == 4 and hashes == sorted(hashes)

    def test_bad_shard_spec_errors(self, tmp_path, capsys):
        store = tmp_path / "s.jsonl"
        code = _sweep(store, "--shard", "3/2")
        assert code == 2
        assert "shard" in capsys.readouterr().err


class TestRunAndReport:
    def test_run_records_and_caches(self, tmp_path, capsys):
        store = tmp_path / "one.jsonl"
        args = [
            "run", "itc02-d695", "-a", "mux-bus", "-w", "8",
            "--store", str(store),
        ]
        assert main(args) == 0
        assert "cached" not in capsys.readouterr().out
        assert main(args) == 0
        assert "cached" in capsys.readouterr().out
        assert len(store.read_text().splitlines()) == 1

    def test_run_json_payload(self, capsys):
        code = main([
            "run", "itc02-d695", "-a", "mux-bus", "-w", "8", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["architecture"] == "mux-bus"
        assert payload["bus_width"] == 8
        assert len(payload["hash"]) == 64

    def test_report_json(self, tmp_path, capsys):
        store = tmp_path / "s.jsonl"
        _sweep(store)
        capsys.readouterr()
        assert main(["report", str(store), "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 8
        assert all(record["schema"] == 1 for record in records)

    def test_unknown_workload_errors(self, capsys):
        code = main(["run", "no-such-workload"])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_merge_onto_source_errors(self, tmp_path, capsys):
        store = tmp_path / "s.jsonl"
        _sweep(store)
        capsys.readouterr()
        code = main(["merge", str(store), "-o", str(store)])
        assert code == 2
        assert "source" in capsys.readouterr().err

    def test_list_names_components(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "casbus" in out and "greedy" in out and "itc02-d695" in out


class TestListDetail:
    def test_scheduler_detail_table(self, capsys):
        assert main(["list", "--schedulers"]) == 0
        out = capsys.readouterr().out
        assert "optimize-anneal" in out
        assert "aliases" in out and "description" in out
        assert "bnb, branch-and-bound" in out
        assert "architectures" not in out  # only the asked section

    def test_architecture_detail_table(self, capsys):
        assert main(["list", "--architectures"]) == 0
        out = capsys.readouterr().out
        assert "casbus" in out and "cas-bus" in out
        assert "CAS-BUS" in out  # the one-line description

    def test_combined_detail_sections(self, capsys):
        assert main(["list", "--schedulers", "--workloads"]) == 0
        out = capsys.readouterr().out
        assert "schedulers:" in out and "workloads:" in out


class TestOptimize:
    def test_pareto_table_and_store(self, tmp_path, capsys):
        store = tmp_path / "pareto.jsonl"
        args = [
            "optimize", "itc02-d695", "-w", "8", "--widths", "4,8",
            "--quiet", "--store", str(store),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Pareto front" in out
        assert "persisted" in out
        first = store.read_text().splitlines()
        assert len(first) >= 1
        # Re-running resumes from the store: no duplicate records.
        assert main(args) == 0
        assert store.read_text().splitlines() == first
        # The persisted points tabulate like any campaign store.
        capsys.readouterr()
        assert main(["report", str(store)]) == 0
        assert "optimize-bnb" in capsys.readouterr().out

    def test_json_payload(self, capsys):
        code = main(["optimize", "small", "--method", "bnb", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "optimize-bnb"
        assert payload["pareto"]
        point = payload["pareto"][-1]
        assert point["total_cycles"] == (point["test_cycles"]
                                         + point["config_cycles"])

    def test_missing_width_errors(self, capsys):
        code = main(["optimize", "itc02-d695"])
        assert code == 2
        assert "bus width" in capsys.readouterr().err

    def test_json_carries_cache_stats(self, capsys):
        code = main(["optimize", "small", "--method", "bnb", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        stats = payload["cache_stats"]
        assert stats["cost_model"]["misses"] > 0
        assert stats["evaluations"]["misses"] == payload["evaluations"]

    def test_portfolio_json_identical_across_jobs(self, capsys):
        payloads = []
        for jobs in ("1", "2"):
            code = main([
                "optimize", "itc02-d695", "-w", "8", "--widths", "8",
                "--method", "portfolio", "--budget", "400",
                "--jobs", jobs, "--json",
            ])
            assert code == 0
            payloads.append(json.loads(capsys.readouterr().out))
        assert payloads[0] == payloads[1]
        assert payloads[0]["method"] == "optimize-portfolio"
        assert "shared_cache" in payloads[0]["cache_stats"]

    def test_portfolio_flag_implies_method_and_persists(
            self, tmp_path, capsys):
        store = tmp_path / "portfolio.jsonl"
        code = main([
            "optimize", "itc02-d695", "-w", "8", "--widths", "8",
            "--portfolio", "anneal,lns", "--budget", "300",
            "--quiet", "--store", str(store),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimize-portfolio" in out
        assert "persisted" in out
        capsys.readouterr()
        assert main(["report", str(store)]) == 0
        assert "optimize-portfolio" in capsys.readouterr().out

    def test_portfolio_verbose_progress(self, capsys):
        code = main([
            "optimize", "itc02-d695", "-w", "8", "--widths", "8",
            "--method", "portfolio", "--budget", "300", "--quiet",
            "--verbose",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "anneal[0]" in out and "round 0" in out


class TestSeededWorkloads:
    def test_seed_builds_reproducible_random_soc(self, capsys):
        payloads = []
        for _ in range(2):
            assert main([
                "run", "random-soc", "--seed", "5", "--model-only",
                "--json",
            ]) == 0
            payloads.append(json.loads(capsys.readouterr().out))
        assert payloads[0] == payloads[1]

    def test_seed_lands_in_the_config_hash(self, capsys):
        hashes = []
        for seed in ("5", "6"):
            assert main([
                "run", "random-soc", "--seed", seed, "--model-only",
                "--json",
            ]) == 0
            hashes.append(json.loads(capsys.readouterr().out)["hash"])
        assert hashes[0] != hashes[1]

    def test_random_cores_need_a_width(self, capsys):
        assert main([
            "run", "random-cores", "--seed", "3", "-w", "8",
            "--model-only", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bus_width"] == 8

    def test_seed_on_registered_workload_errors(self, capsys):
        code = main(["run", "itc02-d695", "--seed", "1"])
        assert code == 2
        assert "--seed" in capsys.readouterr().err

    def test_seeded_workload_without_seed_errors(self, capsys):
        code = main(["run", "random-soc"])
        assert code == 2
        assert "--seed" in capsys.readouterr().err

    def test_sweep_accepts_seeded_workloads(self, tmp_path, capsys):
        store = tmp_path / "seeded.jsonl"
        assert main([
            "sweep", "random-soc", "--seed", "4",
            "--campaign", "seeded", "--store", str(store),
            "--architectures", "mux-bus", "--bus-widths", "8",
            "--serial", "--quiet",
        ]) == 0
        assert "1 runs" in capsys.readouterr().out


class TestDiagnose:
    def test_diagnose_table_and_store_resume(self, tmp_path, capsys):
        store = tmp_path / "diag.jsonl"
        args = [
            "diagnose", "small", "--scenarios", "0,1",
            "--store", str(store),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "localisation accuracy 2/2" in first
        assert len(store.read_text().splitlines()) == 2
        # Second invocation resumes from the store: no new records.
        assert main(args) == 0
        assert capsys.readouterr().out == first
        assert len(store.read_text().splitlines()) == 2

    def test_diagnose_json(self, capsys):
        assert main([
            "diagnose", "small", "--scenarios", "3", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        record = payload[0]
        assert record["workload"] == "small"
        assert record["scenario"]["kind"] == "stuck-at"
        assert record["screen_passed"] is False
        assert len(record["hash"]) == 64

    def test_report_splits_runs_and_diagnoses(self, tmp_path, capsys):
        store = tmp_path / "mixed.jsonl"
        assert main([
            "run", "itc02-d695", "-a", "mux-bus", "-w", "8",
            "--store", str(store),
        ]) == 0
        assert main([
            "diagnose", "small", "--scenarios", "0",
            "--store", str(store),
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(store)]) == 0
        out = capsys.readouterr().out
        assert "mux-bus" in out
        assert "stuck-at" in out or "SA" in out
        assert "1 run(s), 1 diagnosis record(s)" in out

    def test_abstract_workload_errors(self, capsys):
        code = main(["diagnose", "itc02-d695"])
        assert code == 2
        assert "simulatable" in capsys.readouterr().err

    def test_bad_scenarios_error(self, capsys):
        code = main(["diagnose", "small", "--scenarios", "a,b"])
        assert code == 2
        assert "--scenarios" in capsys.readouterr().err


class TestStoreBackendsOnCli:
    def test_sweep_store_format_sqlite(self, tmp_path, capsys):
        assert main([
            "sweep", "itc02-d695", "--campaign", "sq",
            "--store-dir", str(tmp_path), "--store-format", "sqlite",
            *SWEEP_ARGS, "--quiet",
        ]) == 0
        assert "4 executed, 0 cached" in capsys.readouterr().out
        assert (tmp_path / "sq.sqlite").exists()
        # Resumes against the indexed store exactly like JSONL.
        assert main([
            "sweep", "itc02-d695", "--campaign", "sq",
            "--store-dir", str(tmp_path), "--store-format", "sqlite",
            *SWEEP_ARGS, "--quiet",
        ]) == 0
        assert "0 executed, 4 cached" in capsys.readouterr().out

    def test_report_identical_across_backends(self, tmp_path, capsys):
        jsonl = tmp_path / "s.jsonl"
        _sweep(jsonl)
        capsys.readouterr()
        assert main([
            "migrate", str(jsonl), "-o", str(tmp_path / "s.sqlite"),
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(jsonl)]) == 0
        expected = capsys.readouterr().out
        assert main(["report", str(tmp_path / "s.sqlite")]) == 0
        assert capsys.readouterr().out == expected

    def test_migrate_round_trip_verifies(self, tmp_path, capsys):
        jsonl = tmp_path / "s.jsonl"
        _sweep(jsonl)
        capsys.readouterr()
        sqlite_path = tmp_path / "m.sqlite"
        assert main(["migrate", str(jsonl), "-o", str(sqlite_path)]) == 0
        assert "8 runs" in capsys.readouterr().out
        assert main(["verify", "--strict", str(sqlite_path)]) == 0
        capsys.readouterr()
        back = tmp_path / "back.jsonl"
        assert main(["migrate", str(sqlite_path), "-o", str(back)]) == 0
        assert back.read_bytes() == jsonl.read_bytes()

    def test_migrate_onto_source_errors(self, tmp_path, capsys):
        store = tmp_path / "s.jsonl"
        _sweep(store)
        capsys.readouterr()
        assert main(["migrate", str(store), "-o", str(store)]) == 2
        assert "source" in capsys.readouterr().err

    def test_report_filters(self, tmp_path, capsys):
        for suffix in (".jsonl", ".sqlite"):
            store = tmp_path / f"f{suffix}"
            _sweep(store)
            capsys.readouterr()
            assert main([
                "report", str(store), "--architecture", "mux-bus",
            ]) == 0
            out = capsys.readouterr().out
            assert "mux-bus" in out and "4 run(s)" in out
            assert " casbus " not in out
            assert main([
                "report", str(store), "--workload", "no-such",
            ]) == 0
            assert "0 run(s)" in capsys.readouterr().out

    def test_report_summary(self, tmp_path, capsys):
        outputs = []
        for suffix in (".jsonl", ".sqlite"):
            store = tmp_path / f"sum{suffix}"
            _sweep(store)
            capsys.readouterr()
            assert main(["report", str(store), "--summary"]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        out = outputs[0]
        assert "runs" in out and "itc02-d695" in out
        assert "8 record(s) from 1 store(s)" in out

    def test_diagnose_resumes_on_sqlite(self, tmp_path, capsys):
        store = tmp_path / "diag.sqlite"
        args = [
            "diagnose", "small", "--scenarios", "0,1",
            "--store", str(store),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "localisation accuracy 2/2" in first
        assert main(args) == 0
        assert capsys.readouterr().out == first


class TestModuleEntrypoint:
    def test_python_dash_m_repro(self, tmp_path):
        """`python -m repro` resolves to the campaign CLI."""
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro",
                "run", "itc02-d695", "-a", "mux-bus", "-w", "8",
                "--store", str(tmp_path / "m.jsonl"),
            ],
            capture_output=True, text=True, env=env, cwd=str(tmp_path),
        )
        assert proc.returncode == 0, proc.stderr
        assert "mux-bus" in proc.stdout
        assert (tmp_path / "m.jsonl").exists()
