"""The StoreBackend contract, proven on both backends at once.

Every test in :class:`TestContract` runs against the JSONL and the
SQLite backend through one parameterized fixture: the contract *is*
the test, the backend is a detail.  The SQLite-only classes cover what
JSONL tests already cover for their format -- crash tolerance, healing
appends, concurrent writers -- plus the property JSONL cannot have:
incremental aggregates that must never drift from the records
(``repro verify`` rule REC009).
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreError
from repro.api.results import SCHEMA_VERSION
from repro.campaign import (
    CampaignStore,
    SqliteStore,
    merge_stores,
    migrate_store,
    open_store,
    store_for_campaign,
)
from repro.campaign.sqlite import SQLITE_MAGIC

BACKENDS = {
    "jsonl": (CampaignStore, ".jsonl"),
    "sqlite": (SqliteStore, ".sqlite"),
}

WORKLOADS = ("wl-a", "wl-b")
ARCHITECTURES = ("casbus", "mux-bus")
SCHEDULERS = ("greedy", "balanced-lpt")


def _record(tag, *, workload="wl-a", architecture="casbus",
            scheduler="greedy", elapsed=0.1, kind=None):
    """A slim, fully valid store record with a deterministic hash."""
    digest = hashlib.sha256(f"backend-test-{tag}".encode()).hexdigest()
    record = {
        "schema": SCHEMA_VERSION,
        "hash": digest,
        "workload": {"kind": "cores", "name": workload},
        "config": {"architecture": architecture, "scheduler": scheduler},
        "result": {
            "architecture": architecture,
            "area_ge": 1.0,
            "bus_width": 8,
            "config_cycles": 4,
            "extra_pins": 8,
            "label": "",
            "passed": None,
            "scheduler": scheduler,
            "sessions": [],
            "source": "model",
            "test_cycles": 100 + len(tag),
            "workload": workload,
        },
        "elapsed_s": elapsed,
    }
    if kind is not None:
        record["kind"] = kind
    return record


@pytest.fixture(params=sorted(BACKENDS))
def backend(request):
    return request.param


@pytest.fixture
def store(backend, tmp_path):
    cls, suffix = BACKENDS[backend]
    return cls(tmp_path / f"s{suffix}")


def _reopen(store):
    """A fresh handle on the same path (no shared in-memory state)."""
    return type(store)(store.path)


class TestContract:
    def test_roundtrip(self, store):
        record = _record("one")
        assert store.append(record)
        assert record["hash"] in store
        assert store.records() == [record]
        assert store.latest() == {record["hash"]: record}
        assert len(store) == 1

    def test_missing_file_is_empty(self, backend, tmp_path):
        cls, suffix = BACKENDS[backend]
        absent = cls(tmp_path / f"absent{suffix}")
        assert absent.records() == []
        assert absent.latest() == {}
        assert len(absent) == 0
        assert "0" * 64 not in absent

    def test_duplicate_hash_not_appended(self, store):
        record = _record("dup")
        assert store.append(record)
        assert not store.append(record)
        assert len(store.records()) == 1

    def test_replace_appends_and_last_wins(self, store):
        first = _record("re", elapsed=1.0)
        second = dict(first, elapsed_s=2.0)
        store.append(first)
        assert store.append(second, replace=True)
        assert len(store.records()) == 2  # history preserved
        assert len(store) == 1
        assert store.latest()[first["hash"]]["elapsed_s"] == 2.0

    def test_fresh_handle_sees_disk_state(self, store):
        store.append(_record("disk"))
        reopened = _reopen(store)
        assert len(reopened) == 1
        assert not reopened.append(_record("disk"))

    def test_append_many_dedupes_and_counts(self, store):
        store.append(_record("a"))
        batch = [_record("a"), _record("b"), _record("c"), _record("b")]
        assert store.append_many(batch) == 2
        assert len(store) == 3

    def test_lookup_returns_only_asked_hashes(self, store):
        kept = _record("kept")
        store.append_many([kept, _record("other")])
        absent = "f" * 64
        found = store.lookup([kept["hash"], absent])
        assert found == {kept["hash"]: kept}

    def test_lookup_sees_replacement(self, store):
        first = _record("latest", elapsed=1.0)
        store.append(first)
        store.append(dict(first, elapsed_s=2.0), replace=True)
        assert store.lookup([first["hash"]])[first["hash"]]["elapsed_s"] == 2.0

    def test_iter_latest_filters(self, store):
        store.append_many([
            _record("m1", workload="wl-a", architecture="casbus"),
            _record("m2", workload="wl-a", architecture="mux-bus"),
            _record("m3", workload="wl-b", architecture="casbus"),
        ])
        hits = list(store.iter_latest(workload="wl-a",
                                      architecture="casbus"))
        assert [r["hash"] for r in hits] == [_record("m1")["hash"]]
        assert len(list(store.iter_latest(workload="wl-a"))) == 2
        assert len(list(store.iter_latest())) == 3
        assert list(store.iter_latest(workload="nope")) == []

    def test_iter_latest_kind_filter(self, store):
        store.append_many([
            _record("k1"),
            _record("k2", kind="diagnosis"),
        ])
        [diagnosis] = store.iter_latest(kind="diagnosis")
        assert diagnosis["kind"] == "diagnosis"
        [run] = store.iter_latest(kind="run")
        assert "kind" not in run

    def test_aggregates_match_scan(self, store):
        store.append_many([
            _record("g1", workload="wl-a"),
            _record("g2", workload="wl-a", scheduler="balanced-lpt"),
            _record("g3", workload="wl-b", kind="diagnosis"),
        ])
        counts = store.aggregate_counts()
        assert counts == store.scan_aggregate_counts()
        assert counts[("run", "wl-a", "casbus", "greedy")] == 1
        assert counts[("diagnosis", "wl-b", "casbus", "greedy")] == 1
        assert sum(counts.values()) == 3

    def test_aggregates_follow_replacement(self, store):
        record = _record("agg")
        store.append(record)
        store.append(dict(record, elapsed_s=9.9), replace=True)
        counts = store.aggregate_counts()
        assert counts == store.scan_aggregate_counts()
        assert sum(counts.values()) == 1

    def test_compact_keeps_latest_sorted(self, store):
        first = _record("c1", elapsed=1.0)
        store.append_many([first, _record("c2")])
        store.append(dict(first, elapsed_s=2.0), replace=True)
        store.compact()
        records = store.records()
        assert [r["hash"] for r in records] == sorted(r["hash"]
                                                      for r in records)
        assert len(records) == 2  # superseded duplicate dropped
        assert store.latest()[first["hash"]]["elapsed_s"] == 2.0
        assert store.aggregate_counts() == store.scan_aggregate_counts()

    def test_newer_record_schema_refused(self, store):
        store.append(dict(_record("new"), schema=SCHEMA_VERSION + 1))
        with pytest.raises(StoreError, match="newer"):
            _reopen(store).records()

    def test_store_for_campaign(self, backend, tmp_path):
        cls, suffix = BACKENDS[backend]
        named = store_for_campaign("nightly", tmp_path, backend=backend)
        assert isinstance(named, cls)
        assert named.path == tmp_path / f"nightly{suffix}"
        assert named.name == "nightly"


class TestOpenStore:
    def test_suffixes_decide(self, tmp_path):
        assert isinstance(open_store(tmp_path / "a.jsonl"), CampaignStore)
        for suffix in (".sqlite", ".sqlite3", ".db"):
            assert isinstance(open_store(tmp_path / f"a{suffix}"),
                              SqliteStore)

    def test_unknown_suffix_sniffs_content(self, tmp_path):
        path = tmp_path / "store.bin"
        SqliteStore(path).append(_record("sniff"))
        assert path.read_bytes()[:16] == SQLITE_MAGIC
        assert isinstance(open_store(path), SqliteStore)

    def test_unknown_suffix_defaults_to_jsonl(self, tmp_path):
        assert isinstance(open_store(tmp_path / "brand.new"), CampaignStore)
        text = tmp_path / "existing.log"
        text.write_text("not sqlite\n")
        assert isinstance(open_store(text), CampaignStore)


class TestMigrate:
    def _seed(self, store):
        first = _record("mig1", elapsed=1.0)
        store.append_many([first, _record("mig2", workload="wl-b")])
        store.append(dict(first, elapsed_s=2.0), replace=True)
        return store

    def test_round_trip_is_byte_identical(self, tmp_path):
        source = self._seed(CampaignStore(tmp_path / "src.jsonl"))
        source.compact()  # canonical layout, as merge_stores writes it
        migrate_store(source, tmp_path / "mid.sqlite")
        migrate_store(tmp_path / "mid.sqlite", tmp_path / "back.jsonl")
        assert ((tmp_path / "back.jsonl").read_bytes()
                == source.path.read_bytes())

    def test_history_and_reports_survive(self, tmp_path):
        source = self._seed(CampaignStore(tmp_path / "src.jsonl"))
        target = migrate_store(source, tmp_path / "dst.sqlite")
        assert isinstance(target, SqliteStore)
        assert target.records() == source.records()  # full history
        assert target.latest() == source.latest()
        assert target.aggregate_counts() == source.aggregate_counts()

    def test_migrate_onto_source_refused(self, tmp_path):
        source = self._seed(SqliteStore(tmp_path / "s.sqlite"))
        with pytest.raises(StoreError, match="source"):
            migrate_store(source, source.path)
        assert len(source) == 2  # untouched


class TestMergeCrossBackend:
    def test_mixed_sources_merge(self, tmp_path):
        a = CampaignStore(tmp_path / "a.jsonl")
        b = SqliteStore(tmp_path / "b.sqlite")
        a.append(_record("x", elapsed=1.0))
        b.append_many([_record("x", elapsed=2.0), _record("y")])
        merged = merge_stores([a, b], tmp_path / "m.sqlite")
        assert isinstance(merged, SqliteStore)
        assert len(merged) == 2
        latest = merged.latest()
        assert latest[_record("x")["hash"]]["elapsed_s"] == 2.0

    def test_sqlite_merge_order_independent_bytes(self, tmp_path):
        a = SqliteStore(tmp_path / "a.sqlite")
        b = SqliteStore(tmp_path / "b.sqlite")
        a.append(_record("oa"))
        b.append(_record("ob"))
        merge_stores([a, b], tmp_path / "ab.sqlite")
        merge_stores([b, a], tmp_path / "ba.sqlite")
        assert ((tmp_path / "ab.sqlite").read_bytes()
                == (tmp_path / "ba.sqlite").read_bytes())

    def test_cross_backend_merges_agree(self, tmp_path):
        a = CampaignStore(tmp_path / "a.jsonl")
        b = SqliteStore(tmp_path / "b.sqlite")
        a.append_many([_record("p"), _record("q", elapsed=1.0)])
        b.append(_record("q", elapsed=2.0))
        as_jsonl = merge_stores([a, b], tmp_path / "m.jsonl")
        as_sqlite = merge_stores([a, b], tmp_path / "m.sqlite")
        assert as_jsonl.latest() == as_sqlite.latest()
        assert as_jsonl.records() == as_sqlite.records()


class TestSqliteTolerance:
    def test_truncated_file_reads_and_heals(self, tmp_path):
        store = SqliteStore(tmp_path / "t.sqlite")
        store.append_many(_record(f"t{i}") for i in range(20))
        data = store.path.read_bytes()
        store.path.write_bytes(data[: int(len(data) * 0.6)])
        survivor = SqliteStore(store.path)
        salvaged = survivor.records()  # must not raise
        assert survivor.skipped_lines >= 1
        assert survivor.append(_record("fresh"))  # heal-on-append
        healed = SqliteStore(store.path)
        assert healed.records()[len(salvaged):] == [_record("fresh")]
        assert healed.skipped_lines == 0
        assert (healed.stored_aggregate_counts()
                == healed.scan_aggregate_counts())

    def test_non_database_file_reads_empty_and_heals(self, tmp_path):
        path = tmp_path / "garbage.sqlite"
        path.write_bytes(b"this is not a database at all\n" * 10)
        store = SqliteStore(path)
        assert store.records() == []
        assert store.skipped_lines == 1
        assert store.append(_record("after"))
        assert SqliteStore(path).records() == [_record("after")]

    def test_garbage_row_skipped(self, tmp_path):
        store = SqliteStore(tmp_path / "g.sqlite")
        store.append(_record("good"))
        with sqlite3.connect(store.path) as connection:
            connection.execute(
                "INSERT INTO records (hash, kind, record) "
                "VALUES ('nothex', 'run', 'not json {')"
            )
        survivor = SqliteStore(store.path)
        assert survivor.records() == [_record("good")]
        assert survivor.skipped_lines == 1

    def test_newer_store_layout_refused(self, tmp_path):
        store = SqliteStore(tmp_path / "n.sqlite")
        store.append(_record("old"))
        with sqlite3.connect(store.path) as connection:
            connection.execute(
                "UPDATE store_meta SET value='99' "
                "WHERE key='store_schema'"
            )
        with pytest.raises(StoreError, match="newer"):
            SqliteStore(store.path).append(_record("refused"))

    def test_concurrent_appends_serialize(self, tmp_path):
        path = tmp_path / "c.sqlite"
        records = [
            _record(f"c{i % 50}", workload=WORKLOADS[i % 2])
            for i in range(200)
        ]
        failures = []

        def worker(slice_):
            try:
                store = SqliteStore(path)
                for record in slice_:
                    store.append(record, replace=True)
            except Exception as exc:  # pragma: no cover - fail loudly
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(records[k::4],))
            for k in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        store = SqliteStore(path)
        assert len(store) == 50
        assert len(store.records()) == 200
        assert (store.stored_aggregate_counts()
                == store.scan_aggregate_counts())


# -- property: the backends are observationally identical ------------------

_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),          # record tag
        st.sampled_from(WORKLOADS),
        st.sampled_from(ARCHITECTURES),
        st.sampled_from(SCHEDULERS),
        st.booleans(),                                   # replace
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=30, deadline=None)
@given(ops=_ops, split=st.integers(min_value=0, max_value=12))
def test_interleaved_appends_and_merge_agree(tmp_path_factory, ops, split):
    """Random append/replace interleavings (split across two shard
    stores, merged back) are observationally identical on both
    backends: same latest set, same aggregates, same merged report."""
    root = tmp_path_factory.mktemp("prop")
    stores = {
        "jsonl": (CampaignStore(root / "a.jsonl"),
                  CampaignStore(root / "b.jsonl")),
        "sqlite": (SqliteStore(root / "a.sqlite"),
                   SqliteStore(root / "b.sqlite")),
    }
    for index, (tag, workload, architecture, scheduler, replace) in (
            enumerate(ops)):
        record = _record(
            f"prop{tag}",
            workload=workload,
            architecture=architecture,
            scheduler=scheduler,
            elapsed=float(index),
        )
        shard = 0 if index < split else 1
        outcomes = {
            name: pair[shard].append(record, replace=replace)
            for name, pair in stores.items()
        }
        assert outcomes["jsonl"] == outcomes["sqlite"]
    merged = {
        name: merge_stores(
            stores[name],
            root / f"m-{name}{'.jsonl' if name == 'jsonl' else '.sqlite'}",
        )
        for name in stores
    }
    assert merged["jsonl"].latest() == merged["sqlite"].latest()
    assert merged["jsonl"].records() == merged["sqlite"].records()
    assert (merged["jsonl"].aggregate_counts()
            == merged["sqlite"].aggregate_counts())
    for name, pair in stores.items():
        for shard_store in pair:
            assert (shard_store.aggregate_counts()
                    == shard_store.scan_aggregate_counts())
