"""Property tests: every registered scheduler verifies clean.

The static verifier encodes the cost-model contract every scheduler
must satisfy; hypothesis hammers that contract with random workloads so
a scheduler bug (or an over-strict rule) surfaces as a concrete
counterexample instead of a lucky pass on the fixture SoCs.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.registry import get_scheduler, list_schedulers
from repro.schedule.model import TamProblem
from repro.soc.core import CoreTestParams, TestMethod
from repro.verify import verify_outcome

# optimize-anneal needs a pinned seed to stay deterministic; keep its
# iteration count low so the property suite stays fast.
_ANNEAL_OPTIONS = {"seed": 0, "iterations": 30}


@st.composite
def cores(draw):
    index = draw(st.integers(min_value=0, max_value=10 ** 6))
    method = draw(st.sampled_from(
        [TestMethod.SCAN, TestMethod.BIST, TestMethod.EXTERNAL]
    ))
    name = f"core{index}"
    if method is TestMethod.BIST:
        return CoreTestParams(
            name=name, method=method, flops=0, patterns=0, max_wires=1,
            fixed_cycles=draw(st.integers(min_value=1, max_value=500)),
        )
    return CoreTestParams(
        name=name,
        method=method,
        flops=draw(st.integers(min_value=1, max_value=120)),
        patterns=draw(st.integers(min_value=1, max_value=40)),
        max_wires=draw(st.integers(min_value=1, max_value=4)),
    )


@st.composite
def problems(draw):
    workload = draw(st.lists(
        cores(), min_size=1, max_size=5,
        unique_by=lambda core: core.name,
    ))
    bus_width = draw(st.integers(min_value=1, max_value=6))
    return TamProblem.of(tuple(workload), bus_width)


@settings(max_examples=25, deadline=None)
@given(problem=problems(), strategy=st.sampled_from(list_schedulers()))
def test_scheduler_outcomes_verify_clean(problem, strategy):
    options = _ANNEAL_OPTIONS if strategy == "optimize-anneal" else {}
    outcome = get_scheduler(strategy).schedule(
        problem.cores, problem.bus_width, **options
    )
    report = verify_outcome(outcome, problem)
    assert report.diagnostics == [], report.table()


@settings(max_examples=15, deadline=None)
@given(problem=problems())
def test_uncharged_outcomes_verify_clean(problem):
    # charge_config=False flows through to SCH007/PRE003's valid set.
    for strategy in ("greedy", "preemptive"):
        outcome = get_scheduler(strategy).schedule(
            problem.cores, problem.bus_width, charge_config=False
        )
        report = verify_outcome(outcome, problem)
        assert report.diagnostics == [], report.table()


@settings(max_examples=15, deadline=None)
@given(problem=problems())
def test_practical_policy_outcomes_verify_clean(problem):
    # cas_policy=None (practical sizing) must verify against the same
    # policy, not silently against "all" (regression: the model-path
    # boundary once rebuilt the problem with the wrong policy).
    practical = TamProblem.of(
        problem.cores, problem.bus_width, cas_policy=None
    )
    outcome = get_scheduler("greedy").schedule(
        problem.cores, problem.bus_width, cas_policy=None
    )
    report = verify_outcome(outcome, practical)
    assert report.diagnostics == [], report.table()
