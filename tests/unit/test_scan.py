"""Unit and property tests for the scan substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.scan.atpg import (
    generate_test_set,
    random_pattern,
)
from repro.scan.chain import ScanChain
from repro.scan.core_model import CombCloud, CombOp, ScannableCore
from repro.scan.fault_sim import pack_patterns, run_fault_simulation
from repro.scan.faults import core_fault_list


def _core(**kwargs) -> ScannableCore:
    defaults = dict(seed=3, num_pis=3, num_pos=2, num_ffs=12, num_chains=3)
    defaults.update(kwargs)
    return ScannableCore.generate("dut", **defaults)


class TestCombCloud:
    def test_known_network(self):
        # f0 = a AND b; f1 = NOT a.
        cloud = CombCloud(
            num_inputs=2,
            ops=[CombOp("AND", 0, 1), CombOp("NOT", 0)],
            outputs=[2, 3],
        )
        for a in (0, 1):
            for b in (0, 1):
                out = cloud.evaluate_words([a, b], mask=1)
                assert out[0] == (a & b)
                assert out[1] == (1 - a)

    def test_word_parallel_matches_serial(self):
        cloud = CombCloud.random(num_inputs=6, num_ops=30,
                                 num_outputs=5, seed=9)
        patterns = [(i * 37) % 64 for i in range(8)]
        words = [0] * 6
        for bit_index, pattern in enumerate(patterns):
            for input_index in range(6):
                if pattern >> input_index & 1:
                    words[input_index] |= 1 << bit_index
        parallel = cloud.evaluate_words(words, mask=(1 << 8) - 1)
        for bit_index, pattern in enumerate(patterns):
            serial = cloud.evaluate_words(
                [(pattern >> i) & 1 for i in range(6)], mask=1
            )
            for out_index in range(5):
                expected = (parallel[out_index] >> bit_index) & 1
                assert serial[out_index] & 1 == expected

    def test_fault_injection_changes_output(self):
        cloud = CombCloud(
            num_inputs=2,
            ops=[CombOp("AND", 0, 1)],
            outputs=[2],
        )
        healthy = cloud.evaluate_words([1, 1], mask=1)
        faulty = cloud.evaluate_words([1, 1], mask=1, fault=(2, 0))
        assert healthy == [1] and faulty == [0]

    def test_fault_on_input_node(self):
        cloud = CombCloud(num_inputs=2, ops=[CombOp("OR", 0, 1)], outputs=[2])
        assert cloud.evaluate_words([0, 0], mask=1, fault=(0, 1)) == [1]

    def test_out_of_order_op_rejected(self):
        with pytest.raises(ConfigurationError):
            CombCloud(num_inputs=1, ops=[CombOp("AND", 0, 5)], outputs=[1])

    def test_random_is_deterministic(self):
        a = CombCloud.random(4, 10, 3, seed=5)
        b = CombCloud.random(4, 10, 3, seed=5)
        assert a.ops == b.ops and a.outputs == b.outputs


class TestScannableCore:
    def test_balanced_partition(self):
        core = _core(num_ffs=10, num_chains=3)
        assert core.chain_lengths == (4, 3, 3)

    def test_explicit_chain_lengths(self):
        core = _core(num_ffs=10, num_chains=2, chain_lengths=(8, 2))
        assert core.chain_lengths == (8, 2)
        assert core.max_chain_length == 8

    def test_bad_chain_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            _core(num_ffs=10, num_chains=2, chain_lengths=(5, 4))

    def test_scan_shift_round_trip(self):
        core = _core()
        bits = [1, 0, 1, 1]
        length = core.chain_lengths[0]
        loaded = bits + [0] * (length - len(bits))
        for bit in reversed(loaded):
            core.scan_shift(0, bit)
        assert core.read_chain(0) == loaded

    def test_load_and_read_chain(self):
        core = _core()
        values = [1] * core.chain_lengths[1]
        core.load_chain(1, values)
        assert core.read_chain(1) == values

    def test_capture_changes_state_deterministically(self):
        core_a = _core()
        core_b = _core()
        core_a.load_chain(0, [1] * core_a.chain_lengths[0])
        core_b.load_chain(0, [1] * core_b.chain_lengths[0])
        pos_a = core_a.capture([1, 0, 1])
        pos_b = core_b.capture([1, 0, 1])
        assert core_a.ff_values == core_b.ff_values
        assert pos_a == pos_b

    def test_capture_wrong_pi_count(self):
        with pytest.raises(SimulationError):
            _core().capture([0])

    def test_scan_shift_validates_bit(self):
        with pytest.raises(SimulationError):
            _core().scan_shift(0, 9)

    def test_chains_must_partition(self):
        cloud = CombCloud.random(num_inputs=4, num_ops=8,
                                 num_outputs=3, seed=1)
        with pytest.raises(ConfigurationError, match="partition"):
            ScannableCore("bad", cloud, num_pis=2, num_pos=1,
                          chains=[[0, 1], [1]])


class TestScanChain:
    def test_fifo_behaviour(self):
        chain = ScanChain(3)
        sent = [1, 0, 1, 1, 0, 1]
        outs = [chain.shift(bit) for bit in sent]
        assert outs[3:] == sent[:3]

    def test_zero_length_passthrough(self):
        chain = ScanChain(0)
        assert chain.shift(1) == 1

    def test_load_read(self):
        chain = ScanChain(4)
        chain.load([1, 0, 0, 1])
        assert chain.read() == [1, 0, 0, 1]
        assert chain.scan_out_bit() == 1


class TestFaultSim:
    def test_fault_list_size(self):
        core = _core()
        faults = core_fault_list(core)
        assert len(faults) == 2 * core.cloud.num_nodes

    def test_pack_unpack_consistency(self):
        core = _core()
        import random as _random

        rng = _random.Random(0)
        patterns = [random_pattern(core, rng) for _ in range(5)]
        batch = pack_patterns(core, patterns)[0]
        assert batch.count == 5
        # PI words reproduce the pattern bits.
        for bit_index, pattern in enumerate(patterns):
            for pi_index, value in enumerate(pattern.pi):
                got = (batch.input_words[pi_index] >> bit_index) & 1
                assert got == value

    def test_detected_faults_are_real(self):
        """Cross-check the parallel fault simulator against a serial
        single-pattern evaluation for a handful of faults."""
        core = _core(num_ffs=8, num_chains=2)
        import random as _random

        rng = _random.Random(1)
        patterns = [random_pattern(core, rng) for _ in range(16)]
        result = run_fault_simulation(core, patterns)
        checked = 0
        for fault in sorted(result.detected)[:10]:
            index = result.detecting_pattern[fault]
            pattern = patterns[index]
            inputs = list(pattern.pi)
            for chain_index, chain_bits in enumerate(pattern.chains):
                chain = core.chains[chain_index]
                ff_vals = dict(zip(chain, chain_bits))
                for ff in chain:
                    pass
            # Rebuild full FF vector.
            ff_vector = [0] * core.num_ffs
            for chain_index, chain_bits in enumerate(pattern.chains):
                for position, value in enumerate(chain_bits):
                    ff_vector[core.chains[chain_index][position]] = value
            full_inputs = list(pattern.pi) + ff_vector
            good = core.cloud.evaluate_words(full_inputs, mask=1)
            bad = core.cloud.evaluate_words(
                full_inputs, mask=1, fault=(fault.node, fault.stuck_value)
            )
            assert good != bad
            checked += 1
        assert checked > 0

    def test_no_patterns_no_detection(self):
        core = _core()
        result = run_fault_simulation(core, [])
        assert result.coverage == 0.0
        assert not result.detected

    def test_coverage_monotone_in_patterns(self):
        core = _core()
        import random as _random

        rng = _random.Random(2)
        patterns = [random_pattern(core, rng) for _ in range(32)]
        few = run_fault_simulation(core, patterns[:8])
        many = run_fault_simulation(core, patterns)
        assert many.coverage >= few.coverage
        assert few.detected <= many.detected


class TestAtpg:
    def test_test_set_has_responses(self):
        core = _core()
        test_set = generate_test_set(core, seed=5, max_patterns=64)
        assert len(test_set.patterns) == len(test_set.responses)
        assert len(test_set) > 0
        assert 0.0 < test_set.fault_coverage <= 1.0

    def test_responses_match_direct_capture(self):
        core = _core()
        test_set = generate_test_set(core, seed=5, max_patterns=16)
        for pattern, response in zip(test_set.patterns, test_set.responses):
            probe = _core()  # fresh identical core
            for chain_index, bits in enumerate(pattern.chains):
                probe.load_chain(chain_index, list(bits))
            pos = probe.capture(list(pattern.pi))
            assert tuple(probe.ff_values) == response.ff_values
            assert tuple(pos) == response.po_values

    def test_deterministic(self):
        a = generate_test_set(_core(), seed=9, max_patterns=32)
        b = generate_test_set(_core(), seed=9, max_patterns=32)
        assert a.patterns == b.patterns
        assert a.fault_coverage == b.fault_coverage

    def test_target_coverage_validation(self):
        with pytest.raises(ConfigurationError):
            generate_test_set(_core(), target_coverage=0.0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 500))
    def test_coverage_reported_matches_fault_sim(self, seed):
        core = ScannableCore.generate(
            "prop", seed=seed, num_pis=2, num_pos=2,
            num_ffs=6, num_chains=2,
        )
        test_set = generate_test_set(core, seed=seed, max_patterns=32)
        replay = run_fault_simulation(core, test_set.patterns)
        assert replay.coverage == pytest.approx(test_set.fault_coverage)
