"""The keyed-and-bounded LRU cache behind the process-wide caches.

The cap must *hold* -- the whole point of replacing the unbounded
dicts was that thousand-scenario sweeps over generated workloads
cannot grow memory monotonically -- and recency must be LRU, so the
hot spec of a batch sweep survives eviction pressure.
"""

from __future__ import annotations

import pytest

from repro.sim.cache import BoundedCache


class TestBoundedCache:
    def test_cap_holds_under_pressure(self):
        cache: BoundedCache[int, int] = BoundedCache(8)
        for key in range(100):
            cache.put(key, key * key)
            assert len(cache) <= 8
        assert len(cache) == 8
        # The survivors are exactly the most recent inserts.
        assert sorted(cache) == list(range(92, 100))
        assert cache.get(0) is None
        assert cache.get(99) == 99 * 99

    def test_hit_refreshes_recency(self):
        cache: BoundedCache[str, int] = BoundedCache(2)
        cache.put("old", 1)
        cache.put("new", 2)
        assert cache.get("old") == 1  # refresh: "new" is now LRU
        cache.put("newest", 3)
        assert "old" in cache
        assert "new" not in cache

    def test_overwrite_refreshes_without_growth(self):
        cache: BoundedCache[str, int] = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache
        assert cache.get("a") == 10

    def test_clear_and_default(self):
        cache: BoundedCache[str, int] = BoundedCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a", default=-1) == -1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            BoundedCache(0)


class TestWiredCaches:
    """Every process-wide simulation cache sits on the bounded LRU."""

    def test_testset_cache_is_bounded(self):
        from repro.sim import testsets

        assert isinstance(testsets._CACHE, BoundedCache)
        assert testsets._CACHE.capacity == testsets.MAX_CACHED

    def test_kernel_program_cache_is_bounded(self):
        from repro.sim import kernel

        assert isinstance(kernel._SCAN_PROGRAMS, BoundedCache)

    def test_dictionary_cache_is_bounded(self):
        from repro.diagnose import engine

        assert isinstance(engine._DICTIONARIES, BoundedCache)

    def test_batch_program_cache_is_bounded(self):
        pytest.importorskip("numpy")
        from repro.sim import batch

        assert isinstance(batch._BATCH_PROGRAMS, BoundedCache)
        assert (batch._BATCH_PROGRAMS.capacity
                == batch.MAX_CACHED_BATCH_PROGRAMS)
