"""Config-hash stability: the contract resumable campaigns stand on.

Same config => same hash, across object rebuilds, alias spellings,
mapping insertion orders and processes (``PYTHONHASHSEED`` must not
leak in).  Any semantically meaningful field change => a new hash.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.errors import ConfigurationError
from repro.api import Experiment, workload_identity
from repro.api.workloads import get_workload
from repro.campaign import (
    canonical_json,
    config_hash,
    experiment_identity,
    in_shard,
    parse_shard,
    shard_index,
)
from repro.soc.library import small_soc


def _base() -> Experiment:
    return (Experiment("itc02-d695")
            .with_architecture("casbus")
            .with_scheduler("greedy")
            .with_bus_width(8))


class TestStability:
    def test_rebuilt_experiment_same_hash(self):
        assert config_hash(_base()) == config_hash(_base())

    def test_architecture_alias_same_hash(self):
        aliased = _base().with_architecture("cas-bus")
        assert config_hash(aliased) == config_hash(_base())

    def test_scheduler_alias_is_canonical(self):
        identity = experiment_identity(_base())
        assert identity["config"]["architecture"] == "casbus"
        assert identity["config"]["scheduler"] == "greedy"

    def test_workload_name_and_object_same_hash(self):
        by_name = Experiment("itc02-d695").with_bus_width(8)
        by_object = Experiment(
            get_workload("itc02-d695")
        ).with_bus_width(8)
        assert config_hash(by_name) == config_hash(by_object)

    def test_workload_alias_same_hash(self):
        # "d695" is a registered alias of "itc02-d695".
        assert (config_hash(Experiment("d695").with_bus_width(8))
                == config_hash(Experiment("itc02-d695").with_bus_width(8)))

    def test_explicit_native_width_same_hash(self):
        soc = small_soc()
        native = Experiment(soc)
        explicit = Experiment(soc).with_bus_width(soc.bus_width)
        assert config_hash(native) == config_hash(explicit)

    def test_label_excluded(self):
        assert (config_hash(_base().with_label("tagged"))
                == config_hash(_base()))

    def test_fault_mapping_order_irrelevant(self):
        forward = _base().with_faults({"a": (3, 1), "b": (5, 0)})
        backward = _base().with_faults({"b": (5, 0), "a": (3, 1)})
        assert config_hash(forward) == config_hash(backward)

    def test_hash_is_hex_sha256(self):
        digest = config_hash(_base())
        assert len(digest) == 64
        int(digest, 16)  # must parse as hex

    def test_cross_process_stability(self):
        """PYTHONHASHSEED (per-process dict/str randomisation) must
        not influence the hash -- shards on different machines rely
        on it."""
        script = (
            "from repro.api import Experiment\n"
            "e = (Experiment('itc02-d695').with_architecture('casbus')"
            ".with_scheduler('greedy').with_bus_width(8))\n"
            "print(e.config_hash())\n"
        )
        digests = set()
        for seed in ("0", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
            env["PYTHONPATH"] = os.path.abspath(src)
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            digests.add(proc.stdout.strip())
        assert digests == {config_hash(_base())}


class TestSensitivity:
    @pytest.mark.parametrize("change", [
        lambda e: e.with_architecture("mux-bus"),
        lambda e: e.with_scheduler("balanced-lpt"),
        lambda e: e.with_bus_width(16),
        lambda e: e.with_policy("contiguous"),
        lambda e: e.with_backend("legacy"),
        lambda e: e.with_faults({"c1": (2, 0)}),
        lambda e: e.simulated(False),
    ])
    def test_changed_field_new_hash(self, change):
        assert config_hash(change(_base())) != config_hash(_base())

    def test_different_workload_new_hash(self):
        other = Experiment("itc02-g1023").with_bus_width(8)
        assert config_hash(other) != config_hash(_base())

    def test_identity_document_is_json_canonical(self):
        text = canonical_json(experiment_identity(_base()))
        assert text == canonical_json(experiment_identity(_base()))
        assert "\n" not in text and " " not in text  # compact form
        assert '"label"' not in text  # labels never enter the identity


class TestWorkloadIdentity:
    def test_name_and_object_agree(self):
        assert (workload_identity("itc02-d695")
                == workload_identity(get_workload("itc02-d695")))

    def test_soc_identity_is_structural(self):
        identity = workload_identity(small_soc())
        assert identity["kind"] == "soc"
        assert identity["spec"]["bus_width"] == small_soc().bus_width
        canonical_json(identity)  # must be pure JSON data

    def test_abstract_identity_keeps_name(self):
        identity = workload_identity("itc02-d695")
        assert identity["kind"] == "cores"
        assert identity["name"] == "itc02-d695"


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("1/2") == (1, 2)
        assert parse_shard("3/8") == (3, 8)

    @pytest.mark.parametrize("bad", ["0/2", "3/2", "1-2", "x/y", "2", ""])
    def test_parse_shard_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            parse_shard(bad)

    def test_partition_exact_cover(self):
        """Every hash lands in exactly one shard, for several n."""
        digests = [
            config_hash(_base().with_bus_width(width))
            for width in range(4, 20)
        ]
        for total in (1, 2, 3, 5):
            for digest in digests:
                owners = [
                    index for index in range(1, total + 1)
                    if in_shard(digest, index, total)
                ]
                assert owners == [shard_index(digest, total)]

    def test_shard_index_deterministic(self):
        digest = config_hash(_base())
        assert shard_index(digest, 4) == shard_index(digest, 4)
