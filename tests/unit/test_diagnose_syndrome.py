"""The packed failure-syndrome type and its capture plumbing."""

from __future__ import annotations

from repro.diagnose.syndrome import (
    KIND_BIST,
    KIND_SCAN,
    Syndrome,
    merge_masks,
)
from repro.sim.session import CoreResult


class TestSyndrome:
    def test_canonical_form_drops_zero_masks_and_sorts(self):
        syndrome = Syndrome.from_masks(KIND_SCAN, {
            (2, 1): 0b1010,
            (0, 0): 0b1,
            (1, 0): 0,
        })
        assert syndrome.entries == ((0, 0, 0b1), (2, 1, 0b1010))
        assert not syndrome.is_clean
        assert syndrome.failing_bits == 3
        assert syndrome.failing_windows() == (0, 2)
        assert syndrome.failing_chains() == (0, 1)

    def test_accumulation_order_is_irrelevant(self):
        masks_a = {(1, 0): 0b11, (0, 2): 0b100}
        masks_b = {(0, 2): 0b100, (1, 0): 0b11}
        assert (Syndrome.from_masks(KIND_SCAN, masks_a)
                == Syndrome.from_masks(KIND_SCAN, masks_b))

    def test_signature_xor(self):
        assert Syndrome.signature_xor(KIND_BIST, 0xA5, 0xA5).is_clean
        syndrome = Syndrome.signature_xor(KIND_BIST, 0xA5, 0x25)
        assert syndrome.entries == ((0, 0, 0x80),)

    def test_round_trip(self):
        syndrome = Syndrome.from_masks(KIND_SCAN, {
            (0, 0): (1 << 200) | 0b101,  # beyond machine-word width
            (7, 2): 0b110,
        })
        rebuilt = Syndrome.from_dict(syndrome.to_dict())
        assert rebuilt == syndrome

    def test_describe(self):
        clean = Syndrome(kind=KIND_SCAN)
        assert "clean" in clean.describe()
        dirty = Syndrome.from_masks(KIND_SCAN, {(0, 0): 0b11})
        assert "2 failing bit(s)" in dirty.describe()

    def test_merge_masks(self):
        masks: dict = {(0, 0): 0b01}
        merge_masks(masks, [(0, 0, 0b10), (1, 1, 0b1), (2, 0, 0)])
        assert masks == {(0, 0): 0b11, (1, 1): 0b1}


class TestCoreResultIntegration:
    def test_syndrome_defaults_to_none(self):
        result = CoreResult(
            name="c", method="scan", passed=True,
            bits_compared=10, mismatches=0,
        )
        assert result.syndrome is None

    def test_equality_includes_syndrome(self):
        base = dict(name="c", method="scan", passed=False,
                    bits_compared=4, mismatches=1)
        with_syndrome = CoreResult(
            **base,
            syndrome=Syndrome.from_masks(KIND_SCAN, {(0, 0): 1}),
        )
        without = CoreResult(**base)
        assert with_syndrome != without
