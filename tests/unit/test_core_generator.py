"""Unit tests for the CAS generator: structure, equivalence, area."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import values as lv
from repro.errors import ConfigurationError
from repro.netlist.simulate import NetlistSimulator
from repro.netlist.verify import check_combinational_equivalence
from repro.core.generator import CasGenerator, behavioral_reference, generate_cas
from repro.core.instruction import FIRST_TEST_CODE


def _state_for_code(design, code):
    """Update-stage register contents holding ``code``."""
    bits = design.iset.code_to_bits(code)
    state = {f"upd_{b}": bits[b] for b in range(design.k)}
    # Park the shift stage at zero so s0's config mux reads 0.
    state.update({f"ir_{b}": 0 for b in range(design.k)})
    return state


class TestStructure:
    def test_netlist_ports_match_figure3(self):
        design = generate_cas(4, 2)
        nl = design.netlist
        assert set(nl.inputs) == {"e0", "e1", "e2", "e3", "i0", "i1",
                                  "config", "update"}
        assert set(nl.outputs) == {"s0", "s1", "s2", "s3", "o0", "o1"}

    def test_register_stages_present(self):
        design = generate_cas(4, 2)  # k = 4
        names = {g.name for g in design.netlist.sequential_gates()}
        assert names == {f"ir_{b}" for b in range(4)} | {
            f"upd_{b}" for b in range(4)
        }

    def test_tristate_drivers_per_port(self):
        design = generate_cas(4, 2)
        tribufs = [g for g in design.netlist.gates if g.kind == "TRIBUF"]
        by_port = {}
        for gate in tribufs:
            by_port.setdefault(gate.output, []).append(gate)
        # Under the "all" policy every wire can reach every port.
        assert len(by_port["o0"]) == 4
        assert len(by_port["o1"]) == 4

    def test_connect_covers_keyed_by_pair(self):
        design = generate_cas(3, 1)
        assert set(design.connect_covers) == {(0, 0), (1, 0), (2, 0)}

    def test_table1_row_tuple(self):
        design = generate_cas(3, 1)
        n, p, m, k, gates = design.table1_row()
        assert (n, p, m, k) == (3, 1, 5, 3)
        assert gates == design.area.cell_count

    def test_bad_minimizer_rejected(self):
        with pytest.raises(ConfigurationError):
            CasGenerator(3, 1, minimizer="magic")

    def test_restricted_policy_smaller(self):
        full = generate_cas(5, 2, policy="all")
        window = generate_cas(5, 2, policy="contiguous")
        assert window.area.cell_count < full.area.cell_count
        assert window.k < full.k


class TestDecoderSpecification:
    def test_connect_on_sets_partition_test_codes(self):
        gen = CasGenerator(4, 2)
        on_sets = gen.connect_on_sets()
        # Each TEST code appears in exactly P connect functions.
        from collections import Counter

        appearances = Counter()
        for codes in on_sets.values():
            appearances.update(codes)
        for code in range(FIRST_TEST_CODE, gen.iset.m):
            assert appearances[code] == 2

    def test_bypass_and_chain_in_no_on_set(self):
        gen = CasGenerator(4, 2)
        for codes in gen.connect_on_sets().values():
            assert 0 not in codes
            assert 1 not in codes

    def test_dont_cares_above_m(self):
        gen = CasGenerator(4, 2)  # m=14, k=4
        assert gen.dont_care_codes() == [14, 15]

    def test_covers_respect_specification(self):
        gen = CasGenerator(4, 2)
        covers = gen.minimize_covers()
        on_sets = gen.connect_on_sets()
        for key, cover in covers.items():
            on = set(on_sets[key])
            for code in range(gen.iset.m):
                assert cover.evaluate(code) == (code in on), (key, code)


class TestEquivalence:
    @pytest.mark.parametrize("n,p", [(3, 1), (4, 2), (4, 3), (5, 2)])
    def test_netlist_matches_behavioral_every_instruction(self, n, p):
        design = generate_cas(n, p)
        input_nets = design.netlist.inputs
        output_nets = design.netlist.outputs
        for code in range(design.m):
            reference = behavioral_reference(design, code)
            checked = check_combinational_equivalence(
                design.netlist,
                reference,
                input_nets,
                output_nets,
                state=_state_for_code(design, code),
                samples=64,
                seed=code,
            )
            assert checked > 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_instruction_random_stimuli(self, seed):
        design = generate_cas(4, 2)
        code = seed % design.m
        reference = behavioral_reference(design, code)
        check_combinational_equivalence(
            design.netlist,
            design_reference := reference,
            design.netlist.inputs,
            design.netlist.outputs,
            state=_state_for_code(design, code),
            samples=32,
            seed=seed,
        )


class TestSequentialBehaviourOfNetlist:
    def test_full_configuration_sequence_in_gates(self):
        """Shift a code serially into the gate-level CAS and verify the
        switch routes like the behavioural model afterwards."""
        design = generate_cas(3, 1)
        sim = NetlistSimulator(design.netlist)
        sim.load_state({f"ir_{b}": 0 for b in range(design.k)})
        sim.load_state({f"upd_{b}": 0 for b in range(design.k)})
        # Pick the TEST instruction routing wire 1 to port 0.
        scheme = next(
            s for s in design.iset.schemes if s.wire_of_port == (1,)
        )
        code = design.iset.encode(scheme)
        # Shift LSB-first on e0 with config asserted.
        sim.set_inputs({"config": lv.ONE, "update": lv.ZERO,
                        "i0": lv.ZERO, "e1": lv.ZERO, "e2": lv.ZERO})
        for bit in design.iset.code_to_bits(code):
            sim.set_inputs({"e0": lv.ONE if bit else lv.ZERO})
            sim.clock()
        # Update pulse.
        sim.set_inputs({"config": lv.ZERO, "update": lv.ONE})
        sim.clock()
        sim.set_inputs({"update": lv.ZERO})
        # Now drive the bus and watch the switch.
        sim.set_inputs({"e0": lv.ZERO, "e1": lv.ONE, "e2": lv.ZERO,
                        "i0": lv.ONE})
        assert sim.read("o0") == lv.ONE   # e1 forwarded to the core
        assert sim.read("s1") == lv.ONE   # i0 returned on s1
        assert sim.read("s0") == lv.ZERO  # bypassed
        assert sim.read("s2") == lv.ZERO

    def test_core_side_floats_during_config(self):
        design = generate_cas(3, 1)
        sim = NetlistSimulator(design.netlist)
        sim.load_state({f"upd_{b}": b == 1 for b in range(design.k)})
        sim.set_inputs({"config": lv.ONE, "update": lv.ZERO,
                        "e0": lv.ONE, "e1": lv.ONE, "e2": lv.ONE,
                        "i0": lv.ONE})
        assert sim.read("o0") == lv.Z


class TestVhdlAndArea:
    def test_vhdl_contains_every_instruction(self):
        design = generate_cas(3, 1)
        text = design.vhdl
        for index in range(len(design.iset.schemes)):
            code = FIRST_TEST_CODE + index
            assert format(code, f"0{design.k}b") in text

    def test_area_nonzero_and_monotone_in_p(self):
        small = generate_cas(4, 1)
        large = generate_cas(4, 3)
        assert 0 < small.area.cell_count < large.area.cell_count
        assert small.area.area_ge < large.area.area_ge
