"""Unit tests for VCD file output and traced sessions."""

from __future__ import annotations

from repro import values as lv
from repro.sim.plan import PlanBuilder, flat_assignment
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.sim.trace import TraceRecorder
from repro.sim.vcd import render_vcd, write_vcd
from repro.soc.library import small_soc


class TestVcdFile:
    def test_write_and_parse_back(self, tmp_path):
        trace = TraceRecorder()
        trace.record("clk", 0, lv.ZERO)
        trace.record("clk", 1, lv.ONE)
        trace.record("data", 0, lv.Z)
        path = tmp_path / "out.vcd"
        write_vcd(trace, str(path), design_name="unit")
        text = path.read_text()
        assert text == render_vcd(trace, design_name="unit")
        assert text.startswith("$date")
        assert "$enddefinitions $end" in text

    def test_traced_session_produces_bus_signals(self, tmp_path):
        trace = TraceRecorder()
        system = build_system(small_soc())
        executor = SessionExecutor(system, trace=trace)
        plan = PlanBuilder().add_session(
            flat_assignment("alpha", (0, 1))
        ).build()
        result = executor.run_plan(plan)
        assert result.passed
        signals = trace.signals()
        assert any(name.startswith("bus_in") for name in signals)
        assert any(name.startswith("bus_out") for name in signals)
        path = tmp_path / "session.vcd"
        write_vcd(trace, str(path))
        assert path.stat().st_size > 0

    def test_trace_covers_test_cycles(self):
        trace = TraceRecorder()
        system = build_system(small_soc())
        executor = SessionExecutor(system, trace=trace)
        plan = PlanBuilder().add_session(
            flat_assignment("beta", (0,))
        ).build()
        result = executor.run_plan(plan)
        # Trace is recorded during test phases (config phases excluded).
        assert trace.max_cycle >= result.test_cycles - 1
