"""Unit and property tests for CAS instruction sets (Table 1 quantities)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.core.instruction import (
    BYPASS_CODE,
    CHAIN_CODE,
    FIRST_TEST_CODE,
    InstructionSet,
    instruction_count,
    register_width,
)

np_pairs = st.tuples(st.integers(1, 6), st.integers(1, 6)).filter(
    lambda t: t[1] <= t[0]
)

#: The complete Table 1 (N, P) -> (m, k) record from the paper.
TABLE1_MK = {
    (3, 1): (5, 3),
    (4, 1): (6, 3),
    (4, 2): (14, 4),
    (4, 3): (26, 5),
    (5, 1): (7, 3),
    (5, 2): (22, 5),
    (5, 3): (62, 6),
    (6, 1): (8, 3),
    (6, 2): (32, 5),
    (6, 3): (122, 7),
    (6, 5): (722, 10),
    (8, 4): (1682, 11),
}


class TestTable1Quantities:
    @pytest.mark.parametrize("np,mk", sorted(TABLE1_MK.items()))
    def test_m_and_k_match_paper(self, np, mk):
        n, p = np
        m, k = mk
        iset = InstructionSet(n, p)
        assert iset.m == m
        assert iset.k == k

    def test_m_closed_form(self):
        for (n, p), (m, _) in TABLE1_MK.items():
            assert instruction_count(n, p) == m
            assert m == math.factorial(n) // math.factorial(n - p) + 2

    def test_k_formula(self):
        assert register_width(5) == 3
        assert register_width(1682) == 11
        assert register_width(1) == 1  # degenerate, still one bit
        assert register_width(2) == 1
        assert register_width(3) == 2

    def test_register_width_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            register_width(0)


class TestCodeLayout:
    def test_bypass_is_all_zeros(self, iset_4_2):
        # Paper: "When all the instruction register bits are 0, the CAS
        # is in a BYPASS mode".
        assert BYPASS_CODE == 0
        assert iset_4_2.decode(0).kind == "bypass"
        assert iset_4_2.code_to_bits(0) == (0,) * iset_4_2.k

    def test_chain_is_code_one(self, iset_4_2):
        assert iset_4_2.decode(CHAIN_CODE).kind == "chain"

    def test_test_codes_are_dense(self, iset_4_2):
        for code in range(FIRST_TEST_CODE, iset_4_2.m):
            instruction = iset_4_2.decode(code)
            assert instruction.kind == "test"
            assert instruction.scheme is not None

    def test_out_of_range_rejected(self, iset_4_2):
        with pytest.raises(ConfigurationError):
            iset_4_2.decode(iset_4_2.m)
        with pytest.raises(ConfigurationError):
            iset_4_2.decode(-1)

    def test_describe(self, iset_4_2):
        assert iset_4_2.decode(0).describe() == "BYPASS"
        assert iset_4_2.decode(1).describe() == "CHAIN"
        assert "TEST" in iset_4_2.decode(2).describe()


class TestEncodeDecode:
    @settings(max_examples=40, deadline=None)
    @given(np_pairs)
    def test_round_trip_all_schemes(self, np):
        n, p = np
        iset = InstructionSet(n, p)
        for scheme in iset.schemes:
            code = iset.encode(scheme)
            assert iset.decode(code).scheme == scheme

    def test_encode_foreign_scheme_rejected(self):
        iset = InstructionSet(4, 2, policy="contiguous")
        from repro.core.switch import SwitchScheme

        foreign = SwitchScheme(n=4, p=2, wire_of_port=(3, 0))
        with pytest.raises(ConfigurationError):
            iset.encode(foreign)

    @settings(max_examples=40, deadline=None)
    @given(np_pairs, st.integers(0, 5000))
    def test_bits_round_trip(self, np, code):
        n, p = np
        iset = InstructionSet(n, p)
        code = code % (1 << iset.k)
        bits = iset.code_to_bits(code)
        assert len(bits) == iset.k
        assert iset.bits_to_code(bits) == code

    def test_bits_wrong_length_rejected(self, iset_4_2):
        with pytest.raises(ConfigurationError):
            iset_4_2.bits_to_code((0, 1))

    def test_bits_non_binary_rejected(self, iset_4_2):
        with pytest.raises(ConfigurationError):
            iset_4_2.bits_to_code((0, 1, 2, 0))

    def test_code_too_wide_rejected(self, iset_4_2):
        with pytest.raises(ConfigurationError):
            iset_4_2.code_to_bits(1 << iset_4_2.k)


class TestPolicies:
    def test_policy_changes_m(self):
        full = InstructionSet(6, 3, "all")
        ordered = InstructionSet(6, 3, "order_preserving")
        window = InstructionSet(6, 3, "contiguous")
        single = InstructionSet(6, 3, "identity")
        assert full.m == 122
        assert ordered.m == 22
        assert window.m == 6
        assert single.m == 3
        assert full.k > ordered.k > window.k

    def test_instruction_count_matches_iset(self):
        for policy in ("all", "order_preserving", "contiguous", "identity"):
            iset = InstructionSet(5, 2, policy)
            assert iset.m == instruction_count(5, 2, policy)

    def test_equality_and_hash(self):
        assert InstructionSet(4, 2) == InstructionSet(4, 2)
        assert InstructionSet(4, 2) != InstructionSet(4, 2, "contiguous")
        assert hash(InstructionSet(4, 2)) == hash(InstructionSet(4, 2))

    def test_is_valid_code(self, iset_3_1):
        assert iset_3_1.is_valid_code(0)
        assert iset_3_1.is_valid_code(iset_3_1.m - 1)
        assert not iset_3_1.is_valid_code(iset_3_1.m)

    def test_instructions_enumeration(self, iset_3_1):
        instructions = iset_3_1.instructions()
        assert len(instructions) == iset_3_1.m
        assert [i.code for i in instructions] == list(range(iset_3_1.m))
