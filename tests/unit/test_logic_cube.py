"""Unit tests for cubes (product terms)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.cube import Cube, popcount

NUM_VARS = 5


@st.composite
def cubes(draw, num_vars: int = NUM_VARS) -> Cube:
    mask = draw(st.integers(min_value=0, max_value=(1 << num_vars) - 1))
    value = draw(st.integers(min_value=0, max_value=(1 << num_vars) - 1)) & mask
    return Cube(mask=mask, value=value)


points = st.integers(min_value=0, max_value=(1 << NUM_VARS) - 1)


class TestConstruction:
    def test_value_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            Cube(mask=0b01, value=0b10)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Cube(mask=-1, value=0)

    def test_minterm_is_fully_specified(self):
        cube = Cube.minterm(5, 4)
        assert cube.num_literals() == 4
        assert cube.covers_point(5)
        assert not cube.covers_point(4)

    def test_minterm_out_of_range(self):
        with pytest.raises(ValueError):
            Cube.minterm(16, 4)

    def test_universe_covers_everything(self):
        cube = Cube.universe()
        for point in range(8):
            assert cube.covers_point(point)


class TestStringForm:
    def test_round_trip(self):
        text = "01--1"
        assert Cube.from_string(text).to_string(5) == text

    def test_bad_character(self):
        with pytest.raises(ValueError):
            Cube.from_string("012")

    @given(cubes())
    def test_round_trip_property(self, cube):
        assert Cube.from_string(cube.to_string(NUM_VARS)) == cube


class TestCoverage:
    def test_size(self):
        assert Cube.from_string("1--").size(3) == 4
        assert Cube.from_string("111").size(3) == 1

    @given(cubes())
    def test_points_match_covers_point(self, cube):
        covered = set(cube.points(NUM_VARS))
        assert len(covered) == cube.size(NUM_VARS)
        for point in range(1 << NUM_VARS):
            assert (point in covered) == cube.covers_point(point)

    @given(cubes(), cubes())
    def test_covers_cube_is_point_subset(self, a, b):
        subset = set(b.points(NUM_VARS)) <= set(a.points(NUM_VARS))
        assert a.covers_cube(b) == subset

    @given(cubes(), cubes())
    def test_intersects_matches_point_sets(self, a, b):
        shared = set(a.points(NUM_VARS)) & set(b.points(NUM_VARS))
        assert a.intersects(b) == bool(shared)
        inter = a.intersection(b)
        if shared:
            assert inter is not None
            assert set(inter.points(NUM_VARS)) == shared
        else:
            assert inter is None


class TestMerging:
    def test_adjacent_minterms_merge(self):
        a = Cube.minterm(0b000, 3)
        b = Cube.minterm(0b001, 3)
        merged = a.merged(b)
        assert merged.to_string(3) == "-00"
        assert set(merged.points(3)) == {0, 1}

    def test_non_adjacent_rejected(self):
        a = Cube.minterm(0b00, 2)
        b = Cube.minterm(0b11, 2)
        with pytest.raises(ValueError):
            a.merged(b)

    def test_different_masks_rejected(self):
        a = Cube.from_string("0-")
        b = Cube.from_string("01")
        with pytest.raises(ValueError):
            a.merged(b)

    @given(cubes())
    def test_expand_bit_supersets(self, cube):
        for bit in range(NUM_VARS):
            expanded = cube.expand_bit(bit)
            assert expanded.covers_cube(cube)

    def test_merge_distance(self):
        a = Cube.from_string("00-")
        b = Cube.from_string("01-")
        assert a.merge_distance(b) == 1
        assert a.merge_distance(Cube.from_string("0-0")) == -1


def test_popcount():
    assert popcount(0) == 0
    assert popcount(0b1011) == 3
    assert popcount((1 << 40) - 1) == 40
