"""Unit tests for tables, reports, sweeps and the VCD/trace utilities."""

from __future__ import annotations

from repro import values as lv
from repro.analysis.report import ComparisonRow, comparison_table
from repro.analysis.sweep import sweep
from repro.analysis.tables import format_table
from repro.sim.trace import TraceRecorder
from repro.sim.vcd import render_vcd


class TestTables:
    def test_alignment(self):
        text = format_table(
            ("name", "count"),
            (("alpha", 5), ("b", 123)),
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[2].startswith("alpha")
        # Numeric column right-aligned.
        assert lines[2].endswith("  5".rjust(3)) or "  5" in lines[2]
        assert "123" in lines[3]

    def test_title(self):
        text = format_table(("a",), ((1,),), title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_float_formatting(self):
        text = format_table(("x",), ((1.23456,),))
        assert "1.23" in text


class TestReport:
    def test_exact_match_ratio(self):
        row = ComparisonRow("m", 14, 14)
        assert row.matches
        assert row.ratio == 1.0

    def test_non_numeric(self):
        row = ComparisonRow("policy", "all", "all")
        assert row.ratio is None
        assert row.matches

    def test_table_renders(self):
        text = comparison_table(
            [ComparisonRow("gates", 64, 108), ComparisonRow("k", 4, 4)],
        )
        assert "1.69" in text
        assert "paper" in text


class TestSweep:
    def test_sweep_shapes(self):
        headers, rows = sweep(
            [1, 2, 3],
            lambda n: {"square": n * n},
            parameter_name="n",
        )
        assert headers == ["n", "square"]
        assert rows == [[1, 1], [2, 4], [3, 9]]


class TestTraceAndVcd:
    def test_change_compression(self):
        trace = TraceRecorder()
        trace.record("sig", 0, lv.ZERO)
        trace.record("sig", 1, lv.ZERO)
        trace.record("sig", 2, lv.ONE)
        assert trace.changes["sig"] == [(0, lv.ZERO), (2, lv.ONE)]

    def test_value_at(self):
        trace = TraceRecorder()
        trace.record("sig", 0, lv.ZERO)
        trace.record("sig", 5, lv.ONE)
        assert trace.value_at("sig", 3) == lv.ZERO
        assert trace.value_at("sig", 5) == lv.ONE
        assert trace.value_at("nope", 1) is None

    def test_record_vector(self):
        trace = TraceRecorder()
        trace.record_vector("bus", 0, (lv.ZERO, lv.ONE))
        assert set(trace.signals()) == {"bus0", "bus1"}

    def test_vcd_structure(self):
        trace = TraceRecorder()
        trace.record("a", 0, lv.ZERO)
        trace.record("a", 3, lv.ONE)
        trace.record("b", 1, lv.Z)
        text = render_vcd(trace, design_name="dut")
        assert "$scope module dut $end" in text
        assert "$var wire 1" in text
        assert "#0" in text and "#3" in text
        assert "z" in text  # high-impedance encoded

    def test_vcd_identifiers_unique(self):
        trace = TraceRecorder()
        for index in range(100):
            trace.record(f"sig{index}", 0, lv.ZERO)
        text = render_vcd(trace)
        ids = [
            line.split()[3]
            for line in text.splitlines()
            if line.startswith("$var")
        ]
        assert len(set(ids)) == 100
