"""Back-compat regression: the legacy entry points still work and
still produce the seed-era numbers.

The golden values below were captured from the seed tree (before the
repro.api layer existed); everything here is deterministic, so any
drift means the refactor changed behaviour, not just structure.
"""

from __future__ import annotations

from repro.baselines import all_baselines
from repro.baselines.casbus import CasBusTam
from repro.core.tam import CasBusTamDesign
from repro.schedule.scheduler import Schedule, schedule_greedy
from repro.soc.itc02 import d695_like
from repro.soc.library import fig1_soc, small_soc

#: Seed expectations: (test_cycles, config_cycles, extra_pins,
#: area_proxy) of every baseline on the d695-like workload at N=8.
SEED_BASELINE_REPORTS = {
    "mux-bus": (180039, 40, 8, 480.0),
    "daisy-chain": (3055704, 0, 1, 30.0),
    "static-distribution": (544729, 0, 8, 160.0),
    "direct-access": (34309, 0, 81, 162.0),
    "system-bus": (145659, 160, 0, 600.0),
    "cas-bus": (162835, 624, 8, 2678.5),
}


class TestLegacyFacade:
    def test_for_soc_run_small(self):
        result = CasBusTamDesign.for_soc(small_soc()).run()
        assert result.passed
        assert result.total_cycles == 96  # seed value
        assert result.config_cycles == 20
        assert result.test_cycles == 76

    def test_for_soc_run_fig1(self):
        result = CasBusTamDesign.for_soc(fig1_soc()).run()
        assert result.passed
        assert result.total_cycles == 1169  # seed value

    def test_schedule_default_is_greedy_schedule(self):
        schedule = CasBusTamDesign.for_soc(fig1_soc()).schedule()
        assert isinstance(schedule, Schedule)
        names = [n for s in schedule.sessions for n in s.names()]
        assert sorted(names) == sorted(
            c.name for c in fig1_soc().cores
        )


class TestLegacyFreeFunctions:
    def test_schedule_greedy_unchanged(self):
        schedule = schedule_greedy(d695_like(), 8)
        assert schedule.test_cycles == 162835  # seed value
        assert schedule.config_cycles_total == 2532
        assert len(schedule.sessions) == 9

    def test_schedule_greedy_matches_registry_strategy(self):
        from repro.api import get_scheduler

        direct = schedule_greedy(d695_like(), 8)
        outcome = get_scheduler("greedy").schedule(d695_like(), 8)
        assert outcome.test_cycles == direct.test_cycles
        assert outcome.config_cycles == direct.config_cycles_total


class TestLegacyBaselines:
    def test_all_baselines_roster_and_order(self):
        names = [b.name for b in all_baselines()]
        assert names == [
            "mux-bus", "daisy-chain", "static-distribution",
            "direct-access", "system-bus", "cas-bus",
        ]  # CAS-BUS last, as always

    def test_all_baselines_reports_unchanged(self):
        cores = d695_like()
        for baseline in all_baselines():
            report = baseline.evaluate(cores, 8)
            expected = SEED_BASELINE_REPORTS[baseline.name]
            assert (report.test_cycles, report.config_cycles,
                    report.extra_pins, report.area_proxy) == expected

    def test_casbus_default_constructor_unchanged(self):
        # CasBusTam() grew a scheduler parameter; the default must
        # still be the historical greedy packing.
        report = CasBusTam().evaluate(d695_like(), 8)
        assert (report.test_cycles, report.config_cycles) == (162835, 624)


class TestFacadeAndExperimentAgree:
    def test_same_cycles_both_ways(self):
        from repro.api import Experiment

        legacy = CasBusTamDesign.for_soc(small_soc()).run()
        modern = Experiment(small_soc()).with_architecture("casbus").run()
        assert modern.total_cycles == legacy.total_cycles
        assert modern.passed == legacy.passed
