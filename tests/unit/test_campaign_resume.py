"""Resume and shard semantics of the campaign runner.

The acceptance contract: a campaign interrupted partway re-runs to
completion executing only the missing configs, and the union of shard
runs equals the unsharded result set.
"""

from __future__ import annotations

import pytest

from repro.api import Experiment, run_many
from repro.campaign import Campaign, CampaignStore, config_hash

ARCHITECTURES = ("casbus", "mux-bus", "direct-access")
WIDTHS = (8, 16)


def _campaign(tmp_path, name="resume") -> Campaign:
    return Campaign.sweep(
        name,
        ["itc02-d695"],
        architectures=ARCHITECTURES,
        bus_widths=WIDTHS,
        store_dir=tmp_path,
    )


class Interrupt(RuntimeError):
    """Stands in for the operator's ctrl-C / the scheduler's SIGKILL."""


class TestResume:
    def test_interrupted_campaign_resumes_missing_only(self, tmp_path):
        campaign = _campaign(tmp_path)
        total = len(campaign.experiments)
        assert total == len(ARCHITECTURES) * len(WIDTHS)
        kill_after = 2
        executed = []

        def die_midway(experiment, result, *, cached, elapsed):
            executed.append(experiment)
            if len(executed) >= kill_after:
                raise Interrupt()

        with pytest.raises(Interrupt):
            campaign.run(parallel=False, on_result=die_midway)
        # Every completed run was durably recorded before the kill.
        assert len(campaign.store.hashes()) == kill_after
        assert campaign.pending() == total - kill_after

        # The re-run executes exactly the missing configs, no more.
        report = _campaign(tmp_path).run(parallel=False)
        assert report.executed == total - kill_after
        assert report.cached == kill_after
        assert len(report.results) == total

        # No duplicate records: one line per config, ever.
        lines = campaign.store.path.read_text().splitlines()
        assert len(lines) == total

    def test_finished_campaign_is_free(self, tmp_path):
        campaign = _campaign(tmp_path)
        first = campaign.run(parallel=False)
        second = campaign.run(parallel=False)
        assert first.executed == first.total
        assert second.executed == 0
        assert second.cached == second.total
        assert second.results == first.results

    def test_rerun_supersedes(self, tmp_path):
        campaign = _campaign(tmp_path)
        campaign.run(parallel=False)
        report = campaign.run(parallel=False, rerun=True)
        assert report.executed == report.total
        # Two records per config on disk, one surviving read.
        lines = campaign.store.path.read_text().splitlines()
        assert len(lines) == 2 * report.total
        assert len(campaign.store) == report.total

    def test_parallel_store_path(self, tmp_path):
        """The store-aware path works through the pool machinery too
        (process pool, or its thread fallback in sandboxes)."""
        campaign = _campaign(tmp_path)
        report = campaign.run(parallel=True, max_workers=2)
        assert report.executed == report.total
        resumed = _campaign(tmp_path).run(parallel=True, max_workers=2)
        assert resumed.executed == 0
        assert resumed.results == report.results


class TestSharding:
    def test_shard_union_equals_unsharded(self, tmp_path):
        full = _campaign(tmp_path, "full")
        full_report = full.run(parallel=False)

        shard_stores = []
        selected_total = 0
        for index in (1, 2):
            shard = Campaign.sweep(
                f"shard{index}",
                ["itc02-d695"],
                architectures=ARCHITECTURES,
                bus_widths=WIDTHS,
                store_dir=tmp_path,
            )
            report = shard.run(shard=(index, 2), parallel=False)
            assert report.executed == report.selected
            selected_total += report.selected
            shard_stores.append(shard.store)

        assert selected_total == full_report.total
        from repro.campaign import merge_stores

        merged = merge_stores(shard_stores, tmp_path / "merged.jsonl")
        assert merged.results() == full.store.results()

    def test_shards_are_disjoint(self, tmp_path):
        campaign = _campaign(tmp_path)
        owned = [set(campaign.selected_hashes((k, 3))) for k in (1, 2, 3)]
        union = set().union(*owned)
        assert sum(len(part) for part in owned) == len(union)
        assert union == set(campaign.hashes())

    def test_shard_resume_counts(self, tmp_path):
        campaign = _campaign(tmp_path)
        first = campaign.run(shard=(1, 2), parallel=False)
        again = campaign.run(shard=(1, 2), parallel=False)
        assert again.executed == 0
        assert again.cached == first.selected


class TestRunManyStorePath:
    def test_duplicate_configs_execute_once(self, tmp_path):
        store = CampaignStore(tmp_path / "dup.jsonl")
        experiment = Experiment("itc02-d695").with_bus_width(8)
        twin = Experiment("itc02-d695").with_bus_width(8)
        calls = []

        def tally(exp, result, *, cached, elapsed):
            calls.append(cached)

        results = run_many(
            [experiment, twin], parallel=False,
            store=store, on_result=tally,
        )
        assert results[0] == results[1]
        assert sorted(calls) == [False, True]  # one executed, one reused
        assert len(store) == 1

    def test_store_hit_skips_execution(self, tmp_path):
        store = CampaignStore(tmp_path / "hit.jsonl")
        experiment = Experiment("itc02-d695").with_bus_width(8)
        [first] = run_many([experiment], parallel=False, store=store)
        seen = {}

        def tally(exp, result, *, cached, elapsed):
            seen["cached"] = cached

        [second] = run_many(
            [experiment], parallel=False, store=store, on_result=tally,
        )
        assert seen["cached"] is True
        assert second == first
        assert config_hash(experiment) in store
