"""The observability layer: spans, metrics, sinks, console.

The invariants that make ``repro.obs`` safe to leave in every hot
path: a disabled site costs one global read and hands back shared
no-op singletons; spans nest per thread and survive exceptions; a
JSONL trace round-trips; a worker's :meth:`Collector.payload` folds
losslessly into the parent via :meth:`Collector.absorb` (the
multiprocess harvest protocol); and the :class:`Console` keeps stdout
machine-parseable under ``--json``.
"""

from __future__ import annotations

import io
import json

import pytest

from repro import obs
from repro.obs import (
    Collector,
    Console,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    SpanRecord,
    read_trace,
)
from repro.obs.metrics import NOOP_METRIC, cache_event
from repro.obs.spans import NOOP_SPAN


@pytest.fixture(autouse=True)
def _no_global_collector():
    """Every test starts and ends with observability disabled."""
    obs.shutdown()
    yield
    obs.shutdown()


class TestDisabled:
    def test_span_is_the_shared_noop(self):
        assert obs.span("anything", attr=1) is NOOP_SPAN
        with obs.span("nested") as span:
            span.set(cores=4)  # must be accepted and dropped

    def test_metrics_are_the_shared_noop(self):
        assert obs.counter("c") is NOOP_METRIC
        assert obs.gauge("g") is NOOP_METRIC
        assert obs.histogram("h") is NOOP_METRIC
        obs.counter("c").inc()
        obs.gauge("g").set(3)
        obs.histogram("h").observe(0.5)
        cache_event("cache", "hits")  # silently dropped

    def test_enabled_reports_state(self):
        assert not obs.enabled()
        assert obs.active() is None
        with obs.capture():
            assert obs.enabled()
        assert not obs.enabled()


class TestSpans:
    def test_nesting_builds_parent_chain(self):
        with obs.capture() as collector:
            with obs.span("outer"):
                with obs.span("middle"):
                    with obs.span("inner"):
                        pass
        inner, middle, outer = collector.spans()
        assert [s.name for s in (inner, middle, outer)] == [
            "inner", "middle", "outer",
        ]
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id

    def test_siblings_share_a_parent(self):
        with obs.capture() as collector:
            with obs.span("round"):
                with obs.span("unit"):
                    pass
                with obs.span("unit"):
                    pass
        first, second, parent = collector.spans()
        assert first.parent_id == parent.span_id
        assert second.parent_id == parent.span_id
        assert first.span_id != second.span_id

    def test_exception_closes_span_and_propagates(self):
        with obs.capture() as collector:
            with pytest.raises(ValueError):
                with obs.span("outer"):
                    with obs.span("doomed"):
                        raise ValueError("boom")
            # The stack unwound completely: a new span is a root again.
            with obs.span("after"):
                pass
        doomed, outer, after = collector.spans()
        assert doomed.error == "ValueError"
        assert outer.error == "ValueError"
        assert after.error is None
        assert after.parent_id is None

    def test_attributes_at_open_and_mid_span(self):
        with obs.capture() as collector:
            with obs.span("dispatch", cores=4) as span:
                span.set(scenarios=17)
        (record,) = collector.spans()
        assert record.attrs == {"cores": 4, "scenarios": 17}
        assert record.duration_s >= 0.0

    def test_record_round_trips_as_dict(self):
        record = SpanRecord("1.1", None, "x", 0.0, 0.25, {"k": "v"},
                            error="KeyError")
        assert SpanRecord.from_dict(record.to_dict()).to_dict() == \
            record.to_dict()


class TestMetrics:
    def test_counter_gauge_histogram(self):
        with obs.capture() as collector:
            obs.counter("runs").inc()
            obs.counter("runs").inc(2)
            obs.gauge("best").set(41)
            obs.gauge("best").set(40)
            obs.histogram("latency").observe(1.0)
            obs.histogram("latency").observe(3.0)
        snapshot = collector.metrics.snapshot()
        assert snapshot["counters"] == {"runs": 3}
        assert snapshot["gauges"] == {"best": 40}
        assert snapshot["histograms"]["latency"] == {
            "count": 2, "total": 4.0, "min": 1.0, "max": 3.0,
        }

    def test_cache_event_namespaces_by_cache(self):
        with obs.capture() as collector:
            cache_event("testsets", "hits")
            cache_event("testsets", "misses", 2)
        assert collector.metrics.snapshot()["counters"] == {
            "cache.testsets.hits": 1,
            "cache.testsets.misses": 2,
        }

    def test_merge_accumulates_counters_and_histograms(self):
        left = MetricsRegistry()
        left.counter("n").inc(1)
        left.histogram("h").observe(1.0)
        left.gauge("g").set(10)
        right = MetricsRegistry()
        right.counter("n").inc(2)
        right.histogram("h").observe(5.0)
        right.gauge("g").set(20)
        left.merge(right.snapshot())
        snapshot = left.snapshot()
        assert snapshot["counters"] == {"n": 3}
        assert snapshot["gauges"] == {"g": 20}
        assert snapshot["histograms"]["h"] == {
            "count": 2, "total": 6.0, "min": 1.0, "max": 5.0,
        }


class TestHarvest:
    """The capture / payload / absorb worker protocol."""

    def test_payload_is_plain_json_data(self):
        with obs.capture() as collector:
            with obs.span("work", item=1):
                obs.counter("done").inc()
        payload = collector.payload()
        assert json.loads(json.dumps(payload)) == payload

    def test_absorb_folds_spans_and_metrics(self):
        worker = Collector()
        with obs.capture() as scoped:
            with obs.span("worker.task"):
                obs.counter("items").inc(3)
            payload = scoped.payload()
        del worker
        parent_sink = MemorySink()
        parent = Collector(sinks=[parent_sink])
        parent.metrics.counter("items").inc(1)
        parent.absorb(payload)
        assert [s.name for s in parent.spans()] == ["worker.task"]
        assert parent.metrics.snapshot()["counters"] == {"items": 4}
        # Absorbed spans reach the parent's sinks too.
        assert [s.name for s in parent_sink.records] == ["worker.task"]

    def test_absorb_tolerates_empty_payload(self):
        parent = Collector()
        parent.absorb(None)
        parent.absorb({})
        assert parent.spans() == []

    def test_capture_restores_previous_collector(self):
        outer = obs.configure()
        with obs.capture() as inner:
            assert obs.active() is inner
        assert obs.active() is outer


class TestJsonlSink:
    def test_trace_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.capture(sinks=[JsonlSink(path)]) as collector:
            with obs.span("outer", campaign="demo"):
                with obs.span("inner"):
                    obs.counter("records").inc(2)
            collector.close()
        spans, metrics = read_trace(path)
        assert [s.name for s in spans] == ["inner", "outer"]
        assert spans[0].parent_id == spans[1].span_id
        assert metrics["counters"] == {"records": 2}

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"trace_schema": 99}\n')
        with pytest.raises(ValueError):
            read_trace(path)

    def test_configure_and_shutdown_finalize_the_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.configure(sinks=[JsonlSink(path)])
        with obs.span("only"):
            obs.gauge("depth").set(1)
        obs.shutdown()
        spans, metrics = read_trace(path)
        assert [s.name for s in spans] == ["only"]
        assert metrics["gauges"] == {"depth": 1}


class TestConsole:
    def _console(self, **kwargs):
        out, err = io.StringIO(), io.StringIO()
        console = Console(stream=out, err_stream=err, **kwargs)
        return console, out, err

    def test_default_levels(self):
        console, out, err = self._console()
        console.result("answer")
        console.info("progress")
        console.detail("noise")
        console.warn("problem")
        assert out.getvalue() == "answer\nprogress\n"
        assert err.getvalue() == "problem\n"

    def test_quiet_mutes_info_not_result(self):
        console, out, _ = self._console(quiet=True)
        console.result("answer")
        console.info("progress")
        assert out.getvalue() == "answer\n"

    def test_verbose_wins_over_quiet(self):
        console, out, _ = self._console(quiet=True, verbose=True)
        console.detail("per-item")
        assert out.getvalue() == "per-item\n"

    def test_json_mode_keeps_stdout_machine_parseable(self):
        console, out, err = self._console(json_mode=True)
        console.result("human table")
        console.info("progress")
        console.json({"b": 2, "a": 1})
        assert json.loads(out.getvalue()) == {"a": 1, "b": 2}
        assert err.getvalue() == "progress\n"
