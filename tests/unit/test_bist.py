"""Unit tests for LFSR / MISR / BIST engine."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.bist.engine import BistEngine, random_detectable_fault
from repro.bist.lfsr import DEFAULT_TAPS, Lfsr
from repro.bist.misr import Misr
from repro.scan.core_model import ScannableCore


class TestLfsr:
    @pytest.mark.parametrize("width", [3, 4, 5, 7, 8])
    def test_maximal_period(self, width):
        lfsr = Lfsr(width)
        assert lfsr.period() == (1 << width) - 1

    def test_stream_deterministic(self):
        a = Lfsr(8, seed=0x5A).stream(64)
        b = Lfsr(8, seed=0x5A).stream(64)
        assert a == b

    def test_different_seeds_differ(self):
        a = Lfsr(8, seed=1).stream(32)
        b = Lfsr(8, seed=77).stream(32)
        assert a != b

    def test_zero_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            Lfsr(4, seed=0)
        with pytest.raises(ConfigurationError):
            Lfsr(4, seed=16)  # 16 % 2^4 == 0

    def test_unknown_width_needs_taps(self):
        with pytest.raises(ConfigurationError):
            Lfsr(23)
        lfsr = Lfsr(23, taps=(23, 18))
        assert lfsr.width == 23

    def test_bad_tap_rejected(self):
        with pytest.raises(ConfigurationError):
            Lfsr(4, taps=(5,))

    def test_width_too_small(self):
        with pytest.raises(ConfigurationError):
            Lfsr(1)

    def test_reset_restores_stream(self):
        lfsr = Lfsr(6, seed=3)
        first = lfsr.stream(10)
        lfsr.reset()
        assert lfsr.stream(10) == first

    def test_all_default_widths_construct(self):
        for width in DEFAULT_TAPS:
            assert Lfsr(width).step() in (0, 1)


class TestMisr:
    def test_signature_deterministic(self):
        a = Misr(8)
        b = Misr(8)
        for vec in ([1, 0, 1], [0, 0, 1], [1, 1, 1]):
            a.absorb(vec)
            b.absorb(vec)
        assert a.signature == b.signature

    def test_signature_sensitive_to_single_bit(self):
        a = Misr(8)
        b = Misr(8)
        a.absorb([1, 0, 0])
        b.absorb([1, 1, 0])
        for _ in range(5):
            a.absorb([0, 0, 0])
            b.absorb([0, 0, 0])
        assert a.signature != b.signature

    def test_signature_sensitive_to_order(self):
        a = Misr(8)
        b = Misr(8)
        a.absorb([1, 0])
        a.absorb([0, 1])
        b.absorb([0, 1])
        b.absorb([1, 0])
        assert a.signature != b.signature

    def test_too_wide_input_rejected(self):
        with pytest.raises(SimulationError):
            Misr(2).absorb([1, 0, 1])

    def test_non_binary_rejected(self):
        with pytest.raises(SimulationError):
            Misr(4).absorb([2])

    def test_signature_bits_lsb_first(self):
        misr = Misr(4, seed=0)
        misr.absorb([1])  # state becomes 0b0001
        assert misr.signature_bits() == [1, 0, 0, 0]

    def test_serial_absorb(self):
        a = Misr(8)
        b = Misr(8)
        a.absorb_bit(1)
        b.absorb([1])
        assert a.signature == b.signature


class TestBistEngine:
    def _core(self, seed=21):
        return ScannableCore.generate(
            "bisted", seed=seed, num_pis=3, num_pos=3,
            num_ffs=10, num_chains=1,
        )

    def test_fault_free_core_passes(self):
        engine = BistEngine(self._core(), signature_width=8)
        report = engine.run(cycles=64)
        assert report.passed
        assert report.cycles == 64

    def test_faulty_core_fails(self):
        core = self._core()
        fault = random_detectable_fault(core, seed=4)
        engine = BistEngine(core, signature_width=8, fault=fault)
        # A random fault may rarely be undetected by 64 cycles; this
        # specific (core seed, fault seed) pair is a regression anchor.
        report = engine.run(cycles=64)
        assert not report.passed

    def test_golden_signature_stable(self):
        engine = BistEngine(self._core(), signature_width=8)
        assert engine.golden_signature(32) == engine.golden_signature(32)

    def test_different_cycle_counts_differ(self):
        engine = BistEngine(self._core(), signature_width=8)
        assert engine.golden_signature(16) != engine.golden_signature(48)

    def test_signature_width_validated(self):
        with pytest.raises(ConfigurationError):
            BistEngine(self._core(), signature_width=1)
