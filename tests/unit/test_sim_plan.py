"""Unit tests for test plans and wire-path composition."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.plan import (
    CoreAssignment,
    PlanBuilder,
    SessionPlan,
    TestPlan,
    flat_assignment,
)


class TestCoreAssignment:
    def test_flat_top_wires(self):
        assignment = flat_assignment("c", (3, 1))
        assert assignment.top_wires() == (3, 1)
        assert assignment.name == "c"

    def test_hierarchical_composition(self):
        # Outer node ports (= inner wires 0,1) fed by top wires (2, 0);
        # terminal uses inner wires (1, 0).
        assignment = CoreAssignment(
            path=("outer", "inner"),
            levels=((2, 0), (1, 0)),
        )
        # Terminal port 0 -> inner wire 1 -> top wire levels[0][1] = 0.
        assert assignment.top_wire(0) == 0
        assert assignment.top_wire(1) == 2
        assert assignment.top_wires() == (0, 2)

    def test_three_level_composition(self):
        assignment = CoreAssignment(
            path=("a", "b", "c"),
            levels=((3, 1), (1, 0), (0,)),
        )
        # port 0 -> level2 wire 0 -> level1 maps wire... level1[0] = 1
        # -> level0[1] = 1.
        assert assignment.top_wire(0) == 1

    def test_level_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreAssignment(path=("a",), levels=((0,), (1,)))

    def test_duplicate_wires_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreAssignment(path=("a",), levels=((1, 1),))

    def test_empty_path_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreAssignment(path=(), levels=())


class TestSessionPlan:
    def test_disjoint_sessions_validate(self):
        session = SessionPlan(assignments=(
            flat_assignment("a", (0, 1)),
            flat_assignment("b", (2,)),
        ))
        session.validate(bus_width=3)

    def test_overlap_between_cores_rejected(self):
        session = SessionPlan(assignments=(
            flat_assignment("a", (0, 1)),
            flat_assignment("b", (1,)),
        ))
        with pytest.raises(ConfigurationError, match="clash"):
            session.validate(bus_width=3)

    def test_shared_footprint_within_hierarchy_allowed(self):
        session = SessionPlan(assignments=(
            CoreAssignment(path=("h", "x"), levels=((0, 1), (0,))),
            CoreAssignment(path=("h", "y"), levels=((0, 1), (1,))),
        ))
        session.validate(bus_width=2)

    def test_out_of_range_wire_rejected(self):
        session = SessionPlan(assignments=(flat_assignment("a", (5,)),))
        with pytest.raises(ConfigurationError, match="outside bus"):
            session.validate(bus_width=3)

    def test_tested_names(self):
        session = SessionPlan(assignments=(
            flat_assignment("a", (0,)),
            CoreAssignment(path=("h", "x"), levels=((1,), (0,))),
        ))
        assert session.tested_names() == ["a", "h/x"]


class TestPlanBuilder:
    def test_builder_round_trip(self):
        plan = (PlanBuilder()
                .add_session(flat_assignment("a", (0,)), label="one")
                .add_session(flat_assignment("b", (1,)), label="two")
                .build("p"))
        assert isinstance(plan, TestPlan)
        assert len(plan.sessions) == 2
        plan.validate(bus_width=2)

    def test_empty_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            PlanBuilder().build().validate(bus_width=2)
