"""Fail-fast boundary tests for the static verifier.

The verifier is wired at three entry points -- executor pre-dispatch,
the runner's store append, and the model evaluation path -- plus the
``repro verify`` CLI verb.  These tests corrupt one artifact per
boundary and assert the run dies with a :class:`VerificationError`
when ``verify`` is on, and proceeds when it is off.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import Experiment
from repro.api.architectures import DesignedTam
from repro.api.results import RunConfig
from repro.api.runner import run_many
from repro.campaign.cli import main
from repro.campaign.hashing import config_hash
from repro.campaign.store import CampaignStore, make_record
from repro.errors import VerificationError
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.soc.core import CoreTestParams, TestMethod
from repro.soc.library import small_soc
from repro.core.tam import CasBusTamDesign


def _scan(name, flops, patterns, max_wires):
    return CoreTestParams(name=name, method=TestMethod.SCAN, flops=flops,
                          patterns=patterns, max_wires=max_wires)


CORES = (_scan("c1", 35, 24, 2), _scan("c2", 20, 12, 2))


def _corrupted_system():
    # A wrapper whose declared chain layout no longer tiles its
    # boundary cells (DES002).  Only the kernel program builder and the
    # verifier read ``chain_layout``, so the legacy backend can still
    # execute this system -- the corruption is visible to the static
    # checker alone.
    system = build_system(small_soc())
    for node in system.nodes:
        if node.wrapper is not None:
            node.wrapper.chain_layout = lambda: [((0,), (0,))]
            return system
    raise AssertionError("no scan node in system")


def _plan():
    return CasBusTamDesign.for_soc(small_soc()).executable_plan()


# -- executor pre-dispatch -------------------------------------------------


def test_executor_rejects_corrupted_system():
    executor = SessionExecutor(_corrupted_system(), verify=True)
    with pytest.raises(VerificationError) as excinfo:
        executor.run_plan(_plan())
    assert "DES002" in str(excinfo.value)


def test_executor_verify_off_runs_corrupted_system():
    executor = SessionExecutor(
        _corrupted_system(), backend="legacy", verify=False
    )
    result = executor.run_plan(_plan())
    assert result.passed


def test_facade_forwards_verify_flag():
    # The facade's default path verifies and passes on a healthy SoC.
    result = CasBusTamDesign.for_soc(small_soc()).run(verify=True)
    assert result.passed


# -- model evaluation path -------------------------------------------------


@pytest.fixture
def lying_scheduler(monkeypatch):
    original = DesignedTam.schedule

    def lying(self, config):
        outcome = original(self, config)
        if outcome is None:
            return None
        return dataclasses.replace(
            outcome, test_cycles=outcome.test_cycles + 1
        )

    monkeypatch.setattr(DesignedTam, "schedule", lying)


def test_model_path_rejects_lying_outcome(lying_scheduler):
    experiment = Experiment(list(CORES), RunConfig(bus_width=4, simulate=False))
    with pytest.raises(VerificationError) as excinfo:
        experiment.run()
    assert "OUT001" in str(excinfo.value)


def test_model_path_verify_off_accepts_lying_outcome(lying_scheduler):
    experiment = Experiment(
        list(CORES), RunConfig(bus_width=4, simulate=False)
    ).with_verify(False)
    result = experiment.run()
    assert result.test_cycles > 0


def test_with_verify_is_identity_neutral():
    experiment = Experiment(list(CORES), RunConfig(bus_width=4, simulate=False))
    assert (config_hash(experiment.with_verify(True))
            == config_hash(experiment.with_verify(False)))
    assert experiment.with_verify(False).config.verify is False


# -- runner store append ---------------------------------------------------


@pytest.fixture
def corrupting_make_record(monkeypatch):
    import repro.campaign.store as store_module

    real = store_module.make_record

    def corrupted(*args, **kwargs):
        record = real(*args, **kwargs)
        record["hash"] = "bad"
        return record

    monkeypatch.setattr(store_module, "make_record", corrupted)


def test_runner_rejects_corrupted_record(corrupting_make_record, tmp_path):
    store = CampaignStore(tmp_path / "store.jsonl")
    experiment = Experiment(list(CORES), RunConfig(bus_width=4, simulate=False))
    with pytest.raises(VerificationError) as excinfo:
        run_many([experiment], store=store, parallel=False)
    assert "REC002" in str(excinfo.value)
    assert list(store.records()) == []


def test_runner_verify_off_appends_corrupted_record(
        corrupting_make_record, tmp_path):
    store = CampaignStore(tmp_path / "store.jsonl")
    experiment = Experiment(
        list(CORES), RunConfig(bus_width=4, simulate=False, verify=False)
    )
    run_many([experiment], store=store, parallel=False)
    (record,) = store.records()
    assert record["hash"] == "bad"


# -- the CLI verb ----------------------------------------------------------


def _good_store(tmp_path, name="good.jsonl"):
    experiment = Experiment(list(CORES), RunConfig(bus_width=4, simulate=False))
    result = experiment.run()
    store = CampaignStore(tmp_path / name)
    store.append(make_record(experiment, result,
                             config_hash=config_hash(experiment)))
    return store


def test_cli_verify_clean_store(tmp_path, capsys):
    store = _good_store(tmp_path)
    assert main(["verify", str(store.path)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_cli_verify_corrupted_store(tmp_path, capsys):
    store = _good_store(tmp_path)
    record = store.latest().popitem()[1]
    record["result"]["passed"] = True  # model results never carry pass
    store.path.write_text(json.dumps(record) + "\n")
    assert main(["verify", str(store.path)]) == 1
    assert "REC005" in capsys.readouterr().out


def test_cli_verify_strict_promotes_warnings(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.touch()
    assert main(["verify", str(empty)]) == 0
    assert main(["verify", "--strict", str(empty)]) == 1
    assert "REC008" in capsys.readouterr().out


def test_cli_verify_json_output(tmp_path, capsys):
    store = _good_store(tmp_path)
    assert main(["verify", "--json", str(store.path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["checked"] >= 1
    assert payload["diagnostics"] == []


def test_cli_run_no_verify_flag(tmp_path):
    # --no-verify threads through to RunConfig on the run verb.
    assert main([
        "run", "small", "--no-verify", "--model-only",
        "--store", str(tmp_path / "run.jsonl"),
    ]) == 0
