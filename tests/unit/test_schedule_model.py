"""Unit and property tests for the shared scheduling cost model."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.soc.core import CoreTestParams, TestMethod
from repro.soc.itc02 import d695_like, random_test_params
from repro.schedule.model import (
    CostModel,
    TamProblem,
    cost_model,
    two_stage_config_cycles,
)
from repro.schedule.scheduler import (
    lower_bound,
    schedule_exhaustive,
    session_config_cost,
)
from repro.schedule.timing import (
    cas_config_bits,
    config_cycles,
    core_test_cycles,
)


def _scan(name, flops, patterns, max_wires):
    return CoreTestParams(name=name, method=TestMethod.SCAN, flops=flops,
                          patterns=patterns, max_wires=max_wires)


def _bist(name, cycles):
    return CoreTestParams(name=name, method=TestMethod.BIST, flops=0,
                          patterns=0, max_wires=1, fixed_cycles=cycles)


class TestTamProblem:
    def test_of_normalises_to_tuple(self):
        problem = TamProblem.of(d695_like(), 8)
        assert isinstance(problem.cores, tuple)
        assert problem.bus_width == 8
        assert problem.cas_policy == "all"

    def test_with_width(self):
        problem = TamProblem.of(d695_like(), 8)
        wider = problem.with_width(16)
        assert wider.bus_width == 16
        assert wider.cores == problem.cores
        assert problem.bus_width == 8  # immutable

    def test_bad_width_rejected(self):
        with pytest.raises(ScheduleError, match="bus width"):
            TamProblem.of(d695_like(), 0)


class TestNormalisation:
    def test_useful_wires_caps_at_max(self):
        core = _scan("c", 100, 10, 4)
        assert CostModel.useful_wires(core, 8) == 4
        assert CostModel.useful_wires(core, 2) == 2
        assert CostModel.useful_wires(core, 0) == 1  # never below one

    def test_effective_wires(self):
        core = _scan("c", 100, 10, 4)
        assert CostModel.effective_wires(core, 8) == 4
        assert CostModel.effective_wires(core, 3) == 3

    def test_port_width_capped_by_bus(self):
        model = cost_model([_scan("c", 100, 10, 16)], 8)
        assert model.port_width(model.problem.cores[0]) == 8


class TestCostAccounting:
    def test_core_cycles_matches_timing(self):
        model = cost_model(d695_like(), 16)
        for core in model.problem.cores:
            for wires in (1, 2, 7, 16):
                assert model.core_cycles(core, wires) == \
                    core_test_cycles(core, wires)

    def test_cas_bits_matches_per_core_sum(self):
        cores = d695_like()
        model = cost_model(cores, 16)
        expected = sum(
            cas_config_bits(16, min(core.max_wires, 16), "all")
            for core in cores
        )
        assert model.cas_bits == expected
        assert model.config_bits == expected

    def test_session_config_matches_legacy_helper(self):
        cores = d695_like()
        model = cost_model(cores, 16)
        for tested in (cores[:1], cores[:4], cores):
            assert model.session_config_cycles(len(tested)) == \
                session_config_cost(cores, 16, tested)

    def test_boundary_config_is_one_wir_session(self):
        model = cost_model(d695_like(), 8)
        assert model.boundary_config_cycles() == \
            model.session_config_cycles(1)

    def test_two_stage_formula(self):
        # Stage A (bits+1) plus stage B (bits + 2 WIRs + 1).
        assert two_stage_config_cycles(10, 2) == 11 + 17
        # The executor skips stage A when nothing changes mode.
        assert two_stage_config_cycles(10, 0, stage_a_always=False) == 11
        assert two_stage_config_cycles(10, 0) == 11 + 11
        # Exact WIR bits override the per-change width.
        assert two_stage_config_cycles(10, 2, wir_bits=7) == \
            config_cycles(10) + config_cycles(17)


class TestOptimalSession:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 4), st.integers(1, 6))
    def test_matches_enumeration(self, seed, num_cores, width):
        """The parametric split equals brute-force enumeration."""
        cores = random_test_params(seed, num_cores=num_cores)
        model = cost_model(cores, width)
        session = model.optimal_session(cores)
        if len(cores) > width:
            assert session is None
            return
        assert session is not None
        options = [
            range(1, min(core.max_wires, width) + 1) for core in cores
        ]
        best = min(
            (
                max(core_test_cycles(core, wires)
                    for core, wires in zip(cores, split))
                for split in itertools.product(*options)
                if sum(split) <= width
            ),
        )
        assert session.cycles == best
        assert session.wires_used <= width

    def test_infeasible_group_returns_none(self):
        model = cost_model([_scan(f"c{i}", 10, 2, 1) for i in range(4)], 2)
        assert model.optimal_session(model.problem.cores) is None

    def test_bist_core_single_wire(self):
        model = cost_model([_bist("b", 500)], 4)
        session = model.optimal_session(model.problem.cores)
        assert session is not None
        assert session.cycles == 500
        assert session.entries[0].wires == 1


class TestScheduleFromGroups:
    def test_charges_per_session(self):
        cores = d695_like()[:4]
        model = cost_model(cores, 8)
        schedule = model.schedule_from_groups(
            [cores[:2], cores[2:]], charge_config=True
        )
        assert schedule is not None
        assert schedule.config_cycles_total == \
            model.session_config_cycles(2) * 2
        free = model.schedule_from_groups(
            [cores[:2], cores[2:]], charge_config=False
        )
        assert free is not None
        assert free.config_cycles_total == 0

    def test_infeasible_partition_returns_none(self):
        cores = [_scan(f"c{i}", 10, 2, 1) for i in range(4)]
        model = cost_model(cores, 2)
        assert model.schedule_from_groups([cores]) is None


class TestLowerBoundSoundness:
    def test_seed_counterexample_now_sound(self):
        """Narrow allocations used to beat the old work bound."""
        cores = [_scan(f"c{i}", 5, 10, 4) for i in range(2)]
        best = schedule_exhaustive(cores, 4, charge_config=False)
        assert lower_bound(cores, 4) <= best.test_cycles

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 5), st.integers(1, 8))
    def test_optimal_never_beats_bound(self, seed, num_cores, width):
        cores = random_test_params(seed, num_cores=num_cores)
        best = schedule_exhaustive(cores, width, charge_config=False)
        assert best.test_cycles >= lower_bound(cores, width)

    def test_preemptive_pays_the_unload_tail(self):
        """Regression: a core finishing mid-segment must still shift
        its final unload out (it used to be marked done without it)."""
        from repro.schedule.preemptive import schedule_preemptive
        from repro.soc.itc02 import random_test_params

        cores = random_test_params(2105, num_cores=4)
        schedule = schedule_preemptive(cores, 2, charge_config=False)
        assert schedule.test_cycles >= lower_bound(cores, 2)

    def test_bound_is_useful_not_trivial(self):
        cores = d695_like()
        assert lower_bound(cores, 16) > 0
        # Within 25% of what the best known schedule achieves.
        from repro.schedule.optimize import optimize_anneal

        outcome = optimize_anneal(cores, 16, widths=(16,),
                                  charge_config=False)
        assert outcome.test_cycles <= 1.25 * lower_bound(cores, 16)
