"""Unit and property tests for the scheduling layer."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.soc.core import CoreTestParams, TestMethod
from repro.soc.itc02 import d695_like, random_test_params
from repro.schedule.assign import assign_wires
from repro.schedule.balance import (
    balanced_lengths,
    partition_lpt,
    partition_optimal,
)
from repro.schedule.reconfig import compare_reconfiguration, static_partition
from repro.schedule.scheduler import (
    lower_bound,
    schedule_exhaustive,
    schedule_greedy,
)
from repro.schedule.timing import (
    cas_config_bits,
    config_cycles,
    core_test_cycles,
    core_test_cycles_fixed_chains,
    scan_test_cycles,
)


def _scan(name, flops, patterns, max_wires):
    return CoreTestParams(name=name, method=TestMethod.SCAN, flops=flops,
                          patterns=patterns, max_wires=max_wires)


def _bist(name, cycles):
    return CoreTestParams(name=name, method=TestMethod.BIST, flops=0,
                          patterns=0, max_wires=1, fixed_cycles=cycles)


class TestTimingFormulas:
    def test_scan_formula(self):
        # (L+1)*V + L with L=10, V=5.
        assert scan_test_cycles(10, 5) == 65

    def test_zero_patterns_zero_time(self):
        assert scan_test_cycles(10, 0) == 0

    def test_more_wires_never_hurt(self):
        core = _scan("c", 100, 10, 8)
        times = [core_test_cycles(core, w) for w in range(1, 9)]
        assert times == sorted(times, reverse=True)

    def test_wires_capped_by_max(self):
        core = _scan("c", 100, 10, 2)
        assert core_test_cycles(core, 4) == core_test_cycles(core, 2)

    def test_bist_time_wire_independent(self):
        core = _bist("b", 500)
        assert core_test_cycles(core, 1) == 500
        assert core_test_cycles(core, 7) == 500

    def test_fixed_chains_worse_or_equal(self):
        # 3 frozen chains (30, 5, 5) on 2 wires vs rebalanced 40 on 2.
        frozen = core_test_cycles_fixed_chains((30, 5, 5), 2, 10)
        balanced = core_test_cycles(_scan("c", 40, 10, 2), 2)
        assert frozen >= balanced

    def test_cas_config_bits_matches_table1(self):
        assert cas_config_bits(4, 2) == 4
        assert cas_config_bits(8, 4) == 11

    def test_config_cycles(self):
        assert config_cycles(12) == 13

    def test_negative_rejected(self):
        with pytest.raises(ScheduleError):
            scan_test_cycles(-1, 1)
        with pytest.raises(ScheduleError):
            config_cycles(-1)
        with pytest.raises(ScheduleError):
            core_test_cycles(_scan("c", 10, 5, 2), 0)


class TestBalance:
    def test_balanced_lengths(self):
        assert balanced_lengths(10, 3) == [4, 3, 3]
        assert balanced_lengths(9, 3) == [3, 3, 3]
        assert balanced_lengths(0, 2) == [0, 0]

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 500), st.integers(1, 8))
    def test_balanced_is_optimal(self, total, wires):
        lengths = balanced_lengths(total, wires)
        assert sum(lengths) == total
        assert max(lengths) == math.ceil(total / wires) if total else True
        assert max(lengths) - min(lengths) <= 1

    def test_lpt_known_case(self):
        # The textbook LPT counterexample: greedy lands on 14 while the
        # optimum {7,6} / {5,4,3} achieves 13.
        partition = partition_lpt((7, 6, 5, 4, 3), 2)
        assert partition.makespan == 14
        assert partition_optimal((7, 6, 5, 4, 3), 2).makespan == 13

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(1, 30), min_size=1, max_size=8),
        st.integers(1, 4),
    )
    def test_lpt_vs_optimal_bound(self, lengths, wires):
        lpt = partition_lpt(lengths, wires)
        best = partition_optimal(lengths, wires)
        assert best.makespan <= lpt.makespan
        # LPT's 4/3 guarantee.
        assert lpt.makespan <= best.makespan * (4 / 3 - 1 / (3 * wires)) + 1

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(1, 30), min_size=1, max_size=6),
        st.integers(1, 4),
    )
    def test_partitions_preserve_items(self, lengths, wires):
        for partition in (partition_lpt(lengths, wires),
                          partition_optimal(lengths, wires)):
            seen = sorted(i for group in partition.groups for i in group)
            assert seen == list(range(len(lengths)))
            for wire, group in enumerate(partition.groups):
                assert partition.loads[wire] == sum(
                    lengths[i] for i in group
                )

    def test_exact_solver_guard(self):
        with pytest.raises(ScheduleError, match="exact-solver limit"):
            partition_optimal([1] * 20, 2)


class TestAssign:
    def test_contiguous_disjoint(self):
        wires = assign_wires([("a", 2), ("b", 1)], 4)
        assert wires == {"a": (0, 1), "b": (2,)}

    def test_overflow_rejected(self):
        with pytest.raises(ScheduleError, match="needs 5 wires"):
            assign_wires([("a", 3), ("b", 2)], 4)

    def test_zero_count_rejected(self):
        with pytest.raises(ScheduleError):
            assign_wires([("a", 0)], 4)


class TestScheduler:
    def test_wire_constraint_respected(self):
        cores = [_scan(f"c{i}", 50 + i, 10, 4) for i in range(6)]
        schedule = schedule_greedy(cores, 4)
        for session in schedule.sessions:
            assert session.wires_used <= 4

    def test_all_cores_scheduled_once(self):
        cores = [_scan(f"c{i}", 40, 8, 2) for i in range(5)]
        schedule = schedule_greedy(cores, 4)
        names = [n for s in schedule.sessions for n in s.names()]
        assert sorted(names) == sorted(c.name for c in cores)

    def test_greedy_close_to_exhaustive(self):
        cores = [_scan("a", 100, 20, 4), _scan("b", 60, 10, 2),
                 _scan("c", 30, 30, 1), _bist("d", 400)]
        greedy = schedule_greedy(cores, 4, charge_config=False)
        best = schedule_exhaustive(cores, 4, charge_config=False)
        assert best.test_cycles <= greedy.test_cycles
        assert greedy.test_cycles <= 2 * best.test_cycles

    def test_greedy_beats_lower_bound_sanity(self):
        cores = d695_like()
        schedule = schedule_greedy(cores, 16, charge_config=False)
        assert schedule.test_cycles >= lower_bound(cores, 16)

    def test_wider_bus_not_slower(self):
        cores = d695_like()
        times = [
            schedule_greedy(cores, n, charge_config=False).test_cycles
            for n in (4, 8, 16, 32)
        ]
        assert times == sorted(times, reverse=True)

    def test_exact_wires_mode(self):
        cores = [_scan("a", 30, 5, 3), _scan("b", 20, 5, 2)]
        schedule = schedule_greedy(cores, 4, exact_wires=True)
        for session in schedule.sessions:
            for entry in session.entries:
                assert entry.wires == entry.params.max_wires

    def test_exact_wires_overflow_rejected(self):
        with pytest.raises(ScheduleError, match="exceeds bus"):
            schedule_greedy([_scan("a", 30, 5, 8)], 4, exact_wires=True)

    def test_config_overhead_charged(self):
        cores = [_scan("a", 30, 5, 2), _scan("b", 20, 5, 2)]
        with_config = schedule_greedy(cores, 4, charge_config=True)
        without = schedule_greedy(cores, 4, charge_config=False)
        assert with_config.total_cycles > without.total_cycles
        assert with_config.config_cycles_total > 0

    def test_exhaustive_guard(self):
        cores = [_scan(f"c{i}", 10, 2, 1) for i in range(9)]
        with pytest.raises(ScheduleError, match="exhaustive limit"):
            schedule_exhaustive(cores, 2)

    def test_describe_mentions_sessions(self):
        schedule = schedule_greedy([_scan("a", 30, 5, 2)], 4)
        assert "sessions" in schedule.describe()

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 16))
    def test_greedy_schedules_everything_property(self, seed, n):
        cores = random_test_params(seed, num_cores=6)
        schedule = schedule_greedy(cores, n, charge_config=False)
        names = sorted(
            name for s in schedule.sessions for name in s.names()
        )
        assert names == sorted(c.name for c in cores)
        for session in schedule.sessions:
            assert session.wires_used <= n


class TestReconfig:
    def test_reconfiguration_helps_or_ties(self):
        cores = d695_like()
        comparison = compare_reconfiguration(cores, 8)
        assert comparison.speedup >= 1.0

    def test_static_partition_structure(self):
        cores = [_scan(f"c{i}", 50, 10, 4) for i in range(6)]
        plan = static_partition(cores, 4)
        assert sum(plan.wires_per_group) == 4
        placed = sorted(
            core.name for group in plan.groups for core in group
        )
        assert placed == sorted(core.name for core in cores)

    def test_config_overhead_fraction_small(self):
        cores = d695_like()
        comparison = compare_reconfiguration(cores, 16)
        # The paper: configuration happens once per session and stays
        # small against test time (the preemptive schedule pays a pass
        # per completion boundary, still well under a tenth).
        assert comparison.config_overhead_fraction < 0.08
