"""Unit tests for the SoC test controller program generator."""

from __future__ import annotations

import pytest

from repro import values as lv
from repro.errors import ConfigurationError
from repro.core.bus import CasChain
from repro.core.cas import CoreAccessSwitch
from repro.core.controller import ControlCycle, SoCTestController
from repro.core.instruction import InstructionSet


class TestProgramConstruction:
    def test_configuration_phase_length(self):
        ctl = SoCTestController(4)
        program = ctl.new_program()
        ctl.add_configuration(program, [1, 0, 1])
        assert len(program) == 4  # 3 shifts + 1 update
        assert program.phase_lengths["configuration"] == 4

    def test_configuration_drives_wire_zero_only(self):
        ctl = SoCTestController(3)
        program = ctl.new_program()
        ctl.add_configuration(program, [1, 0])
        shift_cycles = [c for c in program if c.config]
        assert [c.bus_in[0] for c in shift_cycles] == [lv.ONE, lv.ZERO]
        for cycle in shift_cycles:
            assert cycle.bus_in[1:] == (lv.ZERO, lv.ZERO)

    def test_update_cycle_is_last(self):
        ctl = SoCTestController(2)
        program = ctl.new_program()
        ctl.add_configuration(program, [1])
        last = program.cycles[-1]
        assert last.update and not last.config

    def test_bad_bit_rejected(self):
        ctl = SoCTestController(2)
        program = ctl.new_program()
        with pytest.raises(ConfigurationError):
            ctl.add_configuration(program, [2])

    def test_test_cycles(self):
        ctl = SoCTestController(2)
        program = ctl.new_program()
        ctl.add_test_cycles(program, [(lv.ONE, lv.ZERO), (lv.ZERO, lv.ONE)])
        assert len(program) == 2
        assert all(not c.config and not c.update for c in program)

    def test_test_cycle_width_checked(self):
        ctl = SoCTestController(3)
        program = ctl.new_program()
        with pytest.raises(ConfigurationError):
            ctl.add_test_cycles(program, [(lv.ONE,)])

    def test_idle_cycles(self):
        ctl = SoCTestController(2)
        program = ctl.new_program()
        ctl.add_idle_cycles(program, 5)
        assert len(program) == 5
        assert all(c.bus_in == (lv.ZERO, lv.ZERO) for c in program)

    def test_program_rejects_wrong_width_cycle(self):
        ctl = SoCTestController(3)
        program = ctl.new_program()
        with pytest.raises(ConfigurationError):
            program.append(
                ControlCycle(config=False, update=False, bus_in=(lv.ZERO,)),
                "x",
            )

    def test_zero_width_controller_rejected(self):
        with pytest.raises(ConfigurationError):
            SoCTestController(0)


class TestControllerDrivesChain:
    def test_program_configures_chain(self):
        """Integration: a controller configuration program, executed
        cycle by cycle against a CAS chain, loads the intended codes."""
        iset = InstructionSet(4, 2)
        cases = [CoreAccessSwitch(iset, name=f"c{i}") for i in range(3)]
        chain = CasChain(cases)
        codes = [2, 7, 0]
        ctl = SoCTestController(4)
        program = ctl.new_program()
        ctl.add_configuration(program, chain.config_bitstream(codes))
        for cycle in program:
            if cycle.config:
                chain.shift_cycle(1 if cycle.bus_in[0] == lv.ONE else 0)
            if cycle.update:
                chain.update_all()
        assert [cas.active_code for cas in cases] == codes
