"""The diagnosis engine: dictionaries, ranking, probing, records."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.api.experiment import Experiment
from repro.diagnose.engine import (
    CANDIDATE_CLOUD,
    CANDIDATE_TAM_WIRE,
    CANDIDATE_WRAPPER,
    Candidate,
    DiagnosisEngine,
    DiagnosisResult,
    decode_scan_syndrome,
    diagnose_soc,
    external_signature,
    fault_dictionary,
)
from repro.diagnose.inject import DefectScenario, random_scenario
from repro.diagnose.records import (
    diagnosis_hash,
    is_diagnosis_record,
    make_diagnosis_record,
    result_from_record,
)
from repro.diagnose.retest import minimal_retest_plan, run_retest
from repro.soc.core import CoreSpec
from repro.soc.library import fig1_soc, small_soc
from repro.soc.soc import SocSpec


def _wide_soc() -> SocSpec:
    """Single-chain cores on a wide bus: disjoint wire probes exist."""
    soc = SocSpec(
        name="wide",
        bus_width=4,
        cores=(
            CoreSpec.scan("left", seed=21, num_ffs=6, num_chains=1,
                          num_pis=2, num_pos=2, atpg_max_patterns=8),
            CoreSpec.scan("right", seed=22, num_ffs=6, num_chains=1,
                          num_pis=2, num_pos=2, atpg_max_patterns=8),
        ),
    )
    soc.validate()
    return soc


class TestFaultDictionary:
    def test_scan_dictionary_keys_are_disjoint_fault_classes(self):
        spec = small_soc().core_named("alpha")
        entries = fault_dictionary(spec)
        assert entries
        seen = set()
        for entry in entries:
            assert entry.faults
            for fault in entry.faults:
                assert fault not in seen
                seen.add(fault)
        keys = [entry.key for entry in entries]
        assert len(keys) == len(set(keys))

    def test_bist_and_external_dictionaries(self):
        soc = fig1_soc()
        for name in ("core3", "core4"):
            entries = fault_dictionary(soc.core_named(name))
            assert entries
            for entry in entries:
                assert isinstance(entry.key, int) and entry.key != 0

    def test_external_signature_deterministic(self):
        spec = fig1_soc().core_named("core4")
        assert (external_signature(spec, None)
                == external_signature(spec, None))
        assert (external_signature(spec, (5, 1))
                == external_signature(spec, (5, 1)))

    def test_dictionary_is_cached(self):
        spec = small_soc().core_named("beta")
        assert fault_dictionary(spec) is fault_dictionary(spec)

    def test_hierarchical_spec_rejected(self):
        spec = fig1_soc().core_named("core5")
        with pytest.raises(ConfigurationError):
            fault_dictionary(spec)


class TestSyndromeDecoding:
    def test_observed_syndrome_decodes_to_dictionary_key(self):
        """The end-to-end identity the localisation rests on: the
        syndrome the executor captures for an injected fault decodes to
        exactly that fault's dictionary prediction."""
        soc = small_soc()
        scenario = random_scenario(soc, 4)
        assert scenario.core is not None
        spec = soc.core_named(scenario.core)
        from repro.core.tam import CasBusTamDesign
        from repro.diagnose.inject import build_faulty_system
        from repro.sim.session import SessionExecutor

        system = build_faulty_system(soc, scenario)
        executor = SessionExecutor(system, capture_syndromes=True)
        plan = CasBusTamDesign.for_soc(soc).executable_plan()
        program = executor.run_plan(plan)
        observed = next(
            r.syndrome for r in program.core_results()
            if r.name == scenario.core
        )
        assert observed is not None
        decoded = decode_scan_syndrome(spec, observed)
        match = next(
            entry for entry in fault_dictionary(spec)
            if scenario.fault in entry.faults
        )
        assert decoded == match.key


class TestDiagnosis:
    def test_clean_soc_diagnoses_clean(self):
        result = diagnose_soc(small_soc())
        assert result.is_clean
        assert result.screen_passed
        assert result.candidates == ()
        assert result.diagnosis_cycles == 0
        assert result.localized_core is None

    def test_stuck_at_localised_with_exact_match(self):
        soc = small_soc()
        scenario = random_scenario(soc, 3)
        result = diagnose_soc(soc, scenario)
        assert result.failing_cores == (scenario.core,)
        assert result.localized_core == scenario.core
        assert result.scenario_rank() == 1
        top = result.candidates[0]
        assert top.kind == CANDIDATE_CLOUD
        assert top.score == 1.0
        assert scenario.fault in top.faults

    def test_open_wire_binary_search(self):
        soc = _wide_soc()
        # The greedy schedule places the two P=1 cores on wires 0 and 1.
        for wire in (0, 1):
            scenario = DefectScenario.open_wire(wire, 1)
            result = diagnose_soc(soc, scenario)
            wires = [c.wire for c in result.candidates
                     if c.kind == CANDIDATE_TAM_WIRE]
            assert wires == [wire], f"wire {wire} not localised"
            assert result.scenario_rank() == 1

    def test_open_wire_outside_every_footprint_is_benign(self):
        soc = _wide_soc()
        result = diagnose_soc(soc, DefectScenario.open_wire(3, 1))
        assert result.is_clean  # no test traffic crosses the wire

    def test_bridge_localised_to_one_end(self):
        soc = _wide_soc()
        scenario = DefectScenario.bridge(0, 3)
        result = diagnose_soc(soc, scenario)
        assert result.scenario_rank() is not None
        top = result.candidates[0]
        assert top.kind == CANDIDATE_TAM_WIRE
        assert top.wire in scenario.wires

    def test_wire_blame_spares_sibling_probes(self):
        """Once a broken wire is identified, other failing cores whose
        footprint touches it are explained without extra sessions."""
        soc = fig1_soc()
        result = diagnose_soc(soc, DefectScenario.open_wire(0, 1))
        assert any(
            c.kind == CANDIDATE_TAM_WIRE and c.wire == 0
            for c in result.candidates
        )
        # Screening + a handful of probes, not one per failing core.
        assert result.probe_sessions < 2 * len(result.failing_cores)

    def test_dead_cell_flags_core_not_exact_fault(self):
        soc = small_soc()
        scenario = DefectScenario.dead_cell("alpha", 1, 1)
        result = diagnose_soc(soc, scenario)
        assert result.failing_cores == ("alpha",)
        assert any(
            c.kind == CANDIDATE_WRAPPER and c.core == "alpha"
            for c in result.candidates
        )
        # No cloud candidate claims an exact match for a chain defect.
        assert all(
            c.score < 1.0 for c in result.candidates
            if c.kind == CANDIDATE_CLOUD
        )

    def test_diagnosis_cheaper_than_full_retest_on_fig1(self):
        soc = fig1_soc()
        scenario = random_scenario(soc, 11)
        result = diagnose_soc(soc, scenario)
        assert result.diagnosis_cycles < result.full_retest_cycles
        assert result.planned_diagnosis_cycles > 0

    def test_backends_agree(self):
        soc = fig1_soc()
        scenario = random_scenario(soc, 9)
        legacy = diagnose_soc(soc, scenario, backend="legacy")
        kernel = diagnose_soc(soc, scenario, backend="kernel")
        legacy_dict = legacy.to_dict()
        kernel_dict = kernel.to_dict()
        legacy_dict.pop("backend")
        kernel_dict.pop("backend")
        assert legacy_dict == kernel_dict

    def test_result_round_trip(self):
        soc = small_soc()
        result = diagnose_soc(soc, random_scenario(soc, 1))
        rebuilt = DiagnosisResult.from_dict(result.to_dict())
        assert rebuilt == result

    def test_describe(self):
        soc = small_soc()
        clean = diagnose_soc(soc)
        assert "clean" in clean.describe()
        dirty = diagnose_soc(soc, random_scenario(soc, 1))
        assert "#1" in dirty.describe()

    def test_engine_rejects_invalid_soc(self):
        with pytest.raises(ConfigurationError):
            DiagnosisEngine(SocSpec(name="x", bus_width=0, cores=()))


class TestCandidate:
    def test_round_trip(self):
        candidate = Candidate(
            kind=CANDIDATE_CLOUD, core="alpha", score=0.5,
            faults=((3, 1), (7, 0)),
        )
        assert Candidate.from_dict(candidate.to_dict()) == candidate

    def test_contains_fault(self):
        candidate = Candidate(
            kind=CANDIDATE_CLOUD, core="a", score=1.0, faults=((3, 1),),
        )
        assert candidate.contains_fault(3, 1)
        assert not candidate.contains_fault(3, 0)
        wire = Candidate(kind=CANDIDATE_TAM_WIRE, core="a", score=1.0,
                         wire=2)
        assert not wire.contains_fault(3, 1)

    def test_describe_truncates_large_classes(self):
        candidate = Candidate(
            kind=CANDIDATE_CLOUD, core="a", score=1.0,
            faults=tuple((n, 0) for n in range(10)),
        )
        assert "+7" in candidate.describe()


class TestRetest:
    def test_minimal_plan_covers_only_suspects(self):
        soc = fig1_soc()
        retest = minimal_retest_plan(soc, ("core2", "core6"))
        tested = {
            assignment.name
            for session in retest.plan.sessions
            for assignment in session.assignments
        }
        assert tested == {"core2", "core6"}
        assert retest.predicted_total_cycles > 0

    def test_nested_suspect(self):
        soc = fig1_soc()
        retest = minimal_retest_plan(soc, ("core5/core5a",))
        assignment = retest.plan.sessions[0].assignments[0]
        assert assignment.path == ("core5", "core5a")

    def test_retest_plan_executes(self):
        soc = fig1_soc()
        retest = minimal_retest_plan(soc, ("core2",))
        program = run_retest(soc, retest)
        assert program.passed
        # A repaired (clean) instance passes; the defective one fails.
        scenario = random_scenario(soc, 9)
        if scenario.core == "core2":
            defective = run_retest(soc, retest, scenario=scenario)
            assert not defective.passed

    def test_retest_cheaper_than_full_program(self):
        soc = fig1_soc()
        from repro.core.tam import CasBusTamDesign
        from repro.sim.session import SessionExecutor
        from repro.sim.system import build_system

        tam = CasBusTamDesign.for_soc(soc)
        full = SessionExecutor(build_system(soc)).run_plan(
            tam.executable_plan()
        )
        retest = minimal_retest_plan(soc, ("core6",))
        program = run_retest(soc, retest)
        assert program.total_cycles < full.total_cycles

    def test_empty_suspects_error(self):
        with pytest.raises(ConfigurationError):
            minimal_retest_plan(fig1_soc(), ())

    def test_deduplicates_suspects(self):
        retest = minimal_retest_plan(fig1_soc(), ("core2", "core2"))
        assert retest.cores == ("core2",)


class TestRecords:
    def test_record_shape_and_round_trip(self):
        soc = small_soc()
        experiment = Experiment(soc)
        scenario = random_scenario(soc, 2)
        result = experiment.diagnose(scenario)
        record = make_diagnosis_record(
            experiment, scenario, result, elapsed_s=0.1
        )
        assert is_diagnosis_record(record)
        assert record["hash"] == diagnosis_hash(experiment, scenario)
        assert result_from_record(record) == result

    def test_hash_distinguishes_scenarios_and_runs(self):
        soc = small_soc()
        experiment = Experiment(soc)
        hash_a = diagnosis_hash(experiment, random_scenario(soc, 1))
        hash_b = diagnosis_hash(experiment, random_scenario(soc, 2))
        assert hash_a != hash_b
        assert hash_a != experiment.config_hash()

    def test_plain_run_records_are_not_diagnosis_records(self):
        assert not is_diagnosis_record({"schema": 1, "hash": "x",
                                        "result": {}})


class TestExperimentDiagnose:
    def test_diagnose_through_the_builder(self):
        result = Experiment(small_soc()).diagnose(scenario_seed=1)
        assert result.scenario is not None
        assert result.localized_core == result.scenario.core

    def test_needs_simulatable_workload(self):
        with pytest.raises(ConfigurationError):
            Experiment("itc02-d695").diagnose()

    def test_needs_casbus(self):
        experiment = Experiment(small_soc()).with_architecture("mux-bus")
        with pytest.raises(ConfigurationError):
            experiment.diagnose()

    def test_bus_width_override_rejected(self):
        experiment = Experiment(small_soc()).with_bus_width(16)
        with pytest.raises(ConfigurationError):
            experiment.diagnose()
