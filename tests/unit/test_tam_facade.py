"""Unit tests for the CasBusTamDesign facade."""

from __future__ import annotations

import pytest

from repro.core.tam import CasBusTamDesign
from repro.core.vhdl import lint_vhdl
from repro.soc.core import CoreSpec
from repro.soc.library import fig1_soc, small_soc
from repro.soc.soc import SocSpec


@pytest.fixture(scope="module")
def fig1_tam():
    return CasBusTamDesign.for_soc(fig1_soc())


class TestHardwareGeneration:
    def test_one_cas_per_core_including_inner(self, fig1_tam):
        assert set(fig1_tam.cas_designs) == {
            "core1", "core2", "core3", "core4", "core5",
            "core5/core5a", "core5/core5b", "core6", "sysbus",
        }

    def test_inner_cas_uses_inner_bus_width(self, fig1_tam):
        inner = fig1_tam.cas_designs["core5/core5a"]
        assert inner.n == 2  # the inner bus, not the top-level one
        outer = fig1_tam.cas_designs["core1"]
        assert outer.n == 4

    def test_totals_aggregate(self, fig1_tam):
        assert fig1_tam.total_cas_cells == sum(
            d.area.cell_count for d in fig1_tam.cas_designs.values()
        )
        assert fig1_tam.total_config_bits == sum(
            d.k for d in fig1_tam.cas_designs.values()
        )

    def test_vhdl_bundle_deduplicates(self, fig1_tam):
        bundle = fig1_tam.vhdl_bundle()
        # Multiple cores share (4,1); the bundle keeps one file per
        # distinct (N, P).
        assert len(bundle) < len(fig1_tam.cas_designs)
        for name, text in bundle.items():
            assert name.endswith(".vhd")
            assert lint_vhdl(text).ok


class TestPlanning:
    def test_schedule_covers_all_cores(self, fig1_tam):
        schedule = fig1_tam.schedule()
        names = [n for s in schedule.sessions for n in s.names()]
        assert sorted(names) == sorted(
            c.name for c in fig1_tam.soc.cores
        )

    def test_executable_plan_reaches_inner_cores(self, fig1_tam):
        plan = fig1_tam.executable_plan()
        tested = [
            name for session in plan.sessions
            for name in session.tested_names()
        ]
        assert "core5/core5a" in tested
        assert "core5/core5b" in tested
        assert sorted(tested).count("core1") == 1

    def test_plan_validates_against_bus(self, fig1_tam):
        fig1_tam.executable_plan().validate(fig1_tam.soc.bus_width)

    def test_hierarchy_only_soc(self):
        inner = small_soc(bus_width=2)
        soc = SocSpec(
            name="only_hier", bus_width=2,
            cores=(CoreSpec.hierarchical("outer", inner=inner),),
        )
        soc.validate()
        tam = CasBusTamDesign.for_soc(soc)
        plan = tam.executable_plan()
        tested = [n for s in plan.sessions for n in s.tested_names()]
        assert sorted(tested) == ["outer/alpha", "outer/beta"]


class TestExecution:
    def test_run_small_soc(self):
        tam = CasBusTamDesign.for_soc(small_soc())
        result = tam.run()
        assert result.passed
        assert {c.name for c in result.core_results()} == {"alpha", "beta"}

    def test_run_with_fault(self):
        from repro.bist.engine import random_detectable_fault

        soc = small_soc()
        fault = random_detectable_fault(
            soc.core_named("beta").build_scannable(), seed=8
        )
        tam = CasBusTamDesign.for_soc(soc)
        result = tam.run(inject_faults={"beta": fault})
        by_name = {c.name: c for c in result.core_results()}
        assert by_name["alpha"].passed
        assert not by_name["beta"].passed
