"""Unit tests for covers (sums of products)."""

from __future__ import annotations

import pytest

from repro.logic.cover import Cover
from repro.logic.cube import Cube


class TestConstruction:
    def test_from_minterms_exact(self):
        cover = Cover.from_minterms([0, 3, 3], 2)
        assert len(cover) == 2
        assert cover.on_set() == {0, 3}

    def test_out_of_range_cube_rejected(self):
        with pytest.raises(ValueError):
            Cover(num_vars=2, cubes=(Cube.from_string("--1"),))

    def test_constants(self):
        false = Cover.constant(False, 3)
        true = Cover.constant(True, 3)
        assert false.is_constant_false()
        assert true.is_constant_true()
        assert false.on_set() == set()
        assert true.on_set() == set(range(8))


class TestEvaluation:
    def test_evaluate_matches_on_set(self):
        cover = Cover(num_vars=3, cubes=(Cube.from_string("1--"),
                                         Cube.from_string("-11")))
        on = cover.on_set()
        for point in range(8):
            assert cover.evaluate(point) == (point in on)

    def test_num_literals(self):
        cover = Cover(num_vars=3, cubes=(Cube.from_string("1--"),
                                         Cube.from_string("-11")))
        assert cover.num_literals() == 3

    def test_covers_minterms(self):
        cover = Cover.from_minterms([1, 2], 2)
        assert cover.covers_minterms([1, 2])
        assert not cover.covers_minterms([1, 3])

    def test_agrees_with(self):
        cover = Cover.from_minterms([1, 2], 2)
        assert cover.agrees_with([1, 2], [0, 3])
        assert not cover.agrees_with([1, 2], [2])
        assert not cover.agrees_with([3], [0])
