"""The project lint's RL005 and RL006 rules.

RL005 exists because the batch kernel makes the obvious
``for scenario in scenarios: executor.run_plan(...)`` loop an
anti-pattern everywhere a batch path is available; the rule flags it
in product modules while honouring explicit ``RL005`` waivers (the
fallback loop inside ``run_batch`` itself, benchmark baselines).

RL006 guards the portfolio's determinism contract: inside
``repro.schedule``, generators must come from ``SeedStream.rng(...)``
(a pure function of coordinates), never from direct
``random.Random(...)`` construction -- seeded or not -- because a
generator minted mid-search couples results to draw order and worker
count.  The single sanctioned site in ``seeds.py`` carries an
``RL006`` waiver comment.
"""

from __future__ import annotations

import ast
import importlib.util
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "lint_repro.py"


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location("lint_repro", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _check(lint, source: str):
    tree = ast.parse(source)
    return lint.check_scenario_loops(
        Path("src/example.py"), tree, source.splitlines()
    )


class TestRl005:
    def test_flags_scenario_loop_over_run_plan(self, lint):
        problems = _check(lint, (
            "for scenario in scenarios:\n"
            "    results.append(executor.run_plan(plan))\n"
        ))
        assert len(problems) == 1
        assert "RL005" in problems[0]

    def test_flags_run_session_too(self, lint):
        problems = _check(lint, (
            "for item in scenario_list:\n"
            "    executor.run_session(session)\n"
        ))
        assert len(problems) == 1

    def test_waiver_on_loop_line(self, lint):
        assert _check(lint, (
            "for scenario in scenarios:  # RL005: deliberate baseline\n"
            "    executor.run_plan(plan)\n"
        )) == []

    def test_waiver_on_call_line(self, lint):
        assert _check(lint, (
            "for scenario in scenarios:\n"
            "    executor.run_plan(plan)  # RL005 scalar fallback\n"
        )) == []

    def test_ignores_non_scenario_loops(self, lint):
        assert _check(lint, (
            "for session in plan.sessions:\n"
            "    executor.run_session(session)\n"
        )) == []

    def test_ignores_scenario_loops_without_executor_calls(self, lint):
        assert _check(lint, (
            "for scenario in scenarios:\n"
            "    overlays.append(normalise(scenario))\n"
        )) == []

    def test_tests_are_exempt(self, lint):
        assert lint.is_test_path(Path("tests/unit/test_x.py"))
        assert lint.is_test_path(Path("test_standalone.py"))
        assert not lint.is_test_path(Path("src/repro/sim/batch.py"))


def _check_rl006(lint, source: str):
    tree = ast.parse(source)
    return lint.check_schedule_randomness(
        Path("src/repro/schedule/example.py"), tree, source.splitlines()
    )


class TestRl006:
    def test_flags_seeded_construction(self, lint):
        """Mutation test: RL001 would pass a seeded Random; RL006 must
        still flag it inside repro.schedule."""
        problems = _check_rl006(lint, "rng = random.Random(42)\n")
        assert len(problems) == 1
        assert "RL006" in problems[0]
        assert "SeedStream" in problems[0]

    def test_flags_unseeded_and_bare_construction(self, lint):
        assert len(_check_rl006(lint, "rng = random.Random()\n")) == 1
        assert len(_check_rl006(
            lint, "from random import Random\nrng = Random(7)\n"
        )) == 1

    def test_waiver_on_line_or_preceding_line(self, lint):
        assert _check_rl006(
            lint, "rng = random.Random(token)  # RL006: sanctioned\n"
        ) == []
        assert _check_rl006(lint, (
            "# RL006: the one sanctioned construction site.\n"
            "rng = random.Random(token)\n"
        )) == []

    def test_ignores_stream_usage(self, lint):
        assert _check_rl006(lint, (
            "rng = stream.rng('anneal', width, restart)\n"
            "value = rng.random()\n"
        )) == []

    def test_scoped_to_schedule_package(self, lint):
        assert lint._in_schedule_package(
            Path("src/repro/schedule/portfolio.py")
        )
        assert not lint._in_schedule_package(
            Path("src/repro/soc/itc02.py")
        )

    def test_seeds_module_is_the_only_waiver(self, lint):
        """The sanctioned site exists, is waived, and is unique."""
        root = _SCRIPT.parents[1]
        schedule = root / "src" / "repro" / "schedule"
        waivers = []
        for path in sorted(schedule.rglob("*.py")):
            source = path.read_text()
            if "RL006" in source:
                waivers.append(path.name)
            assert lint.lint_file(path) == [], path
        assert waivers == ["seeds.py"]

    def test_path_scope(self, lint):
        assert lint.is_test_path(Path("tests/unit/test_x.py"))
        assert lint.is_test_path(Path("test_standalone.py"))
        assert not lint.is_test_path(Path("src/repro/sim/batch.py"))

    def test_whole_repo_is_clean(self, lint):
        root = _SCRIPT.parents[1]
        problems = []
        for rel in ("src", "scripts", "examples", "benchmarks"):
            tree = root / rel
            if not tree.is_dir():
                continue
            for path in sorted(tree.rglob("*.py")):
                problems.extend(lint.lint_file(path))
        assert problems == [], problems
