"""The project lint's RL005, RL006 and RL007 rules.

RL005 exists because the batch kernel makes the obvious
``for scenario in scenarios: executor.run_plan(...)`` loop an
anti-pattern everywhere a batch path is available; the rule flags it
in product modules while honouring explicit ``RL005`` waivers (the
fallback loop inside ``run_batch`` itself, benchmark baselines).

RL006 guards the portfolio's determinism contract: inside
``repro.schedule``, generators must come from ``SeedStream.rng(...)``
(a pure function of coordinates), never from direct
``random.Random(...)`` construction -- seeded or not -- because a
generator minted mid-search couples results to draw order and worker
count.  The single sanctioned site in ``seeds.py`` carries an
``RL006`` waiver comment.

RL007 keeps observability honest: inside ``src/repro`` nothing prints
(user-facing text flows through ``repro.obs.Console`` so ``--quiet``
and ``--json`` stay coherent) and nothing builds its own timer
(durations flow through ``repro.obs.timing``).  The sanctioned sites
-- the console/dashboard rendering layer, the one ``perf_counter``
call in ``obs/timing.py`` -- carry ``RL007`` waiver comments.
"""

from __future__ import annotations

import ast
import importlib.util
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "lint_repro.py"


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location("lint_repro", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _check(lint, source: str):
    tree = ast.parse(source)
    return lint.check_scenario_loops(
        Path("src/example.py"), tree, source.splitlines()
    )


class TestRl005:
    def test_flags_scenario_loop_over_run_plan(self, lint):
        problems = _check(lint, (
            "for scenario in scenarios:\n"
            "    results.append(executor.run_plan(plan))\n"
        ))
        assert len(problems) == 1
        assert "RL005" in problems[0]

    def test_flags_run_session_too(self, lint):
        problems = _check(lint, (
            "for item in scenario_list:\n"
            "    executor.run_session(session)\n"
        ))
        assert len(problems) == 1

    def test_waiver_on_loop_line(self, lint):
        assert _check(lint, (
            "for scenario in scenarios:  # RL005: deliberate baseline\n"
            "    executor.run_plan(plan)\n"
        )) == []

    def test_waiver_on_call_line(self, lint):
        assert _check(lint, (
            "for scenario in scenarios:\n"
            "    executor.run_plan(plan)  # RL005 scalar fallback\n"
        )) == []

    def test_ignores_non_scenario_loops(self, lint):
        assert _check(lint, (
            "for session in plan.sessions:\n"
            "    executor.run_session(session)\n"
        )) == []

    def test_ignores_scenario_loops_without_executor_calls(self, lint):
        assert _check(lint, (
            "for scenario in scenarios:\n"
            "    overlays.append(normalise(scenario))\n"
        )) == []

    def test_tests_are_exempt(self, lint):
        assert lint.is_test_path(Path("tests/unit/test_x.py"))
        assert lint.is_test_path(Path("test_standalone.py"))
        assert not lint.is_test_path(Path("src/repro/sim/batch.py"))


def _check_rl006(lint, source: str):
    tree = ast.parse(source)
    return lint.check_schedule_randomness(
        Path("src/repro/schedule/example.py"), tree, source.splitlines()
    )


class TestRl006:
    def test_flags_seeded_construction(self, lint):
        """Mutation test: RL001 would pass a seeded Random; RL006 must
        still flag it inside repro.schedule."""
        problems = _check_rl006(lint, "rng = random.Random(42)\n")
        assert len(problems) == 1
        assert "RL006" in problems[0]
        assert "SeedStream" in problems[0]

    def test_flags_unseeded_and_bare_construction(self, lint):
        assert len(_check_rl006(lint, "rng = random.Random()\n")) == 1
        assert len(_check_rl006(
            lint, "from random import Random\nrng = Random(7)\n"
        )) == 1

    def test_waiver_on_line_or_preceding_line(self, lint):
        assert _check_rl006(
            lint, "rng = random.Random(token)  # RL006: sanctioned\n"
        ) == []
        assert _check_rl006(lint, (
            "# RL006: the one sanctioned construction site.\n"
            "rng = random.Random(token)\n"
        )) == []

    def test_ignores_stream_usage(self, lint):
        assert _check_rl006(lint, (
            "rng = stream.rng('anneal', width, restart)\n"
            "value = rng.random()\n"
        )) == []

    def test_scoped_to_schedule_package(self, lint):
        assert lint._in_schedule_package(
            Path("src/repro/schedule/portfolio.py")
        )
        assert not lint._in_schedule_package(
            Path("src/repro/soc/itc02.py")
        )

    def test_seeds_module_is_the_only_waiver(self, lint):
        """The sanctioned site exists, is waived, and is unique."""
        root = _SCRIPT.parents[1]
        schedule = root / "src" / "repro" / "schedule"
        waivers = []
        for path in sorted(schedule.rglob("*.py")):
            source = path.read_text()
            if "RL006" in source:
                waivers.append(path.name)
            assert lint.lint_file(path) == [], path
        assert waivers == ["seeds.py"]

    def test_path_scope(self, lint):
        assert lint.is_test_path(Path("tests/unit/test_x.py"))
        assert lint.is_test_path(Path("test_standalone.py"))
        assert not lint.is_test_path(Path("src/repro/sim/batch.py"))

    def test_whole_repo_is_clean(self, lint):
        root = _SCRIPT.parents[1]
        problems = []
        for rel in ("src", "scripts", "examples", "benchmarks"):
            tree = root / rel
            if not tree.is_dir():
                continue
            for path in sorted(tree.rglob("*.py")):
                problems.extend(lint.lint_file(path))
        assert problems == [], problems


def _check_rl007(lint, source: str, path: str = "src/repro/example.py"):
    tree = ast.parse(source)
    return lint.check_print_and_timers(
        Path(path), tree, source.splitlines()
    )


class TestRl007:
    def test_flags_print_in_library_code(self, lint):
        problems = _check_rl007(lint, "print('done')\n")
        assert len(problems) == 1
        assert "RL007" in problems[0]
        assert "Console" in problems[0]

    def test_flags_perf_counter_timer(self, lint):
        """Mutation test: RL002 only watches identity modules; RL007
        must flag an ad-hoc timer anywhere in src/repro."""
        problems = _check_rl007(lint, (
            "start = time.perf_counter()\n"
            "work()\n"
            "elapsed = time.perf_counter() - start\n"
        ))
        assert len(problems) == 2
        assert all("repro.obs.timing" in item for item in problems)

    def test_flags_monotonic_and_wall_clock_timers(self, lint):
        assert len(_check_rl007(lint, "t = time.monotonic()\n")) == 1
        assert len(_check_rl007(lint, "t = time.time()\n")) == 1

    def test_waiver_on_line_or_preceding_line(self, lint):
        assert _check_rl007(
            lint, "print(text)  # RL007: console rendering\n"
        ) == []
        assert _check_rl007(lint, (
            "# RL007: the sanctioned timer site.\n"
            "return time.perf_counter()\n"
        )) == []

    def test_ignores_method_named_print(self, lint):
        assert _check_rl007(lint, "console.print('fine')\n") == []

    def test_ignores_obs_timing_usage(self, lint):
        assert _check_rl007(lint, (
            "with stopwatch() as watch:\n"
            "    work()\n"
            "record(watch.seconds)\n"
        )) == []

    def test_scoped_to_repro_package(self, lint):
        assert lint._in_repro_package(Path("src/repro/sim/batch.py"))
        assert not lint._in_repro_package(Path("scripts/lint_repro.py"))
        assert not lint._in_repro_package(Path("examples/minimal.py"))

    def test_sanctioned_sites_are_waived_and_bounded(self, lint):
        """Every RL007 waiver lives in the obs rendering/timing layer."""
        root = _SCRIPT.parents[1]
        package = root / "src" / "repro"
        waivers = set()
        for path in sorted(package.rglob("*.py")):
            if "RL007" in path.read_text():
                waivers.add(path.relative_to(package).as_posix())
            assert lint.lint_file(path) == [], path
        assert waivers == {
            "obs/console.py",
            "obs/dashboard.py",
            "obs/timing.py",
        }
