"""Batch-group detection in :func:`repro.api.runner.run_many`.

Only experiments that are the same compiled simulation with different
scenario overlays may share a dispatch: the group key is the canonical
experiment identity minus ``inject_faults``, and anything that might
take the abstract-model path (or a pinned scalar backend) must stay
out.  End-to-end result equivalence lives in
``tests/integration/test_batch_equivalence.py``; this module pins the
partitioning logic itself.
"""

from __future__ import annotations

from repro.api import Experiment
from repro.api.runner import _batch_partition, _group_key
from repro.soc.core import CoreTestParams, TestMethod
from repro.soc.library import fig1_soc, small_soc


def _base():
    return Experiment(small_soc())


class TestGroupKey:
    def test_fault_variants_share_a_key(self):
        base = _base()
        clean = _group_key(base)
        faulty = _group_key(base.with_faults({"alpha": (0, 1)}))
        assert clean is not None
        assert clean == faulty

    def test_labels_do_not_split_groups(self):
        assert (_group_key(_base().with_label("a"))
                == _group_key(_base().with_label("b")))

    def test_different_workloads_split(self):
        assert _group_key(_base()) != _group_key(Experiment(fig1_soc()))

    def test_backend_pins_split_or_exclude(self):
        assert _group_key(_base().with_backend("legacy")) is None
        assert _group_key(_base().with_backend("kernel")) is None
        batch = _group_key(_base().with_backend("batch"))
        auto = _group_key(_base().with_backend("auto"))
        assert batch is not None and auto is not None
        assert batch != auto  # backend is part of the identity

    def test_capture_and_verify_split_groups(self):
        base = _group_key(_base())
        assert base != _group_key(_base().with_syndromes())
        assert base != _group_key(_base().with_verify(False))

    def test_model_only_runs_are_excluded(self):
        assert _group_key(_base().simulated(False)) is None

    def test_abstract_workloads_are_excluded(self):
        cores = [CoreTestParams(name="c1", method=TestMethod.SCAN,
                                flops=10, patterns=8, max_wires=2)]
        from repro.api.results import RunConfig

        experiment = Experiment(cores, RunConfig(bus_width=2))
        assert _group_key(experiment) is None

    def test_mismatched_bus_width_is_excluded(self):
        soc = small_soc()
        experiment = _base().with_bus_width(soc.bus_width + 1)
        assert _group_key(experiment) is None


class TestPartition:
    def test_singletons_stay_on_the_pool(self):
        experiments = [_base(), Experiment(fig1_soc())]
        grouped, rest = _batch_partition(experiments)
        assert grouped == []
        assert rest == [0, 1]

    def test_fault_sweep_groups_and_rest_partition(self):
        base = _base()
        experiments = [
            base,
            base.simulated(False),
            base.with_faults({"alpha": (0, 1)}),
            base.with_backend("legacy"),
            base.with_faults({"alpha": (1, 0)}),
        ]
        grouped, rest = _batch_partition(experiments)
        assert grouped == [[0, 2, 4]]
        assert rest == [1, 3]
