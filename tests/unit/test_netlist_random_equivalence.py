"""Property tests: the event-driven netlist simulator against a direct
functional evaluation of random combinational DAGs.

The simulator's event queue, fanout bookkeeping and net resolution are
exactly the kind of machinery that harbours subtle staleness bugs; this
cross-check evaluates random netlists both ways on random stimuli.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import values as lv
from repro.netlist.cells import cell_spec
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import NetlistSimulator

_GATE_KINDS = ("AND", "OR", "XOR", "NAND", "NOR", "INV", "BUF", "MUX2")


def _random_netlist(seed: int, num_inputs: int, num_gates: int):
    """A random combinational DAG plus its evaluation order."""
    rng = random.Random(seed)
    nl = Netlist(name=f"rand{seed}")
    nets = [nl.add_input(f"in{i}") for i in range(num_inputs)]
    gates = []
    for index in range(num_gates):
        kind = rng.choice(_GATE_KINDS)
        out = f"n{index}"
        if kind in ("INV", "BUF"):
            sources = (rng.choice(nets),)
        elif kind == "MUX2":
            sources = tuple(rng.choice(nets) for _ in range(3))
        else:
            sources = tuple(
                rng.choice(nets) for _ in range(rng.randint(2, 3))
            )
        nl.add_gate(kind, sources, out)
        gates.append((kind, sources, out))
        nets.append(out)
    nl.add_output(nets[-1])
    return nl, gates


def _direct_eval(gates, assignment):
    values = dict(assignment)
    for kind, sources, out in gates:
        spec = cell_spec(kind)
        values[out] = spec.evaluate([values[s] for s in sources])
    return values


class TestRandomNetlistEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 2 ** 16 - 1))
    def test_simulator_matches_direct_evaluation(self, seed, stimulus):
        num_inputs = 5
        nl, gates = _random_netlist(seed, num_inputs, num_gates=14)
        sim = NetlistSimulator(nl)
        assignment = {
            f"in{i}": (lv.ONE if stimulus >> i & 1 else lv.ZERO)
            for i in range(num_inputs)
        }
        sim.set_inputs(assignment)
        direct = _direct_eval(gates, assignment)
        for _, __, out in gates:
            assert sim.read(out) == direct[out], (seed, out)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.data())
    def test_incremental_updates_match_fresh_evaluation(self, seed, data):
        """Changing inputs one at a time must converge to the same
        state as evaluating from scratch (no stale events)."""
        num_inputs = 4
        nl, gates = _random_netlist(seed, num_inputs, num_gates=10)
        sim = NetlistSimulator(nl)
        assignment = {f"in{i}": lv.ZERO for i in range(num_inputs)}
        sim.set_inputs(assignment)
        for _ in range(6):
            which = data.draw(st.integers(0, num_inputs - 1))
            value = data.draw(st.sampled_from((lv.ZERO, lv.ONE, lv.X)))
            assignment[f"in{which}"] = value
            sim.set_inputs({f"in{which}": value})
        direct = _direct_eval(gates, assignment)
        for _, __, out in gates:
            assert sim.read(out) == direct[out], (seed, out)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_x_inputs_never_crash(self, seed):
        nl, gates = _random_netlist(seed, 4, num_gates=10)
        sim = NetlistSimulator(nl)
        sim.set_inputs({f"in{i}": lv.X for i in range(4)})
        for _, __, out in gates:
            assert sim.read(out) in lv.VALUES
