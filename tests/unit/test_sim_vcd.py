"""Unit tests for :mod:`repro.sim.vcd` (VCD rendering)."""

from __future__ import annotations

import re

from repro import values as lv
from repro.sim.trace import TraceRecorder
from repro.sim.vcd import _identifier, render_vcd, write_vcd


def _trace() -> TraceRecorder:
    trace = TraceRecorder()
    trace.record("clk", 0, lv.ZERO)
    trace.record("clk", 1, lv.ONE)
    trace.record("data bit", 0, lv.X)
    trace.record("data bit", 2, lv.Z)
    return trace


class TestHeader:
    def test_timescale_and_scope(self):
        text = render_vcd(_trace(), design_name="dut",
                          timescale="10 ps")
        assert "$timescale 10 ps $end" in text
        assert "$scope module dut $end" in text
        assert "$upscope $end" in text
        assert "$enddefinitions $end" in text

    def test_var_declarations_sanitise_names(self):
        text = render_vcd(_trace())
        # One 1-bit wire per signal; spaces are not legal in VCD ids.
        assert re.search(r"\$var wire 1 \S+ clk \$end", text)
        assert re.search(r"\$var wire 1 \S+ data_bit \$end", text)


class TestValueChanges:
    def test_round_trip_of_recorded_changes(self):
        """Every recorded change appears under its timestamp with the
        right four-state character."""
        text = render_vcd(_trace())
        ids = dict(
            re.findall(r"\$var wire 1 (\S+) (\S+) \$end", text)
        )
        by_name = {name: vcd_id for vcd_id, name in ids.items()}
        blocks: dict[int, list[str]] = {}
        current = None
        for line in text.splitlines():
            if line.startswith("#"):
                current = int(line[1:])
                blocks[current] = []
            elif current is not None:
                blocks[current].append(line)
        assert f"0{by_name['clk']}" in blocks[0]
        assert f"x{by_name['data_bit']}" in blocks[0]
        assert f"1{by_name['clk']}" in blocks[1]
        assert f"z{by_name['data_bit']}" in blocks[2]
        # Closing timestamp one past the last recorded cycle.
        assert max(blocks) == 3

    def test_unknown_values_render_as_x(self):
        trace = TraceRecorder()
        trace.record("s", 0, 42)  # not a logic value
        line = render_vcd(trace).splitlines()
        index = line.index("#0")
        assert line[index + 1].startswith("x")


class TestIdentifiers:
    def test_identifiers_unique_and_printable(self):
        seen = {_identifier(index) for index in range(2000)}
        assert len(seen) == 2000
        assert all(
            all(33 <= ord(char) <= 126 for char in identifier)
            for identifier in seen
        )


class TestWrite:
    def test_write_vcd_file(self, tmp_path):
        path = tmp_path / "out.vcd"
        write_vcd(_trace(), str(path), design_name="unit")
        content = path.read_text(encoding="ascii")
        assert content.startswith("$date")
        assert "$scope module unit $end" in content
        assert content.endswith("\n")
