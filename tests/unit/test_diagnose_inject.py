"""Defect scenarios: construction, determinism, application."""

from __future__ import annotations

import pytest

from repro import values as lv
from repro.errors import ConfigurationError
from repro.diagnose.inject import (
    KIND_BRIDGE,
    KIND_DEAD_CELL,
    KIND_OPEN_WIRE,
    KIND_STUCK_AT,
    DefectScenario,
    build_faulty_system,
    detectable_faults,
    random_scenario,
)
from repro.sim.kernel import kernel_supports
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.soc.library import fig1_soc, small_soc


class TestScenarioConstruction:
    def test_constructors_and_describe(self):
        assert "SA1" in DefectScenario.stuck_at("alpha", 3, 1).describe()
        assert "wire 2" in DefectScenario.open_wire(2).describe()
        assert "bridged" in DefectScenario.bridge(1, 0).describe()
        assert "cell 1" in DefectScenario.dead_cell("a", 1).describe()

    def test_bridge_normalises_wire_order(self):
        assert DefectScenario.bridge(3, 1) == DefectScenario.bridge(1, 3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DefectScenario(kind="gremlin")
        with pytest.raises(ConfigurationError):
            DefectScenario(kind=KIND_STUCK_AT, core="a")  # no node
        with pytest.raises(ConfigurationError):
            DefectScenario.stuck_at("a", 1, 2)  # bad stuck level
        with pytest.raises(ConfigurationError):
            DefectScenario.bridge(1, 1)

    def test_round_trip(self):
        for scenario in (
            DefectScenario.stuck_at("core5/core5a", 7, 0, seed=3),
            DefectScenario.open_wire(1, 1),
            DefectScenario.bridge(0, 2),
            DefectScenario.dead_cell("alpha", 2, 1),
        ):
            assert DefectScenario.from_dict(scenario.to_dict()) == scenario

    def test_nested_core_path(self):
        scenario = DefectScenario.stuck_at("core5/core5a", 7, 0)
        assert scenario.core_path == ("core5", "core5a")
        assert scenario.fault == (7, 0)


class TestRandomScenario:
    def test_deterministic(self):
        soc = small_soc()
        assert random_scenario(soc, 5) == random_scenario(soc, 5)

    def test_seeds_vary(self):
        soc = small_soc()
        drawn = {random_scenario(soc, seed) for seed in range(8)}
        assert len(drawn) > 1

    def test_default_is_detectable_stuck_at(self):
        soc = small_soc()
        scenario = random_scenario(soc, 2)
        assert scenario.kind == KIND_STUCK_AT
        assert scenario.core is not None
        spec = soc.core_named(scenario.core)
        assert scenario.fault in detectable_faults(spec)

    def test_wider_kinds(self):
        soc = small_soc()
        kinds = {
            random_scenario(
                soc, seed,
                kinds=(KIND_OPEN_WIRE, KIND_BRIDGE, KIND_DEAD_CELL),
            ).kind
            for seed in range(12)
        }
        assert len(kinds) >= 2

    def test_unknown_kind_errors(self):
        with pytest.raises(ConfigurationError):
            random_scenario(small_soc(), 1, kinds=("gremlin",))


class TestApplication:
    def test_clean_build(self):
        system = build_faulty_system(small_soc(), None)
        assert kernel_supports(system)

    def test_stuck_at_fails_the_victim_only(self):
        soc = small_soc()
        scenario = random_scenario(soc, 1)
        system = build_faulty_system(soc, scenario)
        assert kernel_supports(system)  # logic faults stay kernel-able
        from repro.core.tam import CasBusTamDesign

        plan = CasBusTamDesign.for_soc(soc).executable_plan()
        program = SessionExecutor(system).run_plan(plan)
        failed = [r.name for r in program.core_results() if not r.passed]
        assert failed == [scenario.core]

    def test_open_wire_forces_legacy_backend(self):
        soc = small_soc()
        system = build_faulty_system(soc, DefectScenario.open_wire(0, 1))
        assert not kernel_supports(system)
        routed = system.route_bus((lv.ZERO,) * soc.bus_width, config=False)
        assert routed[0] == lv.ONE  # stuck high on exit

    def test_bridge_pulls_driven_one_down(self):
        soc = small_soc()
        system = build_faulty_system(soc, DefectScenario.bridge(0, 1))
        assert not kernel_supports(system)
        bus_in = tuple(
            lv.ONE if wire == 0 else lv.ZERO
            for wire in range(soc.bus_width)
        )
        routed = system.route_bus(bus_in, config=False)
        assert routed[0] == lv.ZERO  # wired-AND with the idle wire

    def test_dead_cell_sticks_through_reset_and_shift(self):
        soc = small_soc()
        scenario = DefectScenario.dead_cell("alpha", 0, 1)
        system = build_faulty_system(soc, scenario)
        assert not kernel_supports(system)
        node = system.node_at(("alpha",))
        assert node.wrapper is not None
        cell = node.wrapper.boundary.cells[0]
        assert cell.shift_value == 1
        cell.load(0)
        assert cell.shift_value == 1
        node.wrapper.boundary.reset()
        assert cell.shift_value == 1

    def test_out_of_range_defects_error(self):
        soc = small_soc()
        with pytest.raises(ConfigurationError):
            build_faulty_system(soc, DefectScenario.open_wire(99))
        with pytest.raises(ConfigurationError):
            build_faulty_system(soc, DefectScenario.bridge(0, 99))
        with pytest.raises(ConfigurationError):
            build_faulty_system(
                soc, DefectScenario.dead_cell("alpha", 99)
            )

    def test_each_call_builds_a_fresh_system(self):
        soc = small_soc()
        scenario = random_scenario(soc, 1)
        assert (build_faulty_system(soc, scenario)
                is not build_faulty_system(soc, scenario))

    def test_hierarchical_stuck_at(self):
        soc = fig1_soc()
        scenario = DefectScenario.stuck_at("core5/core5a", 20, 1)
        system = build_faulty_system(soc, scenario)
        node = system.node_at(("core5", "core5a"))
        assert node.wrapper is not None and node.wrapper.core is not None
        assert node.wrapper.core.fault == (20, 1)


class TestWireFaultSimulation:
    def test_wire_fault_flags_cores_using_the_wire(self):
        soc = small_soc()
        system = build_faulty_system(soc, DefectScenario.open_wire(2, 1))
        from repro.core.tam import CasBusTamDesign

        plan = CasBusTamDesign.for_soc(soc).executable_plan()
        program = SessionExecutor(system).run_plan(plan)
        # beta is the core scheduled onto wire 2.
        failed = {r.name for r in program.core_results() if not r.passed}
        assert "beta" in failed

    def test_build_system_without_defects_has_no_wire_state(self):
        system = build_system(small_soc())
        assert system.wire_faults == {}
        assert system.wire_bridges == []
