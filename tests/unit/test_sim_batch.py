"""Unit tests for the vectorized batch kernel's primitives.

The integration suite (``tests/integration/test_batch_equivalence.py``)
pins whole-program equivalence; these tests pin the building blocks in
isolation: the popcount kernels agree with each other and with Python,
the array cloud evaluator is a bit-exact twin of the scalar word
evaluator (including stuck-at forcing), programs cache per spec, and
scenario normalization routes each scenario kind to the right path.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.scan.core_model import CombCloud
from repro.sim.batch import (
    _popcount_words,
    _popcount_words_swar,
    batch_scan_program,
    clear_batch_cache,
    evaluate_cloud_array,
    scenario_overlay,
)
from repro.soc.library import fig1_soc


class TestPopcount:
    def test_swar_matches_python_popcount(self):
        rng = random.Random(7)
        words = [0, 1, (1 << 64) - 1, 1 << 63] + [
            rng.getrandbits(64) for _ in range(200)
        ]
        array = np.array(words, dtype=np.uint64)
        expected = [bin(word).count("1") for word in words]
        assert _popcount_words_swar(array).tolist() == expected
        assert _popcount_words(array).tolist() == expected

    def test_dtype_and_shape_preserved(self):
        array = np.arange(12, dtype=np.uint64).reshape(3, 4)
        counts = _popcount_words(array)
        assert counts.shape == (3, 4)
        assert counts.dtype == np.int64


def _random_columns(cloud, num_patterns, columns, seed):
    rng = random.Random(seed)
    mask = (1 << num_patterns) - 1
    return [
        [rng.getrandbits(num_patterns) for _ in range(cloud.num_inputs)]
        for _ in range(columns)
    ], mask


class TestCloudArrayEvaluator:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_scalar_evaluator(self, seed):
        cloud = CombCloud.random(
            num_inputs=6, num_ops=30, num_outputs=8, seed=seed
        )
        column_inputs, mask = _random_columns(cloud, 16, 5, seed)
        inputs = np.array(column_inputs, dtype=np.uint64).T
        masks = np.full(5, mask, dtype=np.uint64)
        outputs = evaluate_cloud_array(cloud, inputs, masks)
        for column, words in enumerate(column_inputs):
            scalar = cloud.evaluate_words(words, mask)
            assert outputs[:, column].tolist() == scalar

    @pytest.mark.parametrize("stuck", [0, 1])
    def test_stuck_at_override_matches_scalar_fault(self, stuck):
        cloud = CombCloud.random(
            num_inputs=5, num_ops=24, num_outputs=6, seed=11
        )
        column_inputs, mask = _random_columns(cloud, 12, 3, 11)
        inputs = np.array(column_inputs, dtype=np.uint64).T
        masks = np.full(3, mask, dtype=np.uint64)
        forced = np.uint64(mask if stuck else 0)
        for node in (0, cloud.num_inputs, cloud.num_nodes - 1):
            overrides = {
                node: (
                    np.arange(3, dtype=np.intp),
                    np.full(3, forced, dtype=np.uint64),
                )
            }
            outputs = evaluate_cloud_array(
                cloud, inputs, masks, overrides=overrides
            )
            for column, words in enumerate(column_inputs):
                scalar = cloud.evaluate_words(
                    words, mask, fault=(node, stuck)
                )
                assert outputs[:, column].tolist() == scalar, (
                    f"node {node} stuck-at-{stuck}, column {column}"
                )

    def test_rejects_wrong_input_arity(self):
        from repro.errors import SimulationError

        cloud = CombCloud.random(
            num_inputs=4, num_ops=8, num_outputs=2, seed=0
        )
        with pytest.raises(SimulationError, match="inputs"):
            evaluate_cloud_array(
                cloud,
                np.zeros((3, 2), dtype=np.uint64),
                np.ones(2, dtype=np.uint64),
            )


class TestBatchProgramCache:
    def test_same_spec_hits_cache(self):
        clear_batch_cache()
        spec = next(
            core for core in fig1_soc().cores if core.name == "core2"
        )
        first = batch_scan_program(spec)
        assert batch_scan_program(spec) is first
        clear_batch_cache()
        assert batch_scan_program(spec) is not first

    def test_golden_matches_packed_chunks(self):
        spec = next(
            core for core in fig1_soc().cores if core.name == "core2"
        )
        program = batch_scan_program(spec)
        assert program.words == -(-program.num_patterns // 64)
        assert program.inputs.shape == (
            program.cloud.num_inputs, program.words
        )
        assert program.golden.shape == (
            len(program.cloud.outputs), program.words
        )
        # Every word's care mask covers exactly its pattern bits...
        for index, mask in enumerate(program.masks.tolist()):
            used = min(64, program.num_patterns - index * 64)
            assert mask == (1 << used) - 1
        # ...and stray bits above the pattern count never appear.
        stray = program.golden & ~program.masks[None, :]
        assert not stray.any()


class TestScenarioNormalization:
    def test_clean_is_empty_overlay(self):
        assert scenario_overlay(None) == {}

    def test_mapping_passes_through(self):
        overlay = scenario_overlay({"core2": (3, 1)})
        assert overlay == {"core2": (3, 1)}

    def test_stuck_at_scenario_becomes_overlay(self):
        from repro.diagnose.inject import DefectScenario

        scenario = DefectScenario.stuck_at("core2", 3, 1)
        assert scenario_overlay(scenario) == {"core2": scenario.fault}

    @pytest.mark.parametrize("factory", [
        lambda inject: inject.DefectScenario.open_wire(0),
        lambda inject: inject.DefectScenario.bridge(0, 1),
        lambda inject: inject.DefectScenario.dead_cell("core2", 1),
    ])
    def test_transport_defects_force_fallback(self, factory):
        from repro.diagnose import inject

        assert scenario_overlay(factory(inject)) is None
