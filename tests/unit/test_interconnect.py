"""Unit tests for the EXTEST interconnect-test machinery."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.interconnect import (
    Interconnect,
    apply_faults,
    counting_patterns,
    validate_interconnects,
)


def _nets(count=4):
    return [
        Interconnect(f"n{i}", source=("a", i), sink=("b", i))
        for i in range(count)
    ]


class TestInterconnectModel:
    def test_basic_construction(self):
        net = Interconnect("x", source=("a", 0), sink=("b", 1))
        assert net.name == "x"

    def test_same_core_rejected(self):
        with pytest.raises(ConfigurationError, match="same core"):
            Interconnect("x", source=("a", 0), sink=("a", 1))

    def test_negative_pin_rejected(self):
        with pytest.raises(ConfigurationError):
            Interconnect("x", source=("a", -1), sink=("b", 0))

    def test_validation_against_shapes(self):
        nets = [Interconnect("x", source=("a", 0), sink=("b", 0))]
        validate_interconnects(nets, {"a": (2, 2), "b": (2, 2)})

    def test_out_of_range_pin_caught(self):
        nets = [Interconnect("x", source=("a", 5), sink=("b", 0))]
        with pytest.raises(ConfigurationError, match="out of range"):
            validate_interconnects(nets, {"a": (2, 2), "b": (2, 2)})

    def test_unknown_core_caught(self):
        nets = [Interconnect("x", source=("a", 0), sink=("zz", 0))]
        with pytest.raises(ConfigurationError, match="unknown"):
            validate_interconnects(nets, {"a": (2, 2), "b": (2, 2)})

    def test_double_driven_sink_caught(self):
        nets = [
            Interconnect("x", source=("a", 0), sink=("b", 0)),
            Interconnect("y", source=("c", 0), sink=("b", 0)),
        ]
        with pytest.raises(ConfigurationError, match="driven twice"):
            validate_interconnects(
                nets, {"a": (2, 2), "b": (2, 2), "c": (2, 2)}
            )

    def test_duplicate_names_caught(self):
        nets = [
            Interconnect("x", source=("a", 0), sink=("b", 0)),
            Interconnect("x", source=("a", 1), sink=("b", 1)),
        ]
        with pytest.raises(ConfigurationError, match="duplicate"):
            validate_interconnects(nets, {"a": (2, 2), "b": (2, 2)})


class TestCountingPatterns:
    def test_every_net_sees_both_values(self):
        patterns = counting_patterns(_nets(5))
        for net in _nets(5):
            values = {p[net.name] for p in patterns}
            assert values == {0, 1}

    def test_every_pair_differs_somewhere(self):
        nets = _nets(6)
        patterns = counting_patterns(nets)
        for i, a in enumerate(nets):
            for b in nets[i + 1:]:
                assert any(p[a.name] != p[b.name] for p in patterns), (
                    a.name, b.name
                )

    def test_pattern_count_logarithmic(self):
        assert len(counting_patterns(_nets(4))) <= 8
        assert len(counting_patterns(_nets(30))) <= 12

    def test_each_direction_of_every_pair_covered(self):
        """Needed so wired-AND shorts damage both participants."""
        nets = _nets(6)
        patterns = counting_patterns(nets)
        for a in nets:
            for b in nets:
                if a.name == b.name:
                    continue
                assert any(p[a.name] == 1 and p[b.name] == 0
                           for p in patterns), (a.name, b.name)

    def test_empty(self):
        assert counting_patterns([]) == []


class TestFaultApplication:
    def test_stuck_at(self):
        received = apply_faults({"a": 1, "b": 0}, {"a": "sa0", "b": "sa1"})
        assert received == {"a": 0, "b": 1}

    def test_open_reads_zero(self):
        assert apply_faults({"a": 1}, {"a": "open"}) == {"a": 0}

    def test_short_is_wired_and(self):
        received = apply_faults({"a": 1, "b": 0}, {("a", "b"): "short"})
        assert received == {"a": 0, "b": 0}
        received = apply_faults({"a": 1, "b": 1}, {("a", "b"): "short"})
        assert received == {"a": 1, "b": 1}

    def test_unknown_net_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_faults({"a": 1}, {"zz": "sa0"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_faults({"a": 1}, {"a": "wiggle"})

    def test_bad_short_key_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_faults({"a": 1}, {"a": "short"})

    def test_no_faults_identity(self):
        driven = {"a": 1, "b": 0}
        assert apply_faults(driven, {}) == driven
