"""Unit tests for :mod:`repro.sim.trace` (signal recording)."""

from __future__ import annotations

from repro import values as lv
from repro.sim.trace import TraceRecorder


class TestRecord:
    def test_change_compression(self):
        trace = TraceRecorder()
        trace.record("clk", 0, lv.ZERO)
        trace.record("clk", 1, lv.ZERO)  # unchanged: dropped
        trace.record("clk", 2, lv.ONE)
        assert trace.changes["clk"] == [(0, lv.ZERO), (2, lv.ONE)]

    def test_max_cycle_tracks_even_unchanged_samples(self):
        trace = TraceRecorder()
        trace.record("s", 0, lv.ONE)
        trace.record("s", 9, lv.ONE)
        assert trace.max_cycle == 9

    def test_record_vector_expands_indices(self):
        trace = TraceRecorder()
        trace.record_vector("bus", 3, (lv.ZERO, lv.ONE, lv.Z))
        assert trace.signals() == ["bus0", "bus1", "bus2"]
        assert trace.changes["bus2"] == [(3, lv.Z)]

    def test_signals_sorted(self):
        trace = TraceRecorder()
        trace.record("b", 0, 1)
        trace.record("a", 0, 0)
        assert trace.signals() == ["a", "b"]


class TestValueAt:
    def test_value_at_steps(self):
        trace = TraceRecorder()
        trace.record("s", 2, lv.ZERO)
        trace.record("s", 5, lv.ONE)
        assert trace.value_at("s", 0) is None   # before first change
        assert trace.value_at("s", 2) == lv.ZERO
        assert trace.value_at("s", 4) == lv.ZERO  # held value
        assert trace.value_at("s", 5) == lv.ONE
        assert trace.value_at("s", 99) == lv.ONE

    def test_unknown_signal_is_none(self):
        assert TraceRecorder().value_at("ghost", 0) is None


class TestSimulationCollection:
    def test_legacy_executor_records_bus_signals(self):
        """The (legacy) executor records one signal per bus wire in
        both directions."""
        from repro.core.tam import CasBusTamDesign
        from repro.sim.session import SessionExecutor
        from repro.sim.system import build_system
        from repro.soc.library import small_soc

        soc = small_soc()
        trace = TraceRecorder()
        executor = SessionExecutor(build_system(soc), trace=trace)
        executor.run_plan(CasBusTamDesign.for_soc(soc).executable_plan())
        names = trace.signals()
        for wire in range(soc.bus_width):
            assert f"bus_in{wire}" in names
            assert f"bus_out{wire}" in names
        assert trace.max_cycle > 0
