"""Property suite for the parallel optimizer portfolio.

The four contracts the portfolio ships with:

* **never worse than greedy** on random SoCs -- every stochastic unit
  starts from (or continues) the greedy partition and only ever keeps
  improvements;
* **equal to ``optimize_bnb``** on small problems -- the spec
  auto-adds one exact branch-and-bound unit per width within
  ``exact_limit``, so optimality there is structural;
* **byte-identical ``OptimizeOutcome`` for a fixed seed regardless of
  worker count** -- units draw from fixed seed coordinates and merge
  at a round barrier in fixed order, so ``jobs`` can only change
  wall-clock time;
* **Pareto dominance invariants** -- no front point dominates another,
  and the front is sorted by width.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.schedule.optimize import optimize_bnb
from repro.schedule.portfolio import (
    PortfolioSpec,
    _canon,
    optimize_portfolio,
)
from repro.schedule.scheduler import schedule_greedy
from repro.schedule.seeds import SeedStream
from repro.soc.itc02 import g1023_like, random_test_params

#: A cheap spec for property tests: one round, one start per strategy.
_FAST = PortfolioSpec(starts=1, rounds=1, iterations=120)


def _outcome_fingerprint(outcome):
    """Every observable field of an OptimizeOutcome, deep-compared."""
    return (
        outcome.method,
        outcome.evaluations,
        outcome.cache_stats,
        outcome.pareto,
        {
            width: (
                schedule.test_cycles,
                schedule.config_cycles_total,
                tuple(
                    tuple(entry.params.name for entry in session.entries)
                    for session in schedule.sessions
                ),
            )
            for width, schedule in outcome.schedules.items()
        },
    )


class TestNeverWorseThanGreedy:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 9), st.integers(1, 12))
    def test_random_socs(self, seed, num_cores, width):
        cores = random_test_params(seed, num_cores=num_cores)
        greedy = schedule_greedy(cores, width)
        outcome = optimize_portfolio(
            cores, width, widths=(width,), spec=_FAST, seed=seed
        )
        assert outcome.total_cycles <= greedy.total_cycles

    def test_itc02_scale(self):
        cores = g1023_like()
        greedy = schedule_greedy(cores, 16)
        outcome = optimize_portfolio(
            cores, 16, widths=(16,), spec=_FAST, budget=600
        )
        assert outcome.total_cycles <= greedy.total_cycles


class TestMatchesBnbOnSmallProblems:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 6), st.integers(1, 8))
    def test_certified_totals(self, seed, num_cores, width):
        cores = random_test_params(seed, num_cores=num_cores)
        exact = optimize_bnb(cores, width, widths=(width,))
        outcome = optimize_portfolio(
            cores, width, widths=(width,), spec=_FAST, seed=seed
        )
        assert outcome.total_cycles == exact.total_cycles
        assert outcome.cache_stats["certified_widths"] == [width]

    def test_certificate_spans_the_sweep(self):
        cores = random_test_params(5, num_cores=5)
        exact = optimize_bnb(cores, 8)
        outcome = optimize_portfolio(cores, 8, spec=_FAST)
        assert outcome.pareto == exact.pareto
        assert outcome.cache_stats["certified_widths"] == [1, 2, 4, 8]

    def test_no_certificate_beyond_exact_limit(self):
        outcome = optimize_portfolio(
            g1023_like(), 8, widths=(8,), spec=_FAST, budget=300
        )
        assert outcome.cache_stats["certified_widths"] == []


class TestJobsInvariance:
    @pytest.mark.parametrize("jobs", [2, 3])
    def test_outcome_identical_across_worker_counts(self, jobs):
        cores = random_test_params(11, num_cores=12)
        kwargs = dict(widths=(4, 8), seed=7, budget=800)
        serial = optimize_portfolio(cores, 8, jobs=1, **kwargs)
        fanned = optimize_portfolio(cores, 8, jobs=jobs, **kwargs)
        assert _outcome_fingerprint(serial) == _outcome_fingerprint(fanned)

    def test_progress_events_identical_across_worker_counts(self):
        cores = random_test_params(3, num_cores=10)
        logs = {}
        for jobs in (1, 2):
            events = []
            optimize_portfolio(
                cores, 8, widths=(8,), seed=1, budget=400, jobs=jobs,
                progress=events.append,
            )
            logs[jobs] = events
        assert logs[1] == logs[2]

    def test_seed_changes_the_search(self):
        cores = random_test_params(2, num_cores=14)
        a = optimize_portfolio(cores, 8, widths=(8,), seed=0, budget=600)
        b = optimize_portfolio(cores, 8, widths=(8,), seed=1, budget=600)
        # Different seeds explore differently (stats diverge) even when
        # both land on good totals.
        assert (a.cache_stats != b.cache_stats
                or a.total_cycles != b.total_cycles)


class TestParetoInvariants:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 8))
    def test_no_point_dominates_another(self, seed, num_cores):
        cores = random_test_params(seed, num_cores=num_cores)
        outcome = optimize_portfolio(cores, 8, spec=_FAST, seed=seed)
        front = outcome.pareto
        widths = [point.bus_width for point in front]
        assert widths == sorted(widths)
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominates = (
                    a.bus_width <= b.bus_width
                    and a.config_bits <= b.config_bits
                    and a.total_cycles <= b.total_cycles
                    and (
                        a.bus_width < b.bus_width
                        or a.config_bits < b.config_bits
                        or a.total_cycles < b.total_cycles
                    )
                )
                assert not dominates, (a, b)


class TestSpec:
    def test_of_accepts_names_and_sequences(self):
        assert PortfolioSpec.of("anneal").strategies == ("anneal",)
        assert PortfolioSpec.of("anneal, lns").strategies == (
            "anneal", "lns",
        )
        assert PortfolioSpec.of(["genetic"]).strategies == ("genetic",)
        spec = PortfolioSpec(starts=3)
        assert PortfolioSpec.of(spec) is spec

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ScheduleError, match="known:"):
            PortfolioSpec(strategies=("gradient-descent",))
        with pytest.raises(ScheduleError, match="known:"):
            PortfolioSpec.of("")

    def test_invalid_shape_rejected(self):
        with pytest.raises(ScheduleError):
            PortfolioSpec(starts=0)
        with pytest.raises(ScheduleError):
            PortfolioSpec(rounds=0)
        with pytest.raises(ScheduleError):
            optimize_portfolio(g1023_like(), 8, jobs=0)
        with pytest.raises(ScheduleError):
            optimize_portfolio(g1023_like(), 8, budget=0)

    def test_exact_unit_leads_the_grid(self):
        spec = PortfolioSpec(starts=1)
        assert spec.units(4)[0] == ("bnb", 0)
        assert ("bnb", 0) not in spec.units(40)
        assert spec.units(0) == []


class TestSeedStream:
    def test_rng_is_pure_function_of_coordinates(self):
        stream = SeedStream(42)
        a = stream.rng("anneal", 8, 0).random()
        b = stream.rng("anneal", 8, 0).random()
        assert a == b
        assert stream.rng("anneal", 8, 1).random() != a

    def test_child_namespaces_do_not_collide(self):
        stream = SeedStream(0)
        assert (stream.child("portfolio").rng(1).random()
                != stream.rng(1).random())
        assert stream.child("a").token(1) == stream.token("a", 1)

    def test_equality_and_normalisation(self):
        from repro.schedule.seeds import as_seed_stream

        assert SeedStream(5) == SeedStream("5") == as_seed_stream(5)
        stream = SeedStream("root")
        assert as_seed_stream(stream) is stream


class TestCanonicalPartitions:
    def test_canon_is_order_free(self):
        assert _canon([[3, 1], [2]]) == _canon([[2], [1, 3]])
        assert _canon([]) == ()

    def test_empty_workload(self):
        outcome = optimize_portfolio([], 4, spec=_FAST)
        assert outcome.total_cycles == 0
        assert outcome.evaluations == 0
