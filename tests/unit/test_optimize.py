"""The width/session co-optimisers, plus registry-wide scheduler
properties (every strategy respects the lower bound and the wire
budget; the exact optimiser matches exhaustive enumeration)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.api import get_scheduler, list_schedulers
from repro.soc.itc02 import d695_like, g1023_like, random_test_params
from repro.schedule.model import Schedule
from repro.schedule.optimize import (
    BNB_MAX_CORES,
    OptimizeOutcome,
    ParetoPoint,
    candidate_widths,
    co_optimize,
    optimize_anneal,
    optimize_bnb,
    pareto_front,
)
from repro.schedule.preemptive import PreemptiveSchedule
from repro.schedule.reconfig import ReconfigComparison, StaticPlan
from repro.schedule.scheduler import (
    lower_bound,
    schedule_exhaustive,
    schedule_greedy,
)

#: Per-strategy keyword options keeping the property tests fast (the
#: optimisers skip the full width sweep; annealing shrinks its budget).
_FAST_OPTIONS = {
    "optimize-bnb": lambda n: {"widths": (n,)},
    "optimize-anneal": lambda n: {"widths": (n,), "iterations": 250},
    "optimize-portfolio": lambda n: {"widths": (n,), "budget": 300},
}


def _sessions_of(detail):
    """Every (wires_used, n-constrained) session-like row of a detail."""
    if isinstance(detail, OptimizeOutcome):
        detail = detail.schedule
    if isinstance(detail, Schedule):
        return [session.wires_used for session in detail.sessions]
    if isinstance(detail, PreemptiveSchedule):
        return [
            sum(wires for _, wires in segment.allocations)
            for segment in detail.segments
        ]
    if isinstance(detail, StaticPlan):
        return [sum(detail.wires_per_group)]
    if isinstance(detail, ReconfigComparison):
        return (_sessions_of(detail.reconfigured)
                + _sessions_of(detail.preemptive))
    raise AssertionError(f"unknown detail type {type(detail).__name__}")


class TestSchedulerWideProperties:
    """Satellite invariants over *every* registered strategy."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 6), st.integers(1, 8))
    def test_respects_lower_bound_and_wire_budget(
            self, seed, num_cores, width):
        cores = random_test_params(seed, num_cores=num_cores)
        bound = lower_bound(cores, width)
        for name in list_schedulers():
            options = _FAST_OPTIONS.get(name, lambda n: {})(width)
            outcome = get_scheduler(name).schedule(
                cores, width, **options
            )
            assert outcome.test_cycles >= bound, name
            for wires_used in _sessions_of(outcome.detail):
                assert wires_used <= width, name

    def test_wire_budget_on_itc02(self):
        cores = d695_like()
        for name in list_schedulers():
            if name == "exhaustive":
                continue  # ten cores exceed the enumeration guard
            options = _FAST_OPTIONS.get(name, lambda n: {})(16)
            outcome = get_scheduler(name).schedule(cores, 16, **options)
            assert outcome.test_cycles >= lower_bound(cores, 16), name
            for wires_used in _sessions_of(outcome.detail):
                assert wires_used <= 16, name


class TestBnb:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 6), st.integers(1, 8),
           st.booleans())
    def test_matches_exhaustive_on_small_socs(
            self, seed, num_cores, width, charge):
        """The acceptance criterion: provable optimality."""
        cores = random_test_params(seed, num_cores=num_cores)
        exact = schedule_exhaustive(cores, width, charge_config=charge)
        outcome = optimize_bnb(cores, width, widths=(width,),
                               charge_config=charge)
        assert outcome.schedule.total_cycles == exact.total_cycles

    def test_core_count_guard(self):
        with pytest.raises(ScheduleError, match="optimize-anneal"):
            optimize_bnb(random_test_params(1, num_cores=BNB_MAX_CORES + 1),
                         8)

    def test_pareto_front_spans_widths(self):
        outcome = optimize_bnb(d695_like()[:6], 16)
        assert outcome.method == "optimize-bnb"
        widths = [point.bus_width for point in outcome.pareto]
        assert widths == sorted(widths)
        assert outcome.schedule.bus_width == 16
        # Wider never slower on the front (total cycles fall as N grows).
        totals = [point.total_cycles for point in outcome.pareto]
        assert totals == sorted(totals, reverse=True)


class TestAnneal:
    def test_never_worse_than_greedy(self):
        for cores, width in ((d695_like(), 16), (g1023_like(), 8)):
            greedy = schedule_greedy(cores, width)
            outcome = optimize_anneal(cores, width, widths=(width,))
            assert outcome.total_cycles <= greedy.total_cycles

    def test_deterministic_for_a_seed(self):
        cores = g1023_like()
        first = optimize_anneal(cores, 16, widths=(16,), seed=7)
        second = optimize_anneal(cores, 16, widths=(16,), seed=7)
        assert first.total_cycles == second.total_cycles
        assert [p.to_dict() for p in first.pareto] == \
            [p.to_dict() for p in second.pareto]

    def test_matches_bnb_on_small_instances(self):
        cores = random_test_params(42, num_cores=5)
        exact = optimize_bnb(cores, 6, widths=(6,))
        annealed = optimize_anneal(cores, 6, widths=(6,))
        assert annealed.total_cycles >= exact.total_cycles
        assert annealed.total_cycles <= 1.2 * exact.total_cycles

    def test_restarts_never_hurt_and_stay_deterministic(self):
        cores = g1023_like()
        single = optimize_anneal(cores, 16, widths=(16,), seed=3,
                                 iterations=300)
        multi = optimize_anneal(cores, 16, widths=(16,), seed=3,
                                iterations=300, restarts=3)
        again = optimize_anneal(cores, 16, widths=(16,), seed=3,
                                iterations=300, restarts=3)
        # Restart r draws at fixed coordinates ("anneal", width, r), so
        # restarts=3 *contains* restart 0: best-of-3 <= best-of-1.
        assert multi.total_cycles <= single.total_cycles
        assert multi.total_cycles == again.total_cycles

    def test_explicit_seed_stream_equals_seed(self):
        from repro.schedule.seeds import SeedStream

        cores = random_test_params(9, num_cores=12)
        by_seed = optimize_anneal(cores, 8, widths=(8,), seed=5,
                                  iterations=200)
        by_stream = optimize_anneal(cores, 8, widths=(8,),
                                    seeds=SeedStream(5), iterations=200)
        assert by_seed.total_cycles == by_stream.total_cycles

    def test_restarts_must_be_positive(self):
        with pytest.raises(ScheduleError, match="restarts"):
            optimize_anneal(d695_like(), 8, restarts=0)


class TestBnbReach:
    def test_exact_at_fourteen_cores(self):
        """The tightened bounds certify g1023-class tables: the exact
        engine at 14 cores beats-or-matches a well-budgeted anneal."""
        cores = g1023_like()
        assert len(cores) == BNB_MAX_CORES
        exact = optimize_bnb(cores, 16, widths=(16,))
        annealed = optimize_anneal(cores, 16, widths=(16,), restarts=3)
        assert exact.total_cycles <= annealed.total_cycles

    def test_incumbent_anneal_does_not_change_optimality(self, monkeypatch):
        """Above the incumbent threshold the anneal only prunes: the
        same instance solved with the incumbent anneal disabled must
        return the identical total."""
        from repro.schedule import optimize as optimize_module

        cores = random_test_params(17, num_cores=11)
        with_anneal = optimize_bnb(cores, 6, widths=(6,))
        monkeypatch.setattr(
            optimize_module, "_BNB_ANNEAL_INCUMBENT_ABOVE", 99
        )
        without_anneal = optimize_bnb(cores, 6, widths=(6,))
        assert (with_anneal.schedule.total_cycles
                == without_anneal.schedule.total_cycles)


class TestCacheStats:
    def test_outcomes_carry_cache_stats(self):
        outcome = optimize_bnb(d695_like()[:5], 8)
        stats = outcome.cache_stats
        assert stats["cost_model"]["misses"] > 0
        assert stats["evaluations"]["misses"] == outcome.evaluations
        assert stats["cost_model"]["hits"] >= 0

    def test_model_stats_counters(self):
        from repro.schedule.model import CostModel, TamProblem

        model = CostModel(TamProblem.of(d695_like()[:3], 8))
        assert model.stats() == {"hits": 0, "misses": 0, "entries": 0}
        model.core_cycles(model.problem.cores[0], 4)
        model.core_cycles(model.problem.cores[0], 4)
        assert model.stats() == {"hits": 1, "misses": 1, "entries": 1}


class TestCoOptimize:
    def test_auto_dispatch_by_core_count(self):
        small = co_optimize(d695_like()[:4], 8, widths=(8,))
        assert small.method == "optimize-bnb"
        large = co_optimize(
            random_test_params(3, num_cores=BNB_MAX_CORES + 1),
            8, widths=(8,), iterations=200,
        )
        assert large.method == "optimize-anneal"

    def test_unknown_method_rejected(self):
        with pytest.raises(ScheduleError, match="unknown"):
            co_optimize(d695_like()[:3], 4, method="gradient-descent")

    def test_portfolio_dispatch(self):
        cores = d695_like()[:5]
        explicit = co_optimize(cores, 8, widths=(8,),
                               method="portfolio", budget=200)
        assert explicit.method == "optimize-portfolio"
        # jobs > 1 or a portfolio spec implies the portfolio engine.
        implied = co_optimize(cores, 8, widths=(8,), jobs=2, budget=200)
        assert implied.method == "optimize-portfolio"
        by_spec = co_optimize(cores, 8, widths=(8,),
                              portfolio="anneal,lns", budget=200)
        assert by_spec.method == "optimize-portfolio"


class TestParetoFront:
    def test_candidate_widths(self):
        assert candidate_widths(16) == (1, 2, 4, 8, 16)
        assert candidate_widths(12) == (1, 2, 4, 8, 12)
        assert candidate_widths(1) == (1,)
        with pytest.raises(ScheduleError):
            candidate_widths(0)

    def test_dominated_points_dropped(self):
        good = ParetoPoint(bus_width=4, config_bits=10, test_cycles=100,
                           config_cycles=10, sessions=2)
        bad = ParetoPoint(bus_width=8, config_bits=20, test_cycles=150,
                          config_cycles=10, sessions=2)
        incomparable = ParetoPoint(bus_width=8, config_bits=20,
                                   test_cycles=50, config_cycles=10,
                                   sessions=1)
        front = pareto_front([good, bad, incomparable])
        assert good in front and incomparable in front
        assert bad not in front

    def test_no_front_point_dominates_another(self):
        outcome = optimize_anneal(g1023_like(), 16, iterations=300)
        front = outcome.pareto
        assert front == pareto_front(front)
        assert len(front) >= 2  # a real trade-off curve, not one point

    def test_describe_mentions_front(self):
        outcome = optimize_bnb(d695_like()[:4], 8)
        text = outcome.describe()
        assert "Pareto" in text and "optimize-bnb" in text


class TestParetoPointSerialization:
    def test_round_trips_through_dict(self):
        point = ParetoPoint(bus_width=8, config_bits=20, test_cycles=100,
                            config_cycles=10, sessions=2)
        assert ParetoPoint.from_dict(point.to_dict()) == point

    def test_derived_total_cycles_key_is_ignored(self):
        point = ParetoPoint(bus_width=8, config_bits=20, test_cycles=100,
                            config_cycles=10, sessions=2)
        data = point.to_dict()
        data["total_cycles"] = 999  # stale derived value must not win
        rebuilt = ParetoPoint.from_dict(data)
        assert rebuilt.total_cycles == 110
