"""CampaignStore durability: append, dedupe, tolerate kills, merge."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, StoreError
from repro.api import Experiment
from repro.api.results import SCHEMA_VERSION
from repro.campaign import CampaignStore, config_hash, make_record, merge_stores


def _experiment(width=8, architecture="mux-bus") -> Experiment:
    return (Experiment("itc02-d695")
            .with_architecture(architecture)
            .with_bus_width(width))


def _record(width=8, architecture="mux-bus", **extra):
    experiment = _experiment(width, architecture)
    result = experiment.run()
    record = make_record(
        experiment, result,
        config_hash=config_hash(experiment), elapsed_s=0.25,
    )
    record.update(extra)
    return record


class TestAppendAndRead:
    def test_roundtrip(self, tmp_path):
        store = CampaignStore(tmp_path / "s.jsonl")
        record = _record()
        assert store.append(record)
        assert record["hash"] in store
        [(digest, result)] = store.results().items()
        assert digest == record["hash"]
        assert result == _experiment().run()  # reconstructed == fresh

    def test_records_are_self_describing(self, tmp_path):
        store = CampaignStore(tmp_path / "s.jsonl")
        store.append(_record())
        [loaded] = store.records()
        assert loaded["schema"] == SCHEMA_VERSION
        assert loaded["elapsed_s"] == 0.25
        assert loaded["config"]["architecture"] == "mux-bus"
        assert loaded["workload"]["kind"] == "cores"

    def test_duplicate_hash_not_appended(self, tmp_path):
        store = CampaignStore(tmp_path / "s.jsonl")
        record = _record()
        assert store.append(record)
        assert not store.append(record)
        assert len(store.path.read_text().splitlines()) == 1

    def test_fresh_handle_sees_disk_state(self, tmp_path):
        path = tmp_path / "s.jsonl"
        CampaignStore(path).append(_record())
        reopened = CampaignStore(path)
        assert len(reopened) == 1
        assert not reopened.append(_record())

    def test_replace_appends_and_last_wins(self, tmp_path):
        store = CampaignStore(tmp_path / "s.jsonl")
        first = _record(elapsed_s=1.0)
        second = dict(first, elapsed_s=2.0)
        store.append(first)
        assert store.append(second, replace=True)
        assert len(store.path.read_text().splitlines()) == 2
        assert len(store) == 1
        assert store.latest()[first["hash"]]["elapsed_s"] == 2.0

    def test_missing_file_is_empty(self, tmp_path):
        store = CampaignStore(tmp_path / "absent.jsonl")
        assert store.records() == [] and len(store) == 0


class TestCrashTolerance:
    def test_truncated_tail_line_skipped(self, tmp_path):
        """A writer killed mid-append leaves a partial line; readers
        skip it and appends keep working."""
        store = CampaignStore(tmp_path / "s.jsonl")
        store.append(_record(width=8))
        with open(store.path, "a") as handle:
            handle.write('{"schema": 1, "hash": "dead')  # no newline
        survivor = CampaignStore(store.path)
        assert len(survivor.records()) == 1
        assert survivor.skipped_lines == 1
        assert survivor.append(_record(width=16))
        assert len(CampaignStore(store.path)) == 2

    def test_shapeless_record_skipped(self, tmp_path):
        store = CampaignStore(tmp_path / "s.jsonl")
        store.path.write_text('{"schema": 1}\n[1, 2]\n')
        assert store.records() == []
        assert store.skipped_lines == 2

    def test_newer_schema_refused(self, tmp_path):
        store = CampaignStore(tmp_path / "s.jsonl")
        record = _record(schema=SCHEMA_VERSION + 1)
        store.append(record)
        with pytest.raises(StoreError, match="newer"):
            CampaignStore(store.path).records()


class TestNaming:
    def test_for_campaign_builds_path(self, tmp_path):
        store = CampaignStore.for_campaign("nightly", tmp_path)
        assert store.path == tmp_path / "nightly.jsonl"
        assert store.name == "nightly"

    @pytest.mark.parametrize("bad", ["", "a/b", "../up", ".hidden"])
    def test_for_campaign_rejects_path_tricks(self, bad, tmp_path):
        with pytest.raises(ConfigurationError):
            CampaignStore.for_campaign(bad, tmp_path)


class TestMerge:
    def test_merge_is_union_sorted_by_hash(self, tmp_path):
        a = CampaignStore(tmp_path / "a.jsonl")
        b = CampaignStore(tmp_path / "b.jsonl")
        a.append(_record(width=8))
        a.append(_record(width=12))
        b.append(_record(width=16))
        merged = merge_stores([a, b], tmp_path / "m.jsonl")
        assert len(merged) == 3
        digests = [record["hash"] for record in merged.records()]
        assert digests == sorted(digests)

    def test_merge_order_independent_bytes(self, tmp_path):
        a = CampaignStore(tmp_path / "a.jsonl")
        b = CampaignStore(tmp_path / "b.jsonl")
        a.append(_record(width=8))
        b.append(_record(width=16))
        merge_stores([a, b], tmp_path / "ab.jsonl")
        merge_stores([b, a], tmp_path / "ba.jsonl")
        assert ((tmp_path / "ab.jsonl").read_bytes()
                == (tmp_path / "ba.jsonl").read_bytes())

    def test_merge_dedupes_by_hash(self, tmp_path):
        a = CampaignStore(tmp_path / "a.jsonl")
        b = CampaignStore(tmp_path / "b.jsonl")
        a.append(_record(width=8, elapsed_s=1.0))
        b.append(_record(width=8, elapsed_s=2.0))
        merged = merge_stores([a, b], tmp_path / "m.jsonl")
        [record] = merged.records()
        assert record["elapsed_s"] == 2.0  # later source wins

    def test_merge_accepts_paths(self, tmp_path):
        a = CampaignStore(tmp_path / "a.jsonl")
        a.append(_record())
        merged = merge_stores([str(a.path)], str(tmp_path / "m.jsonl"))
        assert len(merged) == 1

    def test_merge_onto_source_refused(self, tmp_path):
        a = CampaignStore(tmp_path / "a.jsonl")
        a.append(_record())
        with pytest.raises(StoreError, match="source"):
            merge_stores([a], a.path)
        assert len(a) == 1  # untouched
