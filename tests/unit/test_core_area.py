"""Unit tests for the section 3.3 area-style comparison models."""

from __future__ import annotations

from repro.core.area import (
    compare_styles,
    decoder_literals,
    optimized_gate_estimate,
    pass_transistor_estimate,
)
from repro.core.generator import generate_cas


class TestStyleComparison:
    def test_pass_transistor_beats_cells_when_large(self):
        # Section 3.3: pass transistors "solve the CAS area problem for
        # large width test busses".
        design = generate_cas(6, 3)
        comparison = compare_styles(design)
        assert comparison.pass_transistor_ge < comparison.cell_ge
        assert comparison.optimized_ge < comparison.cell_ge

    def test_fields_propagated(self):
        design = generate_cas(4, 2)
        comparison = compare_styles(design)
        assert (comparison.n, comparison.p) == (4, 2)
        assert comparison.m == design.m
        assert comparison.k == design.k
        assert comparison.cell_count == design.area.cell_count

    def test_monotone_in_p(self):
        small = compare_styles(generate_cas(5, 1))
        large = compare_styles(generate_cas(5, 3))
        assert small.pass_transistor_ge < large.pass_transistor_ge
        assert small.optimized_ge < large.optimized_ge

    def test_decoder_literals_positive(self):
        design = generate_cas(4, 2)
        assert decoder_literals(design) > 0

    def test_estimates_positive(self):
        design = generate_cas(3, 1)
        assert optimized_gate_estimate(design) > 0
        assert pass_transistor_estimate(design) > 0
