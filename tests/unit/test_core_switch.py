"""Unit and property tests for switch schemes and enumeration policies."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.core.switch import (
    POLICIES,
    SwitchScheme,
    enumerate_schemes,
    scheme_count,
    validate_width,
)

np_pairs = st.tuples(st.integers(1, 6), st.integers(1, 6)).filter(
    lambda t: t[1] <= t[0]
)


class TestSchemeValidation:
    def test_valid_scheme(self):
        scheme = SwitchScheme(n=4, p=2, wire_of_port=(2, 0))
        assert scheme.port_of_wire == {2: 0, 0: 1}
        assert scheme.switched_wires == {0, 2}
        assert scheme.bypassed_wires == (1, 3)

    def test_duplicate_wire_rejected(self):
        with pytest.raises(ConfigurationError, match="two ports"):
            SwitchScheme(n=4, p=2, wire_of_port=(1, 1))

    def test_out_of_range_wire_rejected(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            SwitchScheme(n=3, p=1, wire_of_port=(3,))

    def test_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError, match="maps"):
            SwitchScheme(n=4, p=2, wire_of_port=(0, 1, 2))

    def test_p_greater_than_n_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_width(2, 3)

    def test_zero_width_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_width(0, 0)

    def test_describe_mentions_heuristic_pairing(self):
        scheme = SwitchScheme(n=3, p=1, wire_of_port=(2,))
        assert scheme.describe() == "e2->o0/i0->s2"


class TestEnumeration:
    def test_all_policy_is_permutations(self):
        schemes = enumerate_schemes(4, 2, "all")
        assert len(schemes) == 12
        assert len(set(schemes)) == 12

    def test_order_preserving_is_combinations(self):
        schemes = enumerate_schemes(5, 2, "order_preserving")
        assert len(schemes) == math.comb(5, 2)
        for scheme in schemes:
            assert list(scheme.wire_of_port) == sorted(scheme.wire_of_port)

    def test_contiguous_windows(self):
        schemes = enumerate_schemes(5, 3, "contiguous")
        assert [s.wire_of_port for s in schemes] == [
            (0, 1, 2), (1, 2, 3), (2, 3, 4)
        ]

    def test_identity_single_scheme(self):
        schemes = enumerate_schemes(6, 4, "identity")
        assert len(schemes) == 1
        assert schemes[0].wire_of_port == (0, 1, 2, 3)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scheme policy"):
            enumerate_schemes(3, 1, "random")
        with pytest.raises(ConfigurationError, match="unknown scheme policy"):
            scheme_count(3, 1, "random")

    def test_enumeration_is_deterministic(self):
        assert enumerate_schemes(5, 3) == enumerate_schemes(5, 3)


class TestCounts:
    @settings(max_examples=50, deadline=None)
    @given(np_pairs, st.sampled_from(POLICIES))
    def test_count_matches_enumeration(self, np, policy):
        n, p = np
        assert scheme_count(n, p, policy) == len(enumerate_schemes(n, p, policy))

    @settings(max_examples=50, deadline=None)
    @given(np_pairs)
    def test_policy_ordering(self, np):
        n, p = np
        # all >= order_preserving >= contiguous >= identity
        counts = [scheme_count(n, p, policy) for policy in POLICIES]
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] == 1

    def test_table1_permutation_counts(self):
        # The scheme counts behind every Table 1 row.
        expected = {
            (3, 1): 3, (4, 1): 4, (4, 2): 12, (4, 3): 24,
            (5, 1): 5, (5, 2): 20, (5, 3): 60,
            (6, 1): 6, (6, 2): 30, (6, 3): 120, (6, 5): 720,
            (8, 4): 1680,
        }
        for (n, p), count in expected.items():
            assert scheme_count(n, p) == count

    @settings(max_examples=30, deadline=None)
    @given(np_pairs)
    def test_all_schemes_injective(self, np):
        n, p = np
        for scheme in enumerate_schemes(n, p):
            assert len(set(scheme.wire_of_port)) == p

    @settings(max_examples=30, deadline=None)
    @given(np_pairs)
    def test_bypassed_plus_switched_partition_bus(self, np):
        n, p = np
        for scheme in enumerate_schemes(n, p, "order_preserving"):
            wires = set(scheme.bypassed_wires) | scheme.switched_wires
            assert wires == set(range(n))
            assert not set(scheme.bypassed_wires) & scheme.switched_wires
