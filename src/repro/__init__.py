"""repro -- reproduction of "CAS-BUS: A Scalable and Reconfigurable Test
Access Mechanism for Systems on a Chip" (Benabdenbi, Maroufi, Marzouki;
DATE 2000).

The package implements the paper's Core Access Switch (CAS) and test
bus, the P1500-style wrapper, scan/BIST/external/hierarchical core test
substrates, a cycle-accurate four-valued system simulator, a test
scheduler exploiting the TAM's reconfigurability, and baseline TAM
architectures for comparison.  See DESIGN.md for the system inventory
and EXPERIMENTS.md for the paper-versus-measured record.

Quickstart::

    from repro import generate_cas, fig1_soc, CasBusTamDesign

    design = generate_cas(4, 2)          # Table 1 quantities + netlist
    print(design.m, design.k, design.area.cell_count)

    tam = CasBusTamDesign.for_soc(fig1_soc())
    result = tam.run()                   # full cycle-accurate test
    assert result.passed
"""

__version__ = "1.0.0"

from repro import values
from repro.errors import (
    ConfigurationError,
    ReproError,
    ScheduleError,
    SimulationError,
    SynthesisError,
    VerificationError,
)
from repro.core import (
    CasDesign,
    CasGenerator,
    CoreAccessSwitch,
    InstructionSet,
    SwitchScheme,
    generate_cas,
)
from repro.core.tam import CasBusTamDesign
from repro.soc import CoreSpec, SocSpec, TestMethod, fig1_soc
from repro.sim import (
    CoreAssignment,
    SessionExecutor,
    SessionPlan,
    TestPlan,
    build_system,
)

__all__ = [
    "values",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "SynthesisError",
    "ScheduleError",
    "VerificationError",
    "CasDesign",
    "CasGenerator",
    "CoreAccessSwitch",
    "InstructionSet",
    "SwitchScheme",
    "generate_cas",
    "CasBusTamDesign",
    "CoreSpec",
    "SocSpec",
    "TestMethod",
    "fig1_soc",
    "CoreAssignment",
    "SessionExecutor",
    "SessionPlan",
    "TestPlan",
    "build_system",
    "__version__",
]
