"""repro -- reproduction of "CAS-BUS: A Scalable and Reconfigurable Test
Access Mechanism for Systems on a Chip" (Benabdenbi, Maroufi, Marzouki;
DATE 2000).

The package implements the paper's Core Access Switch (CAS) and test
bus, the P1500-style wrapper, scan/BIST/external/hierarchical core test
substrates, a cycle-accurate four-valued system simulator, a test
scheduler exploiting the TAM's reconfigurability, and baseline TAM
architectures for comparison.  See README.md for the system tour and
the :mod:`repro.api` quickstart.

Quickstart::

    from repro import Experiment, fig1_soc, generate_cas, run_sweep

    design = generate_cas(4, 2)          # Table 1 quantities + netlist
    print(design.m, design.k, design.area.cell_count)

    result = Experiment(fig1_soc()).with_architecture("casbus").run()
    assert result.passed                 # full cycle-accurate test

    from repro.api import list_architectures
    results = run_sweep(fig1_soc(), architectures=list_architectures(),
                        bus_widths=(4,))  # every TAM style, in parallel
"""

__version__ = "1.0.0"

from repro import values
from repro.errors import (
    ConfigurationError,
    ReproError,
    ScheduleError,
    SimulationError,
    SynthesisError,
    VerificationError,
)
from repro.core import (
    CasDesign,
    CasGenerator,
    CoreAccessSwitch,
    InstructionSet,
    SwitchScheme,
    generate_cas,
)
from repro.core.tam import CasBusTamDesign
from repro.soc import CoreSpec, SocSpec, TestMethod, fig1_soc
from repro.sim import (
    CoreAssignment,
    SessionExecutor,
    SessionPlan,
    TestPlan,
    build_system,
)
from repro.api import (
    Experiment,
    RunConfig,
    RunResult,
    get_architecture,
    get_scheduler,
    list_architectures,
    list_schedulers,
    run_many,
    run_sweep,
)

__all__ = [
    "values",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "SynthesisError",
    "ScheduleError",
    "VerificationError",
    "CasDesign",
    "CasGenerator",
    "CoreAccessSwitch",
    "InstructionSet",
    "SwitchScheme",
    "generate_cas",
    "CasBusTamDesign",
    "CoreSpec",
    "SocSpec",
    "TestMethod",
    "fig1_soc",
    "CoreAssignment",
    "SessionExecutor",
    "SessionPlan",
    "TestPlan",
    "build_system",
    "Experiment",
    "RunConfig",
    "RunResult",
    "get_architecture",
    "get_scheduler",
    "list_architectures",
    "list_schedulers",
    "run_many",
    "run_sweep",
    "__version__",
]
