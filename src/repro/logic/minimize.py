"""Two-level minimisation: exact Quine-McCluskey and an espresso-style
heuristic, with a size-based dispatcher.

The CAS generator uses this to shrink the instruction decoder: each
switch-control signal is an incompletely specified function of the
``k``-bit instruction code (codes ``>= m`` never occur and form the
don't-care set).  The paper's gate counts come from a commercial
synthesiser; this module is the reproduction's stand-in for that
optimisation step.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.errors import SynthesisError
from repro.logic.cover import Cover
from repro.logic.cube import Cube, popcount

#: Above this many care minterms the dispatcher switches to the heuristic.
EXACT_MINTERM_LIMIT = 4096


def minimize(
    on_minterms: Iterable[int],
    num_vars: int,
    dc_minterms: Iterable[int] = (),
) -> Cover:
    """Minimise an incompletely specified single-output function.

    Chooses the exact algorithm when the care space is small enough,
    otherwise the heuristic.  The returned cover is always verified to
    agree with the specification; failure raises
    :class:`~repro.errors.SynthesisError`.
    """
    on = sorted(set(on_minterms))
    dc = sorted(set(dc_minterms))
    _check_inputs(on, dc, num_vars)
    if not on:
        return Cover.constant(False, num_vars)
    space = 1 << num_vars
    if len(on) + len(dc) >= space:
        cover = Cover.constant(True, num_vars)
        return cover
    if len(on) + len(dc) <= EXACT_MINTERM_LIMIT:
        cover = minimize_exact(on, num_vars, dc)
    else:
        cover = minimize_heuristic(on, num_vars, dc)
    off = _off_set(on, dc, num_vars)
    if not cover.agrees_with(on, off):
        raise SynthesisError("minimised cover does not implement its function")
    return cover


def minimize_exact(
    on_minterms: Iterable[int],
    num_vars: int,
    dc_minterms: Iterable[int] = (),
) -> Cover:
    """Quine-McCluskey prime generation + essential/greedy covering."""
    on = sorted(set(on_minterms))
    dc = sorted(set(dc_minterms))
    _check_inputs(on, dc, num_vars)
    if not on:
        return Cover.constant(False, num_vars)
    primes = prime_implicants(on, dc, num_vars)
    chosen = select_cover(primes, on, num_vars)
    return Cover(num_vars=num_vars, cubes=tuple(chosen))


def minimize_heuristic(
    on_minterms: Iterable[int],
    num_vars: int,
    dc_minterms: Iterable[int] = (),
) -> Cover:
    """Espresso-style expand + irredundant pass over the on-set.

    Each on-minterm is expanded greedily against the off-set (largest
    cube that stays legal), then redundant cubes are removed.  Not
    guaranteed minimal, but safe for spaces where QM would blow up.
    """
    on = sorted(set(on_minterms))
    dc = set(dc_minterms)
    _check_inputs(on, sorted(dc), num_vars)
    if not on:
        return Cover.constant(False, num_vars)
    off = _off_set(on, sorted(dc), num_vars)
    expanded: list[Cube] = []
    covered: set[int] = set()
    for point in on:
        if point in covered:
            continue
        cube = _expand_against_off(Cube.minterm(point, num_vars), off, num_vars)
        expanded.append(cube)
        covered.update(p for p in cube.points(num_vars) if p in set(on) or p in dc)
    pruned = _irredundant(expanded, on, num_vars)
    return Cover(num_vars=num_vars, cubes=tuple(pruned))


def prime_implicants(
    on_minterms: Sequence[int],
    dc_minterms: Sequence[int],
    num_vars: int,
) -> list[Cube]:
    """All prime implicants of the function (QM iterative merging)."""
    current: set[Cube] = {
        Cube.minterm(m, num_vars) for m in set(on_minterms) | set(dc_minterms)
    }
    primes: set[Cube] = set()
    while current:
        merged_away: set[Cube] = set()
        next_level: set[Cube] = set()
        by_key: dict[tuple[int, int], list[Cube]] = defaultdict(list)
        for cube in current:
            by_key[(cube.mask, popcount(cube.value))].append(cube)
        for (mask, ones), group in by_key.items():
            partners = by_key.get((mask, ones + 1), ())
            for a in group:
                for b in partners:
                    if popcount(a.value ^ b.value) == 1:
                        next_level.add(a.merged(b))
                        merged_away.add(a)
                        merged_away.add(b)
        primes.update(current - merged_away)
        current = next_level
    return sorted(primes)


def select_cover(
    primes: Sequence[Cube],
    on_minterms: Sequence[int],
    num_vars: int,
) -> list[Cube]:
    """Pick a small subset of primes covering the on-set.

    Essential primes are taken first; the remainder is covered greedily
    by (most new minterms, fewest literals).
    """
    remaining = set(on_minterms)
    coverage: dict[Cube, set[int]] = {
        prime: {m for m in remaining if prime.covers_point(m)} for prime in primes
    }
    chosen: list[Cube] = []

    minterm_owners: dict[int, list[Cube]] = defaultdict(list)
    for prime, points in coverage.items():
        for m in points:
            minterm_owners[m].append(prime)
    essentials = {owners[0] for owners in minterm_owners.values() if len(owners) == 1}
    for prime in sorted(essentials):
        chosen.append(prime)
        remaining -= coverage[prime]

    while remaining:
        best = max(
            (p for p in primes if p not in chosen),
            key=lambda p: (len(coverage[p] & remaining), -p.num_literals()),
            default=None,
        )
        if best is None or not coverage[best] & remaining:
            raise SynthesisError("primes cannot cover the on-set")
        chosen.append(best)
        remaining -= coverage[best]
    return chosen


def _expand_against_off(cube: Cube, off: set[int], num_vars: int) -> Cube:
    """Greedily drop literals while the cube stays off the off-set."""
    for bit_index in range(num_vars):
        candidate = cube.expand_bit(bit_index)
        if candidate is cube:
            continue
        if not any(candidate.covers_point(point) for point in off):
            cube = candidate
    return cube


def _irredundant(cubes: list[Cube], on: Sequence[int], num_vars: int) -> list[Cube]:
    """Remove cubes whose on-set contribution is covered by the others."""
    kept = list(cubes)
    changed = True
    while changed:
        changed = False
        for index, cube in enumerate(kept):
            others = kept[:index] + kept[index + 1 :]
            if all(
                any(o.covers_point(m) for o in others)
                for m in on
                if cube.covers_point(m)
            ):
                kept = others
                changed = True
                break
    return kept


def _off_set(on: Sequence[int], dc: Sequence[int], num_vars: int) -> list[int]:
    care = set(on) | set(dc)
    return [m for m in range(1 << num_vars) if m not in care]


def _check_inputs(on: Sequence[int], dc: Sequence[int], num_vars: int) -> None:
    if num_vars < 0:
        raise ValueError("num_vars must be non-negative")
    space = 1 << num_vars
    for m in list(on) + list(dc):
        if not 0 <= m < space:
            raise ValueError(f"minterm {m} out of range for {num_vars} variables")
    overlap = set(on) & set(dc)
    if overlap:
        raise ValueError(f"minterms both on and don't-care: {sorted(overlap)[:5]}")
