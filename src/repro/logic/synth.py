"""Synthesis of minimised covers into netlist gates.

Multi-output decoders (like the CAS switch-control decoder) share many
product terms and sub-products; this module performs lightweight
multi-level sharing: every AND/OR node is built as a left-deep tree over
canonically sorted operands and cached, so common prefixes are
instantiated once across *all* outputs.  This is the main reason the
generated CAS decoder tracks the paper's synthesised gate counts rather
than the naive one-hot decode size.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import SynthesisError
from repro.logic.cover import Cover
from repro.logic.cube import Cube
from repro.netlist.netlist import Netlist


class CoverSynthesizer:
    """Emit gates for covers over a shared set of input nets.

    All covers passed to :meth:`synthesize` must be over the same
    ``num_vars`` input variables, bound positionally to ``input_nets``.
    Input inversions, product terms and every intermediate AND2/OR2
    node are cached and shared across outputs.
    """

    def __init__(self, netlist: Netlist, input_nets: Sequence[str]) -> None:
        self.netlist = netlist
        self.input_nets = list(input_nets)
        self._inverted: dict[int, str] = {}
        # (op, left_net, right_net) -> output net, operands sorted.
        self._node_cache: dict[tuple[str, str, str], str] = {}

    def synthesize(self, cover: Cover, output_net: str) -> str:
        """Emit gates computing ``cover`` onto ``output_net``.

        Returns the output net name.  Constant covers become CONST cells.
        """
        if cover.num_vars != len(self.input_nets):
            raise SynthesisError(
                f"cover has {cover.num_vars} vars, "
                f"synthesizer bound to {len(self.input_nets)} nets"
            )
        if cover.is_constant_false():
            self.netlist.add_gate("CONST0", (), output_net)
            return output_net
        if cover.is_constant_true():
            self.netlist.add_gate("CONST1", (), output_net)
            return output_net
        term_nets = [self._product_term(cube) for cube in cover.cubes]
        result = self._tree("OR", term_nets)
        self.netlist.add_gate("BUF", (result,), output_net)
        return output_net

    def or_of(self, nets: Sequence[str], output_net: str) -> str:
        """Shared OR of arbitrary nets onto a named output."""
        result = self._tree("OR", list(nets))
        self.netlist.add_gate("BUF", (result,), output_net)
        return output_net

    # -- internals -------------------------------------------------------

    def _product_term(self, cube: Cube) -> str:
        literals: list[str] = []
        for index, net in enumerate(self.input_nets):
            bit = 1 << index
            if not cube.mask & bit:
                continue
            if cube.value & bit:
                literals.append(net)
            else:
                literals.append(self._inverted_input(index))
        if not literals:
            raise SynthesisError("universe cube reached product-term emission")
        return self._tree("AND", literals)

    def _tree(self, op: str, nets: list[str]) -> str:
        """Left-deep tree over canonically sorted operands, cached.

        Sorting makes shared prefixes structural, so two product terms
        differing only in their last literal share all but one gate.
        """
        ordered = sorted(set(nets))
        current = ordered[0]
        for net in ordered[1:]:
            current = self._node(op, current, net)
        return current

    def _node(self, op: str, a: str, b: str) -> str:
        left, right = (a, b) if a <= b else (b, a)
        key = (op, left, right)
        cached = self._node_cache.get(key)
        if cached is not None:
            return cached
        out = self.netlist.fresh_net("g")
        self.netlist.add_gate(op, (left, right), out)
        self._node_cache[key] = out
        return out

    def _inverted_input(self, index: int) -> str:
        cached = self._inverted.get(index)
        if cached is not None:
            return cached
        source = self.input_nets[index]
        inv_net = self.netlist.fresh_net(f"{source}_n")
        self.netlist.add_gate("INV", (source,), inv_net)
        self._inverted[index] = inv_net
        return inv_net


def synthesize_covers(
    netlist: Netlist,
    input_nets: Sequence[str],
    covers: Mapping[str, Cover],
) -> dict[str, str]:
    """Convenience wrapper: synthesise several named covers at once.

    Returns a mapping from cover name to its output net (same as the
    key, provided for symmetry with callers that rename nets).
    """
    synthesizer = CoverSynthesizer(netlist, input_nets)
    result = {}
    for output_net, cover in covers.items():
        result[output_net] = synthesizer.synthesize(cover, output_net)
    return result
