"""Cubes (product terms) over a fixed set of boolean variables.

A cube is stored as a ``(mask, value)`` pair of bit vectors: bit ``i`` of
``mask`` is 1 when variable ``i`` is specified in the product term, and in
that case bit ``i`` of ``value`` gives the required polarity.  Unspecified
positions of ``value`` are kept at 0 so cubes hash and compare canonically.

This representation makes the two operations minimisation cares about --
containment tests and distance-1 merging -- single bitwise expressions.
"""

from __future__ import annotations

from dataclasses import dataclass


def popcount(x: int) -> int:
    """Number of set bits in a non-negative int."""
    return bin(x).count("1")


@dataclass(frozen=True, order=True)
class Cube:
    """A product term over ``num_vars`` boolean variables.

    Attributes:
        mask: bit ``i`` set means variable ``i`` appears in the term.
        value: required polarity for the variables present in ``mask``.
    """

    mask: int
    value: int

    def __post_init__(self) -> None:
        if self.mask < 0 or self.value < 0:
            raise ValueError("cube fields must be non-negative")
        if self.value & ~self.mask:
            raise ValueError(
                f"cube value {self.value:#x} sets bits outside mask {self.mask:#x}"
            )

    @classmethod
    def minterm(cls, point: int, num_vars: int) -> "Cube":
        """The fully specified cube for one point of the input space."""
        full = (1 << num_vars) - 1
        if point & ~full:
            raise ValueError(f"minterm {point} out of range for {num_vars} vars")
        return cls(mask=full, value=point)

    @classmethod
    def universe(cls) -> "Cube":
        """The tautological cube (no literals)."""
        return cls(mask=0, value=0)

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse ``'01-'`` notation; index 0 of the string is variable 0."""
        mask = 0
        value = 0
        for index, char in enumerate(text):
            if char == "-":
                continue
            if char == "1":
                mask |= 1 << index
                value |= 1 << index
            elif char == "0":
                mask |= 1 << index
            else:
                raise ValueError(f"bad cube character {char!r} in {text!r}")
        return cls(mask=mask, value=value)

    def to_string(self, num_vars: int) -> str:
        """Render as ``'01-'`` notation, variable 0 first."""
        chars = []
        for index in range(num_vars):
            bit = 1 << index
            if not self.mask & bit:
                chars.append("-")
            elif self.value & bit:
                chars.append("1")
            else:
                chars.append("0")
        return "".join(chars)

    def num_literals(self) -> int:
        """Number of literals (specified variables) in the term."""
        return popcount(self.mask)

    def size(self, num_vars: int) -> int:
        """Number of minterms covered within a ``num_vars``-wide space."""
        return 1 << (num_vars - self.num_literals())

    def covers_point(self, point: int) -> bool:
        """True when the minterm ``point`` satisfies this product term."""
        return (point & self.mask) == self.value

    def covers_cube(self, other: "Cube") -> bool:
        """True when every minterm of ``other`` is covered by ``self``."""
        if self.mask & ~other.mask:
            return False
        return (other.value & self.mask) == self.value

    def intersects(self, other: "Cube") -> bool:
        """True when the two terms share at least one minterm."""
        common = self.mask & other.mask
        return (self.value & common) == (other.value & common)

    def intersection(self, other: "Cube") -> "Cube | None":
        """The cube of shared minterms, or None when disjoint."""
        if not self.intersects(other):
            return None
        return Cube(mask=self.mask | other.mask, value=self.value | other.value)

    def merge_distance(self, other: "Cube") -> int:
        """Hamming distance usable by the QM merge step.

        Returns 1 exactly when the cubes have identical masks and differ
        in a single specified bit (so they merge); any other relation
        returns a value != 1.
        """
        if self.mask != other.mask:
            return -1
        return popcount(self.value ^ other.value)

    def merged(self, other: "Cube") -> "Cube":
        """Combine two distance-1 cubes, dropping the differing variable."""
        diff = self.value ^ other.value
        if self.mask != other.mask or popcount(diff) != 1:
            raise ValueError("cubes are not distance-1 mergeable")
        new_mask = self.mask & ~diff
        return Cube(mask=new_mask, value=self.value & new_mask)

    def expand_bit(self, bit_index: int) -> "Cube":
        """Drop variable ``bit_index`` from the term (cover more points)."""
        bit = 1 << bit_index
        if not self.mask & bit:
            return self
        new_mask = self.mask & ~bit
        return Cube(mask=new_mask, value=self.value & new_mask)

    def points(self, num_vars: int):
        """Iterate every minterm covered by this cube (small spaces only)."""
        free_bits = [i for i in range(num_vars) if not self.mask & (1 << i)]
        count = 1 << len(free_bits)
        for assignment in range(count):
            point = self.value
            for j, bit_index in enumerate(free_bits):
                if assignment & (1 << j):
                    point |= 1 << bit_index
            yield point
