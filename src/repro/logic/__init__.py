"""Two-level logic minimisation substrate.

The CAS instruction decoder maps a ``k``-bit instruction code to the
switch control signals.  A naive one-hot decode of ``m`` instructions is
far larger than the synthesised gate counts the paper reports (Table 1),
because Synopsys minimises the decode logic.  This package supplies the
equivalent mechanism: cube/cover data structures, an exact
Quine-McCluskey minimiser with greedy covering, an espresso-style
heuristic minimiser for larger spaces, and cover-to-netlist synthesis
with shared product terms.
"""

from repro.logic.cube import Cube
from repro.logic.cover import Cover
from repro.logic.minimize import minimize, minimize_exact, minimize_heuristic

__all__ = [
    "Cube",
    "Cover",
    "minimize",
    "minimize_exact",
    "minimize_heuristic",
]
