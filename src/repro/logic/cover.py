"""Covers: sums of product terms implementing a single boolean function."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.logic.cube import Cube


@dataclass(frozen=True)
class Cover:
    """A sum-of-products cover of a single-output boolean function.

    Attributes:
        num_vars: width of the input space.
        cubes: the product terms, OR-ed together.
    """

    num_vars: int
    cubes: tuple[Cube, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        full = (1 << self.num_vars) - 1
        for cube in self.cubes:
            if cube.mask & ~full:
                raise ValueError(
                    f"cube {cube} uses variables beyond num_vars={self.num_vars}"
                )

    @classmethod
    def from_minterms(cls, minterms: Iterable[int], num_vars: int) -> "Cover":
        """Build the canonical (one cube per minterm) cover."""
        cubes = tuple(Cube.minterm(m, num_vars) for m in sorted(set(minterms)))
        return cls(num_vars=num_vars, cubes=cubes)

    @classmethod
    def constant(cls, value: bool, num_vars: int) -> "Cover":
        """The constant-0 (empty) or constant-1 (universe) cover."""
        if value:
            return cls(num_vars=num_vars, cubes=(Cube.universe(),))
        return cls(num_vars=num_vars, cubes=())

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self):
        return iter(self.cubes)

    def evaluate(self, point: int) -> bool:
        """Evaluate the function at one input point."""
        return any(cube.covers_point(point) for cube in self.cubes)

    def on_set(self) -> set[int]:
        """Enumerate all covered minterms.  Intended for small spaces."""
        points: set[int] = set()
        for cube in self.cubes:
            points.update(cube.points(self.num_vars))
        return points

    def num_literals(self) -> int:
        """Total literal count -- the standard two-level cost metric."""
        return sum(cube.num_literals() for cube in self.cubes)

    def is_constant_false(self) -> bool:
        return not self.cubes

    def is_constant_true(self) -> bool:
        return any(cube.mask == 0 for cube in self.cubes)

    def covers_minterms(self, minterms: Iterable[int]) -> bool:
        """True when every given minterm is covered."""
        return all(self.evaluate(m) for m in minterms)

    def agrees_with(
        self,
        on_minterms: Sequence[int],
        off_minterms: Sequence[int],
    ) -> bool:
        """Check the cover implements a (possibly incompletely specified)
        function: covers the whole on-set, touches none of the off-set."""
        if not self.covers_minterms(on_minterms):
            return False
        return not any(self.evaluate(m) for m in off_minterms)
