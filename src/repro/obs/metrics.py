"""Typed metrics: counters, gauges, histograms, and their registry.

Two usage modes share these types:

* **Registry-bound** -- ``obs.counter("cache.atpg.hits").inc()``
  routes through the active collector's :class:`MetricsRegistry`; when
  observability is disabled the module helpers hand back shared no-op
  instances, so call sites never branch.
* **Standalone** -- identity-sensitive components own their instances
  directly (:class:`~repro.schedule.model.CostModel` keeps its
  hit/miss counters as plain :class:`Counter` objects), so their
  reported stats stay a pure function of the work they did, never of
  whatever else the process observed.

Registries are process-local.  For multiprocess collection a worker
returns :meth:`MetricsRegistry.snapshot` (JSON-ready, picklable) and
the parent folds it in with :meth:`MetricsRegistry.merge`: counters
and histograms accumulate, gauges keep the merged-last value.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.obs import _state


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observed values (count/total/min/max).

    Deliberately bucket-free: the consumers (profile tables, the
    bench gate, the dashboard) want means and extremes, and a fixed
    bucket layout would be one more thing to version in traces.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _Noop:
    """Absorbs every metric call; handed out while obs is disabled."""

    __slots__ = ()
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NOOP_METRIC = _Noop()


class MetricsRegistry:
    """Name-keyed metric store with snapshot/merge for multiprocess use.

    Get-or-create is locked; the returned metric objects mutate
    without a lock -- CPython's atomic attribute stores make lost
    updates a non-issue for the statistics these feed, and the hot
    paths (cache hits inside compiled-kernel runs) cannot afford a
    lock round trip per increment.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(name, Counter())
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(name, Gauge())
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(name, Histogram())
        return metric

    def snapshot(self) -> dict:
        """JSON-ready (and picklable) state, keys sorted for stable
        serialization."""
        with self._lock:
            return {
                "counters": {
                    name: self._counters[name].value
                    for name in sorted(self._counters)
                },
                "gauges": {
                    name: self._gauges[name].value
                    for name in sorted(self._gauges)
                },
                "histograms": {
                    name: {
                        "count": hist.count,
                        "total": hist.total,
                        "min": hist.min,
                        "max": hist.max,
                    }
                    for name, hist in sorted(self._histograms.items())
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold one :meth:`snapshot` in (a worker's, typically)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, state in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            hist.count += state["count"]
            hist.total += state["total"]
            for bound, better in (("min", min), ("max", max)):
                incoming = state[bound]
                if incoming is None:
                    continue
                current = getattr(hist, bound)
                setattr(
                    hist,
                    bound,
                    incoming if current is None else better(
                        current, incoming
                    ),
                )


# -- module helpers (active-collector routed) ---------------------------------


def counter(name: str):
    """The active registry's counter, or a no-op when disabled."""
    collector = _state.ACTIVE
    if collector is None:
        return NOOP_METRIC
    return collector.metrics.counter(name)


def gauge(name: str):
    """The active registry's gauge, or a no-op when disabled."""
    collector = _state.ACTIVE
    if collector is None:
        return NOOP_METRIC
    return collector.metrics.gauge(name)


def histogram(name: str):
    """The active registry's histogram, or a no-op when disabled."""
    collector = _state.ACTIVE
    if collector is None:
        return NOOP_METRIC
    return collector.metrics.histogram(name)


def cache_event(cache_name: str, kind: str, amount: int = 1) -> None:
    """Count one cache event (``hits``/``misses``/``evictions``).

    The one-call form :class:`~repro.sim.cache.BoundedCache` uses:
    near-free when disabled (one global read), one counter increment
    when enabled.
    """
    collector = _state.ACTIVE
    if collector is not None:
        collector.metrics.counter(
            f"cache.{cache_name}.{kind}"
        ).inc(amount)
