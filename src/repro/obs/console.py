"""The CLI rendering layer: the sanctioned ``print`` site (RL007).

Library code never prints -- it records spans and metrics.  Everything
the user *sees* flows through a :class:`Console`, which gives every
verb the same three-position verbosity knob and keeps stdout
machine-parseable under ``--json``:

* ``result``  -- the answer; always shown (stdout).
* ``info``    -- progress narration; hidden by ``--quiet``.
* ``detail``  -- per-item noise; shown only with ``--verbose``.
* ``warn``    -- problems; always shown (stderr).
* ``json``    -- a JSON document on stdout (the only stdout writer in
  ``--json`` mode; human text is rerouted to stderr there).
"""

from __future__ import annotations

import json as _json
import sys
from typing import Any, IO, Optional


class Console:
    """Verbosity-aware, json-safe text output for the CLI."""

    def __init__(
        self,
        *,
        quiet: bool = False,
        verbose: bool = False,
        json_mode: bool = False,
        stream: Optional[IO[str]] = None,
        err_stream: Optional[IO[str]] = None,
    ) -> None:
        self.quiet = quiet
        # --verbose wins over --quiet: quiet mutes narration, verbose
        # opts into per-item detail, and asking for both means "only
        # the details, please".
        self.verbose = verbose
        self.json_mode = json_mode
        self._out = stream if stream is not None else sys.stdout
        self._err = err_stream if err_stream is not None else sys.stderr

    @classmethod
    def from_args(cls, args: Any) -> "Console":
        """Build from parsed argparse flags (absent flags default off)."""
        return cls(
            quiet=getattr(args, "quiet", False),
            verbose=getattr(args, "verbose", False),
            json_mode=getattr(args, "json", False),
        )

    # -- output levels -----------------------------------------------

    def result(self, text: str = "") -> None:
        """The command's answer; in ``--json`` mode human-format
        results are dropped (the JSON document is the answer)."""
        if not self.json_mode:
            print(text, file=self._out)  # RL007: console rendering

    def info(self, text: str) -> None:
        """Progress narration; silenced by ``--quiet``."""
        if not self.quiet:
            target = self._err if self.json_mode else self._out
            print(text, file=target)  # RL007: console rendering

    def detail(self, text: str) -> None:
        """Per-item chatter; needs ``--verbose``."""
        if self.verbose:
            target = self._err if self.json_mode else self._out
            print(text, file=target)  # RL007: console rendering

    def warn(self, text: str) -> None:
        """Problems; always visible, never on stdout."""
        print(text, file=self._err)  # RL007: console rendering

    def json(self, payload: Any, *, indent: int = 2) -> None:
        """A JSON document on stdout (works in either mode)."""
        print(  # RL007: console rendering
            _json.dumps(payload, indent=indent, sort_keys=True),
            file=self._out,
        )
