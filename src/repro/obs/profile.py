"""Turn a pile of finished spans into a readable profile.

Consumes what a :class:`~repro.obs.sinks.MemorySink` (or
:func:`~repro.obs.sinks.read_trace`) holds and produces the table
behind ``repro profile <cmd>``: per-span-name call counts, total /
self / mean wall time, sorted by where the time actually went, plus
the counters and histograms collected along the way.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import SpanRecord


def build_tree(
    spans: Sequence[SpanRecord],
) -> Tuple[List[SpanRecord], Dict[str, List[SpanRecord]]]:
    """``(roots, children_by_parent_id)`` from completion-ordered spans.

    A span whose parent never made it into the trace (e.g. the parent
    was opened by a worker whose payload was lost) counts as a root,
    so a truncated trace still renders.
    """
    by_id = {record.span_id: record for record in spans}
    roots: List[SpanRecord] = []
    children: Dict[str, List[SpanRecord]] = {}
    for record in spans:
        parent = record.parent_id
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)
    for siblings in children.values():
        siblings.sort(key=lambda record: record.start_s)
    roots.sort(key=lambda record: record.start_s)
    return roots, children


class _Row:
    __slots__ = ("count", "total_s", "self_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.self_s = 0.0
        self.max_s = 0.0


def aggregate(spans: Sequence[SpanRecord]) -> Dict[str, _Row]:
    """Per-name totals; *self* time excludes same-trace child spans."""
    child_total: Dict[str, float] = {}
    for record in spans:
        if record.parent_id is not None:
            child_total[record.parent_id] = (
                child_total.get(record.parent_id, 0.0) + record.duration_s
            )
    rows: Dict[str, _Row] = {}
    for record in spans:
        row = rows.setdefault(record.name, _Row())
        row.count += 1
        row.total_s += record.duration_s
        row.self_s += max(
            record.duration_s - child_total.get(record.span_id, 0.0), 0.0
        )
        row.max_s = max(row.max_s, record.duration_s)
    return rows


def format_profile(
    spans: Sequence[SpanRecord],
    metrics: Optional[dict] = None,
) -> str:
    """The ``repro profile`` report: span table + metrics summary."""
    lines: List[str] = []
    rows = aggregate(spans)
    if rows:
        header = (
            f"{'span':<28} {'count':>7} {'total_s':>10}"
            f" {'self_s':>10} {'mean_ms':>9} {'max_ms':>9}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name, row in sorted(
            rows.items(), key=lambda item: -item[1].total_s
        ):
            mean_ms = 1e3 * row.total_s / row.count
            lines.append(
                f"{name:<28} {row.count:>7} {row.total_s:>10.3f}"
                f" {row.self_s:>10.3f} {mean_ms:>9.2f}"
                f" {1e3 * row.max_s:>9.2f}"
            )
    else:
        lines.append("(no spans recorded)")

    counters = (metrics or {}).get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<38} {counters[name]:>12}")
    histograms = (metrics or {}).get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("histograms:")
        for name in sorted(histograms):
            state = histograms[name]
            count = state.get("count", 0)
            mean = state.get("total", 0.0) / count if count else 0.0
            lines.append(
                f"  {name:<38} n={count}"
                f" mean={mean:.4g} min={state.get('min', 0.0):.4g}"
                f" max={state.get('max', 0.0):.4g}"
            )
    return "\n".join(lines)
