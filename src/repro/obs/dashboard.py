"""Live terminal dashboard for sweeps and campaigns (RL007 waived).

One updating status line on a TTY::

    [=============>------------]  42/80  52% | 30 run, 12 cached | 2.6 rec/s | ETA 0:15

On a non-TTY stream (CI logs, pipes) the in-place rewrite would smear
control characters everywhere, so the dashboard degrades to plain
progress lines at coarse intervals instead.  Rendering is throttled to
:data:`MIN_REDRAW_S` so a fast cache-replay sweep doesn't spend its
time painting the terminal.
"""

from __future__ import annotations

import sys
from typing import IO, Optional

from repro.obs.timing import perf_seconds

BAR_WIDTH = 26
MIN_REDRAW_S = 0.1
PLAIN_STEP = 10  # non-TTY: one line every N percent


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    if seconds >= 3600:
        return f"{seconds // 3600}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"
    return f"{seconds // 60}:{seconds % 60:02d}"


class SweepDashboard:
    """Progress over a known number of records, rate, and ETA."""

    def __init__(
        self,
        total: int,
        stream: Optional[IO[str]] = None,
    ) -> None:
        self.total = max(total, 0)
        self.done = 0
        self.executed = 0
        self.cached = 0
        self._stream = stream if stream is not None else sys.stderr
        self._tty = bool(getattr(self._stream, "isatty", lambda: False)())
        self._start = perf_seconds()
        self._last_draw = 0.0
        self._last_plain_pct = -PLAIN_STEP
        self._line_len = 0

    def update(
        self,
        *,
        executed: int = 0,
        cached: int = 0,
        label: str = "",
    ) -> None:
        """Record one finished unit and redraw (throttled)."""
        self.done += executed + cached
        self.executed += executed
        self.cached += cached
        now = perf_seconds()
        if self._tty:
            if now - self._last_draw >= MIN_REDRAW_S or self.done >= self.total:
                self._last_draw = now
                self._draw(label)
        else:
            pct = self._percent()
            if pct - self._last_plain_pct >= PLAIN_STEP or self.done >= self.total:
                self._last_plain_pct = pct
                print(  # RL007: console rendering
                    self._status(label), file=self._stream, flush=True
                )

    def finish(self) -> None:
        """Final redraw and, on a TTY, terminate the status line."""
        if self._tty:
            self._draw("")
            print(file=self._stream)  # RL007: console rendering
        else:
            print(  # RL007: console rendering
                self._status("done"), file=self._stream, flush=True
            )

    # -- rendering ---------------------------------------------------

    def _percent(self) -> int:
        if not self.total:
            return 100
        return int(100 * self.done / self.total)

    def _status(self, label: str) -> str:
        elapsed = perf_seconds() - self._start
        rate = self.done / elapsed if elapsed > 0 else 0.0
        remaining = self.total - self.done
        eta = _format_eta(remaining / rate) if rate > 0 else "-:--"
        text = (
            f"{self.done}/{self.total} {self._percent():3d}%"
            f" | {self.executed} run, {self.cached} cached"
            f" | {rate:.1f} rec/s | ETA {eta}"
        )
        if label:
            text += f" | {label}"
        return text

    def _draw(self, label: str) -> None:
        fill = (
            BAR_WIDTH
            if not self.total
            else int(BAR_WIDTH * self.done / self.total)
        )
        fill = min(fill, BAR_WIDTH)
        head = ">" if 0 < fill < BAR_WIDTH else ""
        bar = "=" * (fill - len(head)) + head + "-" * (BAR_WIDTH - fill)
        line = f"[{bar}] {self._status(label)}"
        pad = max(self._line_len - len(line), 0)
        self._line_len = len(line)
        print(  # RL007: console rendering
            "\r" + line + " " * pad,
            end="",
            file=self._stream,
            flush=True,
        )
