"""Span tracer: nested, timed, exception-safe sections of work.

A *span* is one named stretch of wall time with optional attributes::

    with obs.span("kernel.dispatch", cores=4) as span:
        run()
        span.set(scenarios=len(batch))

Spans nest through a per-thread stack, so a trace reconstructs the
call tree (``executor.run_plan`` > ``executor.compile`` > ...) from
``parent_id`` alone.  Exceptions propagate untouched; the span closes
first and records the error type, so a crashed run still exports a
coherent trace.

Enablement is process-global (see :mod:`repro.obs._state`) and
deliberately **never** reaches run configuration: spans observe work,
they are not part of it, which is what keeps config hashes and
``RunResult`` payloads byte-identical with tracing on or off.  While
disabled, :func:`span` hands back a shared no-op object -- the cost at
every instrumentation site is one global read and one identity check.

Worker processes do not inherit the parent's collector (spawn starts
clean; fork would share an unpicklable lock).  Pool workers wrap their
task in :func:`capture` and ship :meth:`Collector.payload` back with
the result; the parent folds it in with :meth:`Collector.absorb`.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.obs import _state
from repro.obs.metrics import MetricsRegistry
from repro.obs.timing import perf_seconds


class SpanRecord:
    """One finished span, ready for sinks and JSONL export."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "start_s",
        "duration_s",
        "attrs",
        "error",
    )

    def __init__(
        self,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        start_s: float,
        duration_s: float,
        attrs: Dict[str, Any],
        error: Optional[str] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.duration_s = duration_s
        self.attrs = attrs
        self.error = error

    def to_dict(self) -> dict:
        record = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }
        if self.error is not None:
            record["error"] = self.error
        return record

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        return cls(
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            name=payload["name"],
            start_s=payload["start_s"],
            duration_s=payload["duration_s"],
            attrs=dict(payload.get("attrs", {})),
            error=payload.get("error"),
        )

    def __repr__(self) -> str:
        return (
            f"SpanRecord({self.name!r}, id={self.span_id},"
            f" duration_s={self.duration_s:.6f})"
        )


class _LiveSpan:
    """An open span; becomes a :class:`SpanRecord` when it exits."""

    __slots__ = (
        "_collector",
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "_start",
    )

    def __init__(
        self,
        collector: "Collector",
        span_id: str,
        parent_id: Optional[str],
        name: str,
        attrs: Dict[str, Any],
    ) -> None:
        self._collector = collector
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self._start = perf_seconds()

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (counts, sizes...)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = perf_seconds() - self._start
        error = None if exc_type is None else exc_type.__name__
        self._collector._finish(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start_s=self._start,
                duration_s=duration,
                attrs=self.attrs,
                error=error,
            )
        )
        return False  # never swallow the exception


class _NoopSpan:
    """The shared do-nothing span handed out while obs is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Collector:
    """Accumulates finished spans and metrics; fans out to sinks.

    Thread-safe: the span list and id sequence are lock-guarded, and
    the nesting stack is thread-local so concurrent threads build
    independent subtrees.  Not shared across processes -- see
    :func:`capture` / :meth:`absorb` for the worker protocol.
    """

    def __init__(self, sinks: Sequence[Any] = ()) -> None:
        self.metrics = MetricsRegistry()
        self.sinks: List[Any] = list(sinks)
        self._lock = threading.Lock()
        self._spans: List[SpanRecord] = []
        self._seq = 0
        self._pid = os.getpid()
        self._tls = threading.local()

    # -- span lifecycle ----------------------------------------------

    def start_span(self, name: str, attrs: Dict[str, Any]) -> _LiveSpan:
        with self._lock:
            self._seq += 1
            span_id = f"{self._pid:x}.{self._seq}"
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        span = _LiveSpan(self, span_id, parent_id, name, attrs)
        stack.append(span)
        return span

    def _finish(self, record: SpanRecord) -> None:
        stack = self._stack()
        # Pop by identity: exception unwinds close inner-to-outer, but
        # guard against a span being closed from a different thread
        # than opened it (then it simply isn't on this stack).
        for index in range(len(stack) - 1, -1, -1):
            if stack[index].span_id == record.span_id:
                del stack[index]
                break
        with self._lock:
            self._spans.append(record)
            sinks = tuple(self.sinks)
        for sink in sinks:
            sink.emit(record)

    def _stack(self) -> List[_LiveSpan]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    # -- inspection --------------------------------------------------

    def spans(self) -> List[SpanRecord]:
        """Finished spans so far (copy; safe to iterate while tracing)."""
        with self._lock:
            return list(self._spans)

    # -- multiprocess harvest ----------------------------------------

    def payload(self) -> dict:
        """Picklable state a pool worker ships back to the parent."""
        with self._lock:
            spans = [record.to_dict() for record in self._spans]
        return {"spans": spans, "metrics": self.metrics.snapshot()}

    def absorb(self, payload: Optional[dict]) -> None:
        """Fold a worker's :meth:`payload` into this collector."""
        if not payload:
            return
        records = [
            SpanRecord.from_dict(item) for item in payload.get("spans", ())
        ]
        with self._lock:
            self._spans.extend(records)
            sinks = tuple(self.sinks)
        for sink in sinks:
            for record in records:
                sink.emit(record)
        self.metrics.merge(payload.get("metrics", {}))

    # -- teardown ----------------------------------------------------

    def close(self) -> None:
        """Flush and close every sink (metrics snapshot goes last)."""
        snapshot = self.metrics.snapshot()
        for sink in self.sinks:
            finalize = getattr(sink, "finalize", None)
            if finalize is not None:
                finalize(snapshot)
            sink.close()


# -- module-level API ------------------------------------------------


def span(name: str, **attrs: Any):
    """Open a span under the active collector (no-op when disabled)."""
    collector = _state.ACTIVE
    if collector is None:
        return NOOP_SPAN
    return collector.start_span(name, attrs)


def enabled() -> bool:
    """Whether a collector is currently installed."""
    return _state.ACTIVE is not None


def active() -> Optional[Collector]:
    """The installed collector, or ``None`` while disabled."""
    return _state.ACTIVE


def configure(sinks: Sequence[Any] = ()) -> Collector:
    """Install a fresh collector process-wide and return it.

    Closes and replaces any previously installed collector, so a CLI
    can call this unconditionally.  Pair with :func:`shutdown`.
    """
    previous = _state.install(None)
    if previous is not None:
        previous.close()
    collector = Collector(sinks)
    _state.install(collector)
    return collector


def shutdown() -> Optional[Collector]:
    """Uninstall the active collector, close its sinks, return it."""
    collector = _state.install(None)
    if collector is not None:
        collector.close()
    return collector


@contextlib.contextmanager
def capture(sinks: Sequence[Any] = ()) -> Iterator[Collector]:
    """Scoped collector: install, yield, then restore the previous one.

    The worker-side half of the multiprocess protocol -- wrap the task,
    ship ``collector.payload()`` home -- and equally the unit-test
    idiom for tracing a block without touching global state for longer
    than the block.  Sinks are **not** closed on exit (the caller may
    still be reading them); close them yourself if they buffer.
    """
    collector = Collector(sinks)
    previous = _state.install(collector)
    try:
        yield collector
    finally:
        _state.install(previous)
