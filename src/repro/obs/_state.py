"""The one process-global slot holding the active collector.

Kept in its own module so the layering stays acyclic: ``spans`` owns
the :class:`~repro.obs.spans.Collector` type and installs instances
here, while ``metrics`` (which ``spans`` imports) can still consult
the slot to answer "is observability on right now?" without importing
``spans`` back.

The slot being ``None`` *is* the disabled state -- there is no
separate flag to keep in sync, and the hot-path check everywhere is a
single module-attribute read.
"""

from __future__ import annotations

from typing import Any, Optional

#: The active collector, or ``None`` while observability is disabled.
ACTIVE: Optional[Any] = None


def get() -> Optional[Any]:
    """The active collector, or ``None`` when disabled."""
    return ACTIVE


def install(collector: Optional[Any]) -> Optional[Any]:
    """Install ``collector`` (or ``None``); returns the previous one."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = collector
    return previous
