"""repro.obs -- cross-cutting observability: spans, metrics, sinks.

The instrumentation substrate for every hot path in the repo: the
session executor phases, batch dispatch, the bounded caches, the
optimizer portfolio's round barriers, and campaign record loops all
report here.  Three layers:

* **Spans** (:mod:`repro.obs.spans`): nested, timed sections --
  ``with obs.span("kernel.dispatch", cores=4): ...`` -- collected
  thread-safely and harvested across process pools via
  :func:`capture` / :meth:`Collector.absorb`.
* **Metrics** (:mod:`repro.obs.metrics`): typed counters / gauges /
  histograms, either registry-routed (``obs.counter(name).inc()``)
  or standalone instances owned by identity-sensitive components.
* **Sinks** (:mod:`repro.obs.sinks`): where spans land --
  :class:`MemorySink` for tests, :class:`JsonlSink` for ``--trace``
  export, plus the terminal-facing :class:`SweepDashboard` and
  :class:`Console` rendering layers.

Disabled is the default and costs one global read per site; nothing
here ever touches run configuration, so config hashes and
``RunResult`` payloads are byte-identical with tracing on or off.
"""

from repro.obs.console import Console
from repro.obs.dashboard import SweepDashboard
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    cache_event,
    counter,
    gauge,
    histogram,
)
from repro.obs.profile import build_tree, format_profile
from repro.obs.sinks import JsonlSink, MemorySink, read_trace
from repro.obs.spans import (
    Collector,
    SpanRecord,
    active,
    capture,
    configure,
    enabled,
    shutdown,
    span,
)
from repro.obs.timing import Stopwatch, perf_seconds, stopwatch

__all__ = [
    "Collector",
    "Console",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "SpanRecord",
    "Stopwatch",
    "SweepDashboard",
    "active",
    "build_tree",
    "cache_event",
    "capture",
    "configure",
    "counter",
    "enabled",
    "format_profile",
    "gauge",
    "histogram",
    "perf_seconds",
    "read_trace",
    "shutdown",
    "span",
    "stopwatch",
]
