"""Span sinks: where finished spans go.

A sink is any object with ``emit(record)`` and ``close()``; an
optional ``finalize(metrics_snapshot)`` hook runs right before close
so file-backed sinks can append the end-of-run metrics.  Sinks receive
spans in *completion* order (inner spans before the outer span that
contains them) -- consumers that want the tree rebuild it from
``parent_id``, e.g. via :func:`repro.obs.profile.build_tree`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.obs.spans import SpanRecord

TRACE_SCHEMA = 1


class MemorySink:
    """Keeps every span in a list -- the test-suite sink."""

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []
        self.metrics: Optional[dict] = None
        self.closed = False

    def emit(self, record: SpanRecord) -> None:
        self.records.append(record)

    def finalize(self, metrics_snapshot: dict) -> None:
        self.metrics = metrics_snapshot

    def close(self) -> None:
        self.closed = True


class JsonlSink:
    """Streams spans to a JSONL trace file.

    Line 1 is a header (``{"trace_schema": 1}``), then one span object
    per line as they finish, then a final ``{"metrics": {...}}`` line
    written by :meth:`finalize`.  Keys are sorted and floats are plain
    ``repr``, so identical runs produce byte-identical traces modulo
    the timings themselves.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = self.path.open("w", encoding="utf-8")
        self._write({"trace_schema": TRACE_SCHEMA})

    def _write(self, payload: dict) -> None:
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")

    def emit(self, record: SpanRecord) -> None:
        self._write(record.to_dict())

    def finalize(self, metrics_snapshot: dict) -> None:
        self._write({"metrics": metrics_snapshot})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


def read_trace(
    path: Union[str, Path],
) -> Tuple[List[SpanRecord], dict]:
    """Load a :class:`JsonlSink` trace -> ``(spans, metrics)``.

    Validates the schema header and raises ``ValueError`` on a
    malformed file, so tests and tooling fail loudly rather than
    silently parsing half a trace.
    """
    spans: List[SpanRecord] = []
    metrics: dict = {}
    with Path(path).open("r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first:
            raise ValueError(f"empty trace file: {path}")
        header = json.loads(first)
        if header.get("trace_schema") != TRACE_SCHEMA:
            raise ValueError(
                f"unsupported trace schema in {path}: {header!r}"
            )
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if "metrics" in payload and "span_id" not in payload:
                metrics = payload["metrics"]
            else:
                spans.append(SpanRecord.from_dict(payload))
    return spans, metrics
