"""The sanctioned monotonic-timer site (lint rule RL007).

Library code under ``src/repro/`` must not construct its own timers:
scattered ``time.perf_counter()`` pairs are exactly the ad-hoc
instrumentation :mod:`repro.obs` replaces, and they dodge the span
collector entirely.  This module is the one place the monotonic clock
is read; everything else measures wall time through
:func:`perf_seconds`, :class:`Stopwatch`, or a span.

Wall-clock reads (``time.time``, ``datetime.now``) stay banned in the
identity modules by RL002 -- nothing here weakens that: the monotonic
clock never lands in a hashed payload, only in elapsed-seconds fields
and trace records.
"""

from __future__ import annotations

import time


def perf_seconds() -> float:
    """Monotonic seconds, for measuring elapsed wall time."""
    return time.perf_counter()  # RL007: the sanctioned timer site


class Stopwatch:
    """Context-managed elapsed-seconds measurement.

    .. code-block:: python

        with stopwatch() as watch:
            run()
        record(elapsed_s=watch.seconds)

    ``seconds`` is the frozen total after exit; :attr:`elapsed` reads
    the running value while still inside the block.
    """

    __slots__ = ("seconds", "_start")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = perf_seconds()

    @property
    def elapsed(self) -> float:
        """Seconds since construction (running; use inside the block)."""
        return perf_seconds() - self._start

    def restart(self) -> None:
        """Re-arm the start mark (reuse one watch across laps)."""
        self._start = perf_seconds()

    def __enter__(self) -> "Stopwatch":
        self._start = perf_seconds()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = perf_seconds() - self._start


def stopwatch() -> Stopwatch:
    """A fresh :class:`Stopwatch`, started now."""
    return Stopwatch()
