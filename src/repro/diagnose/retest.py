"""Minimal follow-up re-test planning after a diagnosis.

Once diagnosis has narrowed the failure to a set of suspect cores, a
confirmation run (after repair, a wafer-map recheck, an incoming-batch
screen) only needs to exercise *those* cores -- the reconfigurable bus
happily leaves everything else in BYPASS.  This module plans that
minimal program by reusing the scheduling layer's
:class:`~repro.schedule.model.TamProblem` / ``CostModel`` machinery, so
the predicted cost lives in the same cycle currency every scheduler
and the diagnosis engine already report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.soc.core import TestMethod
from repro.soc.soc import SocSpec
from repro.schedule.model import CostModel, TamProblem
from repro.sim.plan import CoreAssignment, SessionPlan, TestPlan


@dataclass(frozen=True)
class RetestPlan:
    """An executor-ready minimal re-test of the suspect cores."""

    plan: TestPlan
    cores: tuple
    predicted_test_cycles: int
    predicted_config_cycles: int

    @property
    def predicted_total_cycles(self) -> int:
        return self.predicted_test_cycles + self.predicted_config_cycles

    def describe(self) -> str:
        return (
            f"re-test of {list(self.cores)}: "
            f"{len(self.plan.sessions)} session(s), predicted "
            f"{self.predicted_test_cycles} test + "
            f"{self.predicted_config_cycles} config cycles"
        )


def minimal_retest_plan(
    soc: SocSpec,
    suspects: Sequence[str],
    *,
    cas_policy: str = "all",
) -> RetestPlan:
    """Plan the cheapest session program covering only ``suspects``.

    Top-level suspects pack greedily onto the bus at their exact port
    widths (the executor's wire discipline); nested suspects
    (``parent/child``) each get their own session through the parent's
    inner bus.  Costs come from the shared
    :class:`~repro.schedule.model.CostModel`.
    """
    if not suspects:
        raise ConfigurationError("a re-test needs at least one suspect")
    seen = set()
    ordered: "list[str]" = []
    for name in suspects:
        if name not in seen:
            seen.add(name)
            ordered.append(name)
    flat = [name for name in ordered if "/" not in name]
    nested = [name for name in ordered if "/" in name]
    sessions: "list[SessionPlan]" = []
    model = CostModel(TamProblem.of(
        [soc.core_named(name).test_params() for name in flat]
        if flat else [core.test_params() for core in soc.cores],
        soc.bus_width,
        cas_policy,
    ))
    test_cycles = 0
    config_cycles = 0
    if flat:
        from repro.api.registry import get_scheduler

        params = [soc.core_named(name).test_params() for name in flat]
        schedule = get_scheduler("greedy").schedule(
            params, soc.bus_width, exact_wires=True
        ).detail
        for scheduled in schedule.sessions:
            assignments = []
            cursor = 0
            for entry in scheduled.entries:
                spec = soc.core_named(entry.params.name)
                wires = tuple(range(cursor, cursor + spec.p))
                cursor += spec.p
                assignments.append(
                    CoreAssignment(path=(spec.name,), levels=(wires,))
                )
            sessions.append(SessionPlan(
                assignments=tuple(assignments), label="retest"
            ))
            test_cycles += scheduled.cycles
            config_cycles += model.session_config_cycles(
                len(scheduled.entries)
            )
    for name in nested:
        parent_name, _, inner_name = name.partition("/")
        parent = soc.core_named(parent_name)
        if parent.method != TestMethod.HIERARCHICAL:
            raise ConfigurationError(
                f"{name}: {parent_name} is not hierarchical"
            )
        assert parent.inner is not None
        inner_spec = parent.inner.core_named(inner_name.split("/")[0])
        outer_wires = tuple(range(parent.p))
        inner_wires = tuple(range(inner_spec.p))
        sessions.append(SessionPlan(
            assignments=(CoreAssignment(
                path=(parent_name, inner_spec.name),
                levels=(outer_wires, inner_wires),
            ),),
            label="retest",
        ))
        inner_params = inner_spec.test_params()
        inner_model = CostModel(TamProblem.of(
            [core.test_params() for core in parent.inner.cores],
            parent.inner.bus_width,
            cas_policy,
        ))
        test_cycles += inner_model.core_cycles(
            inner_params, inner_params.max_wires
        )
        config_cycles += model.session_config_cycles(1)
    return RetestPlan(
        plan=TestPlan(sessions=tuple(sessions), label="retest"),
        cores=tuple(ordered),
        predicted_test_cycles=test_cycles,
        predicted_config_cycles=config_cycles,
    )


def run_retest(
    soc: SocSpec,
    retest: RetestPlan,
    *,
    scenario=None,
    backend: str = "auto",
    capture_syndromes: bool = False,
):
    """Execute a re-test plan on a fresh (optionally defective) system.

    Returns the :class:`~repro.sim.session.ProgramResult` -- after a
    repair, pass ``scenario=None`` and expect a clean program.
    """
    from repro.sim.session import SessionExecutor
    from repro.diagnose.inject import build_faulty_system

    system = build_faulty_system(soc, scenario)
    executor = SessionExecutor(
        system, backend=backend, capture_syndromes=capture_syndromes
    )
    return executor.run_plan(retest.plan)
