"""Bit-level failure syndromes.

A :class:`Syndrome` records *where* a core's test failed, not just how
often: packed mismatch masks per comparison window, in a canonical
layout both simulation backends produce byte-identically (pinned by the
golden-equivalence suite).  The diagnosis engine matches syndromes
against fault dictionaries built with :mod:`repro.scan.fault_sim`, so
the representation is deliberately close to the data the simulators
already move:

* ``kind="scan"`` -- one entry per ``(response window, wrapper chain)``
  with at least one failing bit.  The mask is packed in *scan-out
  order*: bit ``o`` set means the bit emerging on the ``o``-th shift of
  that window mismatched (the same packing the compiled kernel's
  expected/care words use).
* ``kind="bist"`` -- a single entry whose mask is the XOR of the
  observed and golden MISR signatures (bit ``i`` = signature bit
  ``i``).
* ``kind="external"`` -- a single entry with the XOR of the off-chip
  sink and golden-shadow MISR signatures.

Capture is opt-in (``capture_syndromes=...`` on the executors and
:class:`~repro.api.results.RunConfig`): when off, results carry
``syndrome=None`` and both backends behave exactly as before.

This module is dependency-free on purpose: the simulation layer imports
it without pulling in the diagnosis engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

#: ``Syndrome.kind`` values.
KIND_SCAN = "scan"
KIND_BIST = "bist"
KIND_EXTERNAL = "external"


@dataclass(frozen=True)
class Syndrome:
    """Packed failing-bit positions of one core's test.

    Attributes:
        kind: ``"scan"``, ``"bist"`` or ``"external"``.
        entries: ``(window, chain, mask)`` triples, nonzero masks only,
            sorted by ``(window, chain)`` -- the canonical form both
            backends emit.
    """

    kind: str
    entries: tuple[tuple[int, int, int], ...] = ()

    @property
    def is_clean(self) -> bool:
        return not self.entries

    @property
    def failing_bits(self) -> int:
        """Total number of mismatching bit positions."""
        return sum(bin(mask).count("1") for _, _, mask in self.entries)

    def failing_windows(self) -> tuple[int, ...]:
        """Distinct response windows with at least one failing bit."""
        return tuple(sorted({window for window, _, _ in self.entries}))

    def failing_chains(self) -> tuple[int, ...]:
        """Distinct wrapper chains with at least one failing bit."""
        return tuple(sorted({chain for _, chain, _ in self.entries}))

    # -- construction ------------------------------------------------------

    @classmethod
    def from_masks(
        cls, kind: str, masks: Mapping[tuple[int, int], int]
    ) -> "Syndrome":
        """Canonicalise a ``(window, chain) -> mask`` mapping.

        Zero masks are dropped and entries sort by ``(window, chain)``,
        so any accumulation order yields the same syndrome.
        """
        return cls(
            kind=kind,
            entries=tuple(
                (window, chain, mask)
                for (window, chain), mask in sorted(masks.items())
                if mask
            ),
        )

    @classmethod
    def signature_xor(cls, kind: str, observed: int,
                      golden: int) -> "Syndrome":
        """A signature-compaction syndrome (BIST / external sink)."""
        xor = observed ^ golden
        return cls(kind=kind, entries=((0, 0, xor),) if xor else ())

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready mapping (round-trips via :meth:`from_dict`).

        Masks serialize as hex strings: they are arbitrary-precision
        bit sets, and hex keeps long ones compact and readable.
        """
        return {
            "kind": self.kind,
            "entries": [
                [window, chain, hex(mask)]
                for window, chain, mask in self.entries
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Syndrome":
        """Rebuild a syndrome serialized by :meth:`to_dict`."""
        return cls(
            kind=data["kind"],
            entries=tuple(
                (window, chain, int(mask, 16))
                for window, chain, mask in data.get("entries", ())
            ),
        )

    def describe(self) -> str:
        if self.is_clean:
            return f"{self.kind}: clean"
        windows = self.failing_windows()
        return (
            f"{self.kind}: {self.failing_bits} failing bit(s) across "
            f"{len(windows)} window(s)"
        )


def merge_masks(
    into: "dict[tuple[int, int], int]",
    entries: Iterable[tuple[int, int, int]],
) -> None:
    """OR ``entries`` into a mutable ``(window, chain) -> mask`` map."""
    for window, chain, mask in entries:
        if mask:
            into[(window, chain)] = into.get((window, chain), 0) | mask
