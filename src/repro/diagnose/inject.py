"""Seeded, serialisable defect scenarios.

A :class:`DefectScenario` describes one physical defect injected into a
simulatable SoC instance -- never into the expected data, which always
comes from clean builds.  Four defect families cover the layers a
CAS-BUS test actually exercises:

* ``stuck-at`` -- a single stuck-at fault on one core's combinational
  cloud (the :mod:`repro.scan.faults` model); both simulation backends
  handle it, so this is the family the accuracy guarantees run on;
* ``open-wire`` -- one TAM bus wire stuck at a level (data path only;
  the serial configuration chain stays alive, so the bus remains
  *reconfigurable around* the defect);
* ``bridge-wires`` -- two bus wires shorted wired-AND;
* ``dead-cell`` -- one wrapper boundary cell's shift flop stuck.

Wire and wrapper defects force the legacy object-stepping backend
(:func:`repro.sim.kernel.kernel_supports` reports them), which
``backend="auto"`` handles transparently.

Scenarios are frozen, hashable and round-trip through
``to_dict``/``from_dict``, so diagnosis campaigns persist them next to
their results.  :func:`random_scenario` draws a seeded scenario whose
stuck-at fault is *guaranteed detectable* by the victim core's actual
test (screening always fails, and an exact fault-dictionary match
exists), which is what makes seed sweeps meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigurationError
from repro.soc.core import CoreSpec, TestMethod
from repro.soc.soc import SocSpec

#: ``DefectScenario.kind`` values.
KIND_STUCK_AT = "stuck-at"
KIND_OPEN_WIRE = "open-wire"
KIND_BRIDGE = "bridge-wires"
KIND_DEAD_CELL = "dead-cell"

KINDS = (KIND_STUCK_AT, KIND_OPEN_WIRE, KIND_BRIDGE, KIND_DEAD_CELL)


@dataclass(frozen=True)
class DefectScenario:
    """One injected defect, fully described by plain data.

    Attributes:
        kind: one of :data:`KINDS`.
        core: victim core path (``"core5/core5a"`` style) for
            ``stuck-at`` / ``dead-cell``.
        node: cloud node id of a ``stuck-at`` fault.
        cell: boundary-cell index of a ``dead-cell`` defect.
        wire: broken bus wire of an ``open-wire`` defect.
        wires: the two shorted wires of a ``bridge-wires`` defect.
        stuck_value: the stuck level (0/1) where applicable.
        seed: provenance tag for scenarios drawn by
            :func:`random_scenario` (``None`` for hand-built ones).
    """

    kind: str
    core: "str | None" = None
    node: "int | None" = None
    cell: "int | None" = None
    wire: "int | None" = None
    wires: "tuple[int, int] | None" = None
    stuck_value: int = 0
    seed: "int | None" = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def stuck_at(cls, core: str, node: int, stuck_value: int,
                 *, seed: "int | None" = None) -> "DefectScenario":
        """A single stuck-at fault on one core's logic."""
        return cls(kind=KIND_STUCK_AT, core=core, node=node,
                   stuck_value=stuck_value, seed=seed)

    @classmethod
    def open_wire(cls, wire: int, stuck_value: int = 0,
                  *, seed: "int | None" = None) -> "DefectScenario":
        """One TAM bus wire stuck at a level."""
        return cls(kind=KIND_OPEN_WIRE, wire=wire,
                   stuck_value=stuck_value, seed=seed)

    @classmethod
    def bridge(cls, wire_a: int, wire_b: int,
               *, seed: "int | None" = None) -> "DefectScenario":
        """Two TAM bus wires shorted (wired-AND)."""
        low, high = sorted((wire_a, wire_b))
        return cls(kind=KIND_BRIDGE, wires=(low, high), seed=seed)

    @classmethod
    def dead_cell(cls, core: str, cell: int, stuck_value: int = 0,
                  *, seed: "int | None" = None) -> "DefectScenario":
        """One wrapper boundary cell's shift flop stuck."""
        return cls(kind=KIND_DEAD_CELL, core=core, cell=cell,
                   stuck_value=stuck_value, seed=seed)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown defect kind {self.kind!r}; known: "
                f"{', '.join(KINDS)}"
            )
        if self.stuck_value not in (0, 1):
            raise ConfigurationError(
                f"stuck value must be 0/1, got {self.stuck_value!r}"
            )
        needs = {
            KIND_STUCK_AT: ("core", "node"),
            KIND_OPEN_WIRE: ("wire",),
            KIND_BRIDGE: ("wires",),
            KIND_DEAD_CELL: ("core", "cell"),
        }[self.kind]
        for attribute in needs:
            if getattr(self, attribute) is None:
                raise ConfigurationError(
                    f"{self.kind} scenario needs {attribute!r}"
                )
        if self.kind == KIND_BRIDGE:
            assert self.wires is not None
            if self.wires[0] == self.wires[1]:
                raise ConfigurationError(
                    "bridge needs two distinct wires"
                )

    # -- application -------------------------------------------------------

    @property
    def fault(self) -> "tuple[int, int] | None":
        """The ``(node, stuck_value)`` pair of a stuck-at scenario."""
        if self.kind != KIND_STUCK_AT:
            return None
        assert self.node is not None
        return (self.node, self.stuck_value)

    @property
    def core_path(self) -> "tuple[str, ...] | None":
        """The victim core path as a tuple, when there is one."""
        if self.core is None:
            return None
        return tuple(self.core.split("/"))

    def describe(self) -> str:
        if self.kind == KIND_STUCK_AT:
            return f"{self.core}: node{self.node}/SA{self.stuck_value}"
        if self.kind == KIND_OPEN_WIRE:
            return f"bus wire {self.wire} stuck at {self.stuck_value}"
        if self.kind == KIND_BRIDGE:
            assert self.wires is not None
            return f"bus wires {self.wires[0]}+{self.wires[1]} bridged"
        return (
            f"{self.core}: boundary cell {self.cell} "
            f"stuck at {self.stuck_value}"
        )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready mapping (round-trips via :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "core": self.core,
            "node": self.node,
            "cell": self.cell,
            "wire": self.wire,
            "wires": list(self.wires) if self.wires else None,
            "stuck_value": self.stuck_value,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "DefectScenario":
        """Rebuild a scenario serialized by :meth:`to_dict`."""
        wires = data.get("wires")
        return cls(
            kind=data["kind"],
            core=data.get("core"),
            node=data.get("node"),
            cell=data.get("cell"),
            wire=data.get("wire"),
            wires=tuple(wires) if wires else None,
            stuck_value=data.get("stuck_value", 0),
            seed=data.get("seed"),
        )


def build_faulty_system(
    soc: SocSpec,
    scenario: "DefectScenario | None",
    **build_kwargs,
):
    """A fresh behavioural system with ``scenario`` applied.

    ``scenario=None`` builds a defect-free instance.  Every call
    returns a brand-new system: diagnosis probes are independent
    power-on test runs, so they never inherit chain state from earlier
    sessions.
    """
    from repro.sim.system import build_system

    if scenario is None:
        return build_system(soc, **build_kwargs)
    if scenario.kind == KIND_STUCK_AT:
        assert scenario.core is not None
        faults = dict(build_kwargs.pop("inject_faults", None) or {})
        faults[scenario.core] = scenario.fault
        return build_system(soc, inject_faults=faults, **build_kwargs)
    system = build_system(soc, **build_kwargs)
    if scenario.kind == KIND_OPEN_WIRE:
        if not 0 <= scenario.wire < soc.bus_width:
            raise ConfigurationError(
                f"open-wire defect on wire {scenario.wire}, bus has "
                f"{soc.bus_width} wires"
            )
        system.wire_faults[scenario.wire] = scenario.stuck_value
        return system
    if scenario.kind == KIND_BRIDGE:
        assert scenario.wires is not None
        for wire in scenario.wires:
            if not 0 <= wire < soc.bus_width:
                raise ConfigurationError(
                    f"bridge defect on wire {wire}, bus has "
                    f"{soc.bus_width} wires"
                )
        system.wire_bridges.append(scenario.wires)
        return system
    assert scenario.kind == KIND_DEAD_CELL
    path = scenario.core_path
    assert path is not None and scenario.cell is not None
    node = system.node_at(path)
    if node.wrapper is None:
        raise ConfigurationError(
            f"{scenario.core}: no wrapper to break a cell in"
        )
    cells = node.wrapper.boundary.cells
    if not 0 <= scenario.cell < len(cells):
        raise ConfigurationError(
            f"{scenario.core}: no boundary cell {scenario.cell} "
            f"(wrapper has {len(cells)})"
        )
    cell = cells[scenario.cell]
    cell.stuck = scenario.stuck_value
    cell.load(scenario.stuck_value)
    return system


# -- seeded scenario generation ------------------------------------------------


def _flat_core_paths(soc: SocSpec, prefix: str = "") -> "list[str]":
    """Paths of every non-hierarchical core, depth first."""
    paths: "list[str]" = []
    for core in soc.cores:
        if core.method == TestMethod.HIERARCHICAL:
            assert core.inner is not None
            paths.extend(
                _flat_core_paths(core.inner, f"{prefix}{core.name}/")
            )
        else:
            paths.append(f"{prefix}{core.name}")
    return paths


def spec_at(soc: SocSpec, path: str) -> CoreSpec:
    """Resolve a ``parent/child`` core path to its :class:`CoreSpec`.

    Shared by scenario generation and the diagnosis engine, so both
    always resolve hierarchical names identically.
    """
    spec_soc = soc
    parts = path.split("/")
    for name in parts[:-1]:
        inner = spec_soc.core_named(name).inner
        if inner is None:
            raise ConfigurationError(
                f"{name} is not hierarchical in path {path!r}"
            )
        spec_soc = inner
    return spec_soc.core_named(parts[-1])


def detectable_faults(spec: CoreSpec) -> "list[tuple[int, int]]":
    """Stuck-at faults the core's *own test* provably detects.

    Drawn from the diagnosis fault dictionary, so every returned fault
    both fails the screening run and has an exact dictionary match --
    the property the localisation guarantees rest on.
    """
    from repro.diagnose.engine import fault_dictionary

    faults: "list[tuple[int, int]]" = []
    for entry in fault_dictionary(spec):
        faults.extend(entry.faults)
    return sorted(faults)


def random_scenario(
    soc: SocSpec,
    seed: int,
    *,
    kinds: "tuple[str, ...]" = (KIND_STUCK_AT,),
) -> DefectScenario:
    """A seeded random defect on ``soc``.

    The default draws only ``stuck-at`` scenarios (the family with
    end-to-end localisation guarantees); pass a wider ``kinds`` tuple
    for transport-defect sweeps.  Identical ``(soc, seed, kinds)``
    yield identical scenarios.
    """
    for kind in kinds:
        if kind not in KINDS:
            raise ConfigurationError(
                f"unknown defect kind {kind!r}; known: {', '.join(KINDS)}"
            )
    rng = random.Random(seed)
    kind = rng.choice(list(kinds))
    if kind == KIND_OPEN_WIRE:
        return DefectScenario.open_wire(
            rng.randrange(soc.bus_width), rng.randint(0, 1), seed=seed
        )
    if kind == KIND_BRIDGE:
        if soc.bus_width < 2:
            raise ConfigurationError(
                "bridge scenarios need a bus of width >= 2"
            )
        wire_a, wire_b = rng.sample(range(soc.bus_width), 2)
        return DefectScenario.bridge(wire_a, wire_b, seed=seed)
    paths = _flat_core_paths(soc)
    if kind == KIND_DEAD_CELL:
        path = rng.choice(paths)
        spec = spec_at(soc, path)
        cells = spec.num_pis + spec.num_pos
        return DefectScenario.dead_cell(
            path, rng.randrange(cells), rng.randint(0, 1), seed=seed
        )
    # Stuck-at: draw a victim whose test set detects at least one
    # fault (ATPG on tiny cores can in principle detect nothing).
    order = list(paths)
    rng.shuffle(order)
    for path in order:
        faults = detectable_faults(spec_at(soc, path))
        if faults:
            node, value = rng.choice(faults)
            return DefectScenario.stuck_at(path, node, value, seed=seed)
    raise ConfigurationError(
        f"{soc.name}: no core has a detectable stuck-at fault"
    )
