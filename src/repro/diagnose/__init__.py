"""Fault injection, syndrome capture and adaptive diagnosis.

The subsystem that finally uses the CAS-BUS's reconfigurability for
something only this architecture can do: when a core fails, the bus is
*reconfigured around the failure* -- the suspect re-tested solo on
different wires, broken TAM wires binary-searched with verified-good
spares, and core-internal defects ranked by fault-dictionary matching
of bit-level syndromes.

Layout:

* :mod:`repro.diagnose.inject` -- seeded, serialisable defect
  scenarios (core stuck-ats, broken/bridged bus wires, dead wrapper
  cells);
* :mod:`repro.diagnose.syndrome` -- the packed failing-bit syndrome
  both simulation backends emit identically;
* :mod:`repro.diagnose.engine` -- the two-phase diagnosis engine and
  fault dictionaries;
* :mod:`repro.diagnose.retest` -- minimal confirmation re-test
  planning on the scheduling layer's cost model;
* :mod:`repro.diagnose.records` -- campaign-store persistence.

The engine/retest/records names load lazily: the simulation layer
imports :mod:`repro.diagnose.syndrome`, and an eager engine import
here would close an import cycle back into it.
"""

from repro.diagnose.inject import (
    DefectScenario,
    build_faulty_system,
    random_scenario,
)
from repro.diagnose.syndrome import Syndrome

__all__ = [
    "Candidate",
    "DefectScenario",
    "DiagnosisEngine",
    "DiagnosisResult",
    "RetestPlan",
    "Syndrome",
    "build_faulty_system",
    "diagnose_soc",
    "fault_dictionary",
    "minimal_retest_plan",
    "random_scenario",
    "run_retest",
]

_LAZY = {
    "Candidate": ("repro.diagnose.engine", "Candidate"),
    "DiagnosisEngine": ("repro.diagnose.engine", "DiagnosisEngine"),
    "DiagnosisResult": ("repro.diagnose.engine", "DiagnosisResult"),
    "diagnose_soc": ("repro.diagnose.engine", "diagnose_soc"),
    "fault_dictionary": ("repro.diagnose.engine", "fault_dictionary"),
    "RetestPlan": ("repro.diagnose.retest", "RetestPlan"),
    "minimal_retest_plan": (
        "repro.diagnose.retest", "minimal_retest_plan",
    ),
    "run_retest": ("repro.diagnose.retest", "run_retest"),
}


def __getattr__(name):
    """Lazy loader for the engine-side names (import-cycle guard)."""
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value
    return value
