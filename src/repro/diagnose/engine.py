"""Two-phase adaptive diagnosis over the reconfigurable CAS-BUS.

Phase 1 -- **screening**: run the SoC's normal test program with
syndrome capture on.  Per-core pass/fail falls out of the ordinary
schedule; the bit-level syndromes are free observations the diagnosis
reuses.

Phase 2 -- **adaptive reconfiguration**: this is the part only a
reconfigurable TAM can do.  Each failing core is re-tested *solo on
different bus wires* (one CAS reconfiguration away):

* if the core now passes, the core is healthy and the TAM itself is
  broken -- a binary search over the original wire footprint (halves
  swapped for verified-good wires, one reconfigured session per probe)
  pins the defective wire in ``log2(P)`` sessions;
* if it still fails, the defect travels with the core -- its observed
  syndrome is matched against a *fault dictionary* built with the
  bit-parallel machinery of :mod:`repro.scan.fault_sim`, ranking
  equivalence classes of stuck-at candidates (signature matching for
  BIST/external cores).  A syndrome no single stuck-at reproduces
  demotes the cloud candidates and flags a wrapper/chain defect.

Probe order and cycle accounting run through the scheduling layer's
:class:`~repro.schedule.model.CostModel` (cheapest suspect probed
first), and every executed session's exact cycles are charged to the
diagnosis, so "adaptive diagnosis is cheaper than re-running the full
program" is a measured claim, not a hope.  All sessions execute on
fresh system instances -- each probe is an independent power-on test
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.bist.engine import BistEngine
from repro.bist.lfsr import Lfsr
from repro.bist.misr import Misr
from repro.scan.fault_sim import pack_patterns
from repro.scan.faults import core_fault_list
from repro.soc.core import CoreSpec, TestMethod
from repro.soc.soc import SocSpec
from repro.core.tam import CasBusTamDesign
from repro.schedule.model import CostModel, TamProblem
from repro.sim.cache import BoundedCache
from repro.sim.kernel import chain_capture, chain_geometries
from repro.sim.plan import CoreAssignment, SessionPlan
from repro.sim.session import CoreResult, SessionExecutor
from repro.sim.testsets import test_set_for
from repro.wrapper.wrapper import P1500Wrapper
from repro.diagnose.inject import DefectScenario, build_faulty_system
from repro.diagnose.syndrome import Syndrome

#: ``Candidate.kind`` values.
CANDIDATE_CLOUD = "cloud"
CANDIDATE_TAM_WIRE = "tam-wire"
CANDIDATE_WRAPPER = "wrapper"

#: Cap on cached fault dictionaries (LRU, like the test-set cache).
MAX_CACHED_DICTIONARIES = 256

#: Exact-match score.
EXACT = 1.0


# -- ranked candidates ---------------------------------------------------------


@dataclass(frozen=True)
class Candidate:
    """One ranked diagnosis hypothesis.

    ``kind="cloud"`` carries an *equivalence class* of stuck-at faults
    (``faults``) that all predict the same syndrome on this test set --
    no test the SoC runs can tell them apart, so they rank as one
    candidate.  ``kind="tam-wire"`` names a bus wire;
    ``kind="wrapper"`` flags a defect in the access path itself
    (wrapper cell / chain) that no single cloud stuck-at explains.
    """

    kind: str
    core: "str | None"
    score: float
    faults: tuple = ()
    wire: "int | None" = None
    detail: str = ""

    def contains_fault(self, node: int, stuck_value: int) -> bool:
        """Whether a specific stuck-at fault is in this candidate."""
        return self.kind == CANDIDATE_CLOUD and (
            (node, stuck_value) in self.faults
        )

    def describe(self) -> str:
        if self.kind == CANDIDATE_TAM_WIRE:
            return f"bus wire {self.wire} ({self.score:.2f})"
        if self.kind == CANDIDATE_WRAPPER:
            return f"{self.core}: wrapper/chain defect ({self.score:.2f})"
        shown = ", ".join(
            f"node{node}/SA{value}" for node, value in self.faults[:3]
        )
        more = len(self.faults) - 3
        if more > 0:
            shown += f", +{more}"
        return f"{self.core}: {shown} ({self.score:.2f})"

    def to_dict(self) -> dict:
        """JSON-ready mapping (round-trips via :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "core": self.core,
            "score": self.score,
            "faults": [list(fault) for fault in self.faults],
            "wire": self.wire,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Candidate":
        """Rebuild a candidate serialized by :meth:`to_dict`."""
        return cls(
            kind=data["kind"],
            core=data.get("core"),
            score=data["score"],
            faults=tuple(tuple(fault) for fault in data.get("faults", ())),
            wire=data.get("wire"),
            detail=data.get("detail", ""),
        )


@dataclass(frozen=True)
class DiagnosisResult:
    """Outcome of one full diagnosis run.

    Cycle accounting separates the three cost pools the comparison
    cares about: ``screening_cycles`` (the normal program that flagged
    the failure), ``diagnosis_cycles`` (every adaptive probe session
    actually executed), and ``full_retest_cycles`` (what naively
    re-running the whole program would cost -- the baseline adaptive
    diagnosis must beat).  ``retest_cycles`` is the model-predicted
    cost of the minimal confirmation re-test of the suspects
    (:mod:`repro.diagnose.retest`).
    """

    workload: str
    scenario: "DefectScenario | None"
    screen_passed: bool
    failing_cores: tuple
    candidates: tuple
    screening_cycles: int
    diagnosis_cycles: int
    planned_diagnosis_cycles: int
    probe_sessions: int
    full_retest_cycles: int
    retest_cycles: int
    backend: str = "auto"
    syndromes: "dict[str, Syndrome]" = field(default_factory=dict)

    @property
    def is_clean(self) -> bool:
        """Defect-free verdict: screening passed, nothing suspected."""
        return self.screen_passed and not self.candidates

    @property
    def localized_core(self) -> "str | None":
        """The top-ranked candidate's core (``None`` when clean or the
        top candidate blames the TAM, not a core)."""
        if not self.candidates:
            return None
        top = self.candidates[0]
        if top.kind == CANDIDATE_TAM_WIRE:
            # The wire candidate's ``core`` records which probe exposed
            # the wire -- that core is healthy, so nothing localises.
            return None
        return top.core

    def fault_rank(self, core: str, node: int,
                   stuck_value: int) -> "int | None":
        """1-based rank of the candidate containing a specific fault."""
        for rank, candidate in enumerate(self.candidates, start=1):
            if candidate.core == core and candidate.contains_fault(
                node, stuck_value
            ):
                return rank
        return None

    def scenario_rank(self) -> "int | None":
        """1-based rank of the injected scenario among the candidates."""
        if self.scenario is None:
            return None
        scenario = self.scenario
        if scenario.fault is not None:
            assert scenario.core is not None
            return self.fault_rank(scenario.core, *scenario.fault)
        for rank, candidate in enumerate(self.candidates, start=1):
            if scenario.kind == "open-wire":
                if (candidate.kind == CANDIDATE_TAM_WIRE
                        and candidate.wire == scenario.wire):
                    return rank
            elif scenario.kind == "bridge-wires":
                assert scenario.wires is not None
                if (candidate.kind == CANDIDATE_TAM_WIRE
                        and candidate.wire in scenario.wires):
                    return rank
            elif scenario.kind == "dead-cell":
                if (candidate.kind == CANDIDATE_WRAPPER
                        and candidate.core == scenario.core):
                    return rank
        return None

    def to_dict(self) -> dict:
        """JSON-ready mapping (round-trips via :meth:`from_dict`)."""
        return {
            "workload": self.workload,
            "scenario": (
                self.scenario.to_dict() if self.scenario else None
            ),
            "screen_passed": self.screen_passed,
            "failing_cores": list(self.failing_cores),
            "candidates": [c.to_dict() for c in self.candidates],
            "screening_cycles": self.screening_cycles,
            "diagnosis_cycles": self.diagnosis_cycles,
            "planned_diagnosis_cycles": self.planned_diagnosis_cycles,
            "probe_sessions": self.probe_sessions,
            "full_retest_cycles": self.full_retest_cycles,
            "retest_cycles": self.retest_cycles,
            "backend": self.backend,
            "syndromes": {
                name: syndrome.to_dict()
                for name, syndrome in sorted(self.syndromes.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "DiagnosisResult":
        """Rebuild a result serialized by :meth:`to_dict`."""
        scenario = data.get("scenario")
        return cls(
            workload=data["workload"],
            scenario=(
                DefectScenario.from_dict(scenario) if scenario else None
            ),
            screen_passed=data["screen_passed"],
            failing_cores=tuple(data.get("failing_cores", ())),
            candidates=tuple(
                Candidate.from_dict(c) for c in data.get("candidates", ())
            ),
            screening_cycles=data["screening_cycles"],
            diagnosis_cycles=data["diagnosis_cycles"],
            planned_diagnosis_cycles=data.get(
                "planned_diagnosis_cycles", 0
            ),
            probe_sessions=data.get("probe_sessions", 0),
            full_retest_cycles=data["full_retest_cycles"],
            retest_cycles=data.get("retest_cycles", 0),
            backend=data.get("backend", "auto"),
            syndromes={
                name: Syndrome.from_dict(payload)
                for name, payload in data.get("syndromes", {}).items()
            },
        )

    def describe(self) -> str:
        if self.is_clean:
            return (
                f"{self.workload}: clean "
                f"({self.screening_cycles} screening cycles)"
            )
        lines = [
            f"{self.workload}: {len(self.failing_cores)} failing core(s) "
            f"{list(self.failing_cores)}; "
            f"{self.diagnosis_cycles} diagnosis vs "
            f"{self.full_retest_cycles} full-retest cycles"
        ]
        for rank, candidate in enumerate(self.candidates, start=1):
            lines.append(f"  #{rank} {candidate.describe()}")
        return "\n".join(lines)


# -- fault dictionaries --------------------------------------------------------


@dataclass(frozen=True)
class DictionaryEntry:
    """One equivalence class of stuck-at faults and its prediction.

    ``key`` is the predicted syndrome in matchable form: a frozenset of
    ``(pattern, output)`` failing positions for scan cores, an integer
    signature-XOR for BIST/external cores.
    """

    faults: tuple
    key: object


_DICTIONARIES: "BoundedCache[CoreSpec, tuple[DictionaryEntry, ...]]" = (
    BoundedCache(MAX_CACHED_DICTIONARIES, name="fault_dictionaries")
)


def clear_dictionary_cache() -> None:
    """Drop cached fault dictionaries (tests, memory-sensitive callers)."""
    _DICTIONARIES.clear()


def fault_dictionary(spec: CoreSpec) -> "tuple[DictionaryEntry, ...]":
    """The (cached) fault dictionary of one core spec.

    Every entry is a class of single stuck-at faults its own test
    provably detects, keyed by the exact syndrome they produce.  Built
    from clean models only -- like expected test data, dictionaries
    never see the injected defect.
    """
    cached = _DICTIONARIES.get(spec)
    if cached is not None:
        return cached
    if spec.method == TestMethod.SCAN:
        entries = _scan_dictionary(spec)
    elif spec.method == TestMethod.BIST:
        entries = _bist_dictionary(spec)
    elif spec.method == TestMethod.EXTERNAL:
        entries = _external_dictionary(spec)
    else:
        raise ConfigurationError(
            f"{spec.name}: no fault dictionary for {spec.method}"
        )
    _DICTIONARIES.put(spec, entries)
    return entries


def _group(by_key: "dict[object, list]") -> "tuple[DictionaryEntry, ...]":
    entries = [
        DictionaryEntry(faults=tuple(sorted(faults)), key=key)
        for key, faults in by_key.items()
    ]
    entries.sort(key=lambda entry: entry.faults)
    return tuple(entries)


def _scan_dictionary(spec: CoreSpec) -> "tuple[DictionaryEntry, ...]":
    """Pattern-parallel diff of every fault against the golden responses.

    All faults run through the vectorized batch kernel in a handful of
    array dispatches (:func:`repro.sim.batch.scan_fault_failing_sets`);
    without numpy, the original word-at-a-time scalar loop computes the
    identical sets.
    """
    core = spec.build_scannable()
    patterns = test_set_for(spec).patterns
    if not patterns:
        return ()
    fault_pairs = [
        (fault.node, fault.stuck_value) for fault in core_fault_list(core)
    ]
    try:
        from repro.sim.batch import scan_fault_failing_sets
    except ImportError:
        failing_sets = _scan_failing_sets_scalar(core, patterns, fault_pairs)
    else:
        failing_sets = scan_fault_failing_sets(spec, fault_pairs)
    by_key: "dict[object, list]" = {}
    for fault, failing in zip(fault_pairs, failing_sets):
        if failing:
            by_key.setdefault(frozenset(failing), []).append(fault)
    return _group(by_key)


def _scan_failing_sets_scalar(
    core, patterns, fault_pairs
) -> "list[set[tuple[int, int]]]":
    """Per-fault failing ``(pattern, output)`` sets, one fault at a time."""
    batches = pack_patterns(core, patterns)
    goldens = [
        core.cloud.evaluate_words(batch.input_words, batch.mask)
        for batch in batches
    ]
    failing_sets: "list[set[tuple[int, int]]]" = []
    for fault in fault_pairs:
        failing: "set[tuple[int, int]]" = set()
        base = 0
        for batch, golden in zip(batches, goldens):
            faulty = core.cloud.evaluate_words(
                batch.input_words, batch.mask, fault=fault,
            )
            for output, (good, bad) in enumerate(zip(golden, faulty)):
                diff = (good ^ bad) & batch.mask
                while diff:
                    bit = (diff & -diff).bit_length() - 1
                    failing.add((base + bit, output))
                    diff &= diff - 1
            base += batch.count
        failing_sets.append(failing)
    return failing_sets


def _bist_dictionary(spec: CoreSpec) -> "tuple[DictionaryEntry, ...]":
    """Per-fault MISR signatures over one self-test run."""
    core = spec.build_scannable()
    engine = BistEngine(core, signature_width=spec.signature_width)
    faults = [
        (fault.node, fault.stuck_value) for fault in core_fault_list(core)
    ]
    golden, signatures = engine.signatures_for(spec.bist_cycles, faults)
    by_key: "dict[object, list]" = {}
    for fault, signature in signatures.items():
        xor = signature ^ golden
        if xor:
            by_key.setdefault(xor, []).append(fault)
    return _group(by_key)


def _external_dictionary(spec: CoreSpec) -> "tuple[DictionaryEntry, ...]":
    """Per-fault off-chip sink signatures of the external stream.

    The core model, wrapper and chain geometry are built once and
    shared across every fault's stream replay (the replay itself is
    per-fault by nature: chain state depends on the fault).
    """
    core = spec.build_scannable()
    geo = chain_geometries(P1500Wrapper(core))[0]
    golden = _external_stream_signature(spec, core, geo, None)
    by_key: "dict[object, list]" = {}
    for fault in core_fault_list(core):
        signature = _external_stream_signature(
            spec, core, geo, (fault.node, fault.stuck_value)
        )
        xor = signature ^ golden
        if xor:
            by_key.setdefault(xor, []).append(
                (fault.node, fault.stuck_value)
            )
    return _group(by_key)


def external_signature(
    spec: CoreSpec, fault: "tuple[int, int] | None"
) -> int:
    """Predicted off-chip MISR signature of one external-stream test.

    Replays the exact protocol both backends implement (LFSR source,
    full-depth shift windows, capture clocks) on a from-reset instance
    -- the state a diagnosis probe starts from.
    """
    core = spec.build_scannable()
    geo = chain_geometries(P1500Wrapper(core))[0]
    return _external_stream_signature(spec, core, geo, fault)


def _external_stream_signature(
    spec: CoreSpec, core, geo, fault: "tuple[int, int] | None"
) -> int:
    """The stream replay on prebuilt structures (never mutates them)."""
    depth = geo.length
    state = [0] * depth
    source = Lfsr(16, seed=0xACE1 ^ (spec.seed or 1))
    misr = Misr(16)
    for window in range(spec.external_stream_patterns + 1):
        for _ in range(depth):
            misr.absorb_bit(state[-1])
            bit = source.step()
            state.insert(0, bit)
            state.pop()
        if window < spec.external_stream_patterns:
            chain_capture(core, geo, state, fault)
    return misr.signature


# -- syndrome decoding ---------------------------------------------------------


def decode_scan_syndrome(
    spec: CoreSpec, syndrome: Syndrome
) -> "frozenset[tuple[int, int]]":
    """Observed ``(pattern, output)`` failing positions of a scan core.

    Inverts the wrapper chain geometry: a mask bit at scan-out offset
    ``o`` of chain ``c`` in window ``w`` is the capture of pattern
    ``w`` at a specific core flip-flop or primary output -- the exact
    coordinate system the fault dictionary predicts in.
    """
    wrapper = P1500Wrapper(spec.build_scannable())
    geometries = chain_geometries(wrapper)
    assert wrapper.core is not None
    num_ffs = wrapper.core.num_ffs
    tags: "list[list]" = []
    for geo in geometries:
        per_position: list = [None] * len(geo.in_pi)
        per_position.extend(ff for ff in geo.ff_ids)
        per_position.extend(num_ffs + po for po in geo.out_po)
        tags.append(per_position)
    failing: "set[tuple[int, int]]" = set()
    for window, chain, mask in syndrome.entries:
        positions = tags[chain]
        length = len(positions)
        offset = 0
        while mask:
            if mask & 1:
                output = positions[length - 1 - offset]
                if output is not None:
                    failing.add((window, output))
            mask >>= 1
            offset += 1
    return frozenset(failing)


def _jaccard_sets(observed: frozenset, predicted: frozenset) -> float:
    union = len(observed | predicted)
    if not union:
        return 0.0
    return len(observed & predicted) / union


def _jaccard_bits(observed: int, predicted: int) -> float:
    union = bin(observed | predicted).count("1")
    if not union:
        return 0.0
    return bin(observed & predicted).count("1") / union


def rank_cloud_candidates(
    spec: CoreSpec,
    core_path: str,
    syndrome: Syndrome,
    *,
    max_candidates: int = 8,
) -> "list[Candidate]":
    """Ranked stuck-at candidate classes for one failing core.

    Exact dictionary matches score 1.0; partial overlaps score their
    Jaccard similarity.  When nothing matches exactly, a wrapper-defect
    hypothesis is inserted with the residual confidence -- syndromes no
    single cloud stuck-at reproduces point at the access path, not the
    logic.
    """
    entries = fault_dictionary(spec)
    if syndrome.kind == "scan":
        observed_key: object = decode_scan_syndrome(spec, syndrome)
        similarity = _jaccard_sets
    else:
        observed_key = (
            syndrome.entries[0][2] if syndrome.entries else 0
        )
        similarity = _jaccard_bits
    scored: "list[Candidate]" = []
    for entry in entries:
        score = (
            EXACT if entry.key == observed_key
            else similarity(observed_key, entry.key)  # type: ignore[arg-type]
        )
        if score > 0.0:
            scored.append(Candidate(
                kind=CANDIDATE_CLOUD,
                core=core_path,
                score=score,
                faults=entry.faults,
            ))
    scored.sort(key=lambda c: (-c.score, c.faults))
    scored = scored[:max_candidates]
    best = scored[0].score if scored else 0.0
    if best < EXACT:
        wrapper_candidate = Candidate(
            kind=CANDIDATE_WRAPPER,
            core=core_path,
            score=round(EXACT - best, 6),
            detail=(
                "syndrome matches no single stuck-at exactly; "
                "wrapper cell / chain defect suspected"
            ),
        )
        scored.append(wrapper_candidate)
        scored.sort(key=lambda c: -c.score)
    return scored


# -- the engine ----------------------------------------------------------------


class DiagnosisEngine:
    """Screen, adaptively reconfigure, rank -- for one SoC instance.

    Args:
        soc: the SoC under diagnosis.
        scenario: the injected defect (``None`` = defect-free run).
        backend: simulation engine; ``"auto"`` transparently falls back
            to the legacy backend for transport defects.
        cas_policy: CAS scheme-enumeration policy of the generated TAM.
        max_candidates: ranked cloud-candidate classes kept per core.
        max_suspects: failing cores probed individually (beyond this,
            remaining suspects are reported unprobed).
    """

    def __init__(
        self,
        soc: SocSpec,
        scenario: "DefectScenario | None" = None,
        *,
        backend: str = "auto",
        cas_policy: str = "all",
        max_candidates: int = 8,
        max_suspects: int = 4,
    ) -> None:
        soc.validate()
        self.soc = soc
        self.scenario = scenario
        self.backend = backend
        self.cas_policy = cas_policy
        self.max_candidates = max_candidates
        self.max_suspects = max_suspects
        # Plan only -- never CasBusTamDesign.for_soc, whose per-core
        # CAS *hardware* generation (logic minimisation, area) costs
        # seconds on large SoCs and contributes nothing to diagnosis.
        self.tam = CasBusTamDesign(soc=soc)
        self.plan = self.tam.executable_plan()
        self._assignments = {
            assignment.name: assignment
            for session in self.plan.sessions
            for assignment in session.assignments
        }
        self._cost_model = CostModel(TamProblem.of(
            [core.test_params() for core in soc.cores],
            soc.bus_width,
            cas_policy,
        ))
        self._probe_cycles = 0
        self._planned_cycles = 0
        self._probe_sessions = 0

    # -- probes ------------------------------------------------------------

    def _fresh_executor(self) -> SessionExecutor:
        system = build_faulty_system(self.soc, self.scenario)
        return SessionExecutor(
            system, backend=self.backend, capture_syndromes=True
        )

    def _plan_probe(self, name: str) -> int:
        """Model-predicted cycles of one solo probe session."""
        top = name.split("/", 1)[0]
        params = self.soc.core_named(top).test_params()
        return (
            self._cost_model.core_cycles(params, params.max_wires)
            + self._cost_model.session_config_cycles(1)
        )

    def _run_probe(self, assignment: CoreAssignment) -> CoreResult:
        """Execute one solo session on a fresh instance."""
        executor = self._fresh_executor()
        session = SessionPlan(assignments=(assignment,), label="probe")
        result = executor.run_session(
            session, label=f"probe:{assignment.name}"
        )
        self._probe_cycles += result.total_cycles
        self._probe_sessions += 1
        for core_result in result.core_results:
            if core_result.name == assignment.name:
                return core_result
        raise ConfigurationError(
            f"probe session lost core {assignment.name}"
        )  # pragma: no cover - structural invariant

    def _with_top_wires(
        self, assignment: CoreAssignment, wires: Sequence[int]
    ) -> CoreAssignment:
        return CoreAssignment(
            path=assignment.path,
            levels=(tuple(wires),) + assignment.levels[1:],
            wir_override=assignment.wir_override,
        )

    def _spare_wires(self, original: Sequence[int]) -> "list[int]":
        """Bus wires outside the original footprint."""
        return [
            wire for wire in range(self.soc.bus_width)
            if wire not in original
        ]

    def _search_broken_wires(
        self,
        assignment: CoreAssignment,
        good_wires: Sequence[int],
    ) -> "list[int]":
        """Binary search the original footprint for the broken wire.

        Each probe re-tests the core with half the suspect wires
        swapped for verified-good ones; a failing probe keeps the
        half still in use, a passing probe exonerates it.
        """
        original = list(assignment.levels[0])
        suspects = list(original)
        pool = [w for w in good_wires if w not in original]
        while len(suspects) > 1:
            half = suspects[: len(suspects) // 2]
            rest = suspects[len(suspects) // 2:]
            fill = len(original) - len(half)
            if fill > len(pool):
                break  # not enough spare wires to keep narrowing
            trial = self._with_top_wires(
                assignment, tuple(half + pool[:fill])
            )
            self._planned_cycles += self._plan_probe(assignment.name)
            if self._run_probe(trial).passed:
                suspects = rest
            else:
                suspects = half
        return suspects

    # -- main flow ---------------------------------------------------------

    def run(self) -> DiagnosisResult:
        """Execute the full screen -> reconfigure -> rank flow."""
        from repro.diagnose.retest import minimal_retest_plan

        executor = self._fresh_executor()
        program = executor.run_plan(self.plan)
        screening_cycles = program.total_cycles
        syndromes: "dict[str, Syndrome]" = {}
        failing: "list[CoreResult]" = []
        for core_result in program.core_results():
            if core_result.syndrome is not None:
                syndromes[core_result.name] = core_result.syndrome
            if not core_result.passed:
                failing.append(core_result)
        candidates: "list[Candidate]" = []
        blamed_wires: "set[int]" = set()
        if failing:
            candidates = self._localize(failing, blamed_wires)
        failing_names = tuple(result.name for result in failing)
        retest = (
            minimal_retest_plan(
                self.soc, failing_names, cas_policy=self.cas_policy
            )
            if failing_names else None
        )
        return DiagnosisResult(
            workload=self.soc.name,
            scenario=self.scenario,
            screen_passed=not failing,
            failing_cores=failing_names,
            candidates=tuple(candidates),
            screening_cycles=screening_cycles,
            diagnosis_cycles=self._probe_cycles,
            planned_diagnosis_cycles=self._planned_cycles,
            probe_sessions=self._probe_sessions,
            full_retest_cycles=screening_cycles,
            retest_cycles=(
                retest.predicted_total_cycles if retest else 0
            ),
            backend=self.backend,
            syndromes={
                name: syndrome
                for name, syndrome in syndromes.items()
                if not syndrome.is_clean
            },
        )

    def _localize(
        self,
        failing: "list[CoreResult]",
        blamed_wires: "set[int]",
    ) -> "list[Candidate]":
        """Phase 2: adaptive per-suspect probing, cheapest first."""
        order = sorted(
            failing, key=lambda result: self._plan_probe(result.name)
        )
        candidates: "list[Candidate]" = []
        probed = 0
        for core_result in order:
            assignment = self._assignments[core_result.name]
            footprint = set(assignment.levels[0])
            if blamed_wires & footprint:
                # An already-identified broken wire explains this
                # core's failure; no extra sessions needed.
                continue
            if probed >= self.max_suspects:
                candidates.append(Candidate(
                    kind=CANDIDATE_WRAPPER,
                    core=core_result.name,
                    score=0.0,
                    detail="suspect budget exhausted; not probed",
                ))
                continue
            probed += 1
            candidates.extend(
                self._diagnose_suspect(core_result, blamed_wires)
            )
        candidates.sort(key=lambda c: -c.score)
        return candidates

    def _diagnose_suspect(
        self,
        core_result: CoreResult,
        blamed_wires: "set[int]",
    ) -> "list[Candidate]":
        """Wire check, then dictionary match, for one failing core."""
        assignment = self._assignments[core_result.name]
        original = assignment.levels[0]
        spares = self._spare_wires(original)
        syndrome = core_result.syndrome
        if len(spares) >= len(original):
            # Enough free wires for a fully disjoint footprint: one
            # probe decides core-vs-TAM, then a binary search narrows
            # a broken wire in log2(P) more sessions.
            alternate = tuple(spares[:len(original)])
            self._planned_cycles += self._plan_probe(core_result.name)
            moved = self._run_probe(
                self._with_top_wires(assignment, alternate)
            )
            if moved.passed:
                suspects = self._search_broken_wires(
                    assignment, list(alternate)
                )
                blamed_wires.update(suspects)
                return self._wire_candidates(
                    core_result.name, suspects,
                    f"{core_result.name} passes on wires "
                    f"{list(alternate)}, fails on {list(original)}",
                )
            # The defect moved with the core: use the cleaner solo
            # syndrome (identical to the screening one for logic
            # faults, and untangled from wire damage otherwise).
            syndrome = moved.syndrome or core_result.syndrome
        elif spares:
            # The footprint cannot move wholesale; swap one wire at a
            # time instead.  If replacing wire w heals the test, w is
            # the broken wire.
            for wire in original:
                trial = tuple(
                    spares[0] if used == wire else used
                    for used in original
                )
                self._planned_cycles += self._plan_probe(
                    core_result.name
                )
                if self._run_probe(
                    self._with_top_wires(assignment, trial)
                ).passed:
                    blamed_wires.add(wire)
                    return self._wire_candidates(
                        core_result.name, [wire],
                        f"{core_result.name} passes once wire {wire} "
                        f"is swapped for {spares[0]}",
                    )
        if syndrome is None or syndrome.is_clean:
            return [Candidate(
                kind=CANDIDATE_WRAPPER,
                core=core_result.name,
                score=0.5,
                detail="failure without a stable syndrome",
            )]
        spec = self._spec_of(core_result.name)
        return rank_cloud_candidates(
            spec,
            core_result.name,
            syndrome,
            max_candidates=self.max_candidates,
        )

    def _wire_candidates(
        self,
        core_name: str,
        suspects: Sequence[int],
        detail: str,
    ) -> "list[Candidate]":
        share = round(1.0 / len(suspects), 6)
        return [
            Candidate(
                kind=CANDIDATE_TAM_WIRE,
                core=core_name,
                score=share,
                wire=wire,
                detail=detail,
            )
            for wire in sorted(suspects)
        ]

    def _spec_of(self, name: str) -> CoreSpec:
        from repro.diagnose.inject import spec_at

        return spec_at(self.soc, name)


def diagnose_soc(
    soc: SocSpec,
    scenario: "DefectScenario | None" = None,
    *,
    backend: str = "auto",
    cas_policy: str = "all",
    max_candidates: int = 8,
) -> DiagnosisResult:
    """One-call diagnosis: screen, reconfigure, rank."""
    engine = DiagnosisEngine(
        soc,
        scenario,
        backend=backend,
        cas_policy=cas_policy,
        max_candidates=max_candidates,
    )
    return engine.run()
