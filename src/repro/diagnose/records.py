"""Campaign-store records for diagnosis runs.

Diagnosis results persist into the same append-only JSONL stores the
experiment campaigns use (:mod:`repro.campaign.store`), keyed by a
content hash of *experiment identity + injected scenario* -- so a
``repro diagnose`` seed sweep resumes exactly like a ``repro sweep``
does, and shares store files with it.  Records carry
``"kind": "diagnosis"`` so tabulators can tell them apart from plain
run records.
"""

from __future__ import annotations

import hashlib
from typing import Mapping

from repro.api.results import SCHEMA_VERSION
from repro.campaign.hashing import HASH_SCHEMA, canonical_json
from repro.diagnose.engine import DiagnosisResult
from repro.diagnose.inject import DefectScenario

#: ``record["kind"]`` value of a diagnosis record.
RECORD_KIND = "diagnosis"


def diagnosis_hash(experiment, scenario: "DefectScenario | None") -> str:
    """Content hash identifying one (experiment, scenario) diagnosis.

    Built on the same canonical-JSON discipline as
    :func:`repro.campaign.hashing.config_hash`, with the scenario (and
    a ``kind`` marker, so a diagnosis can never collide with the plain
    run of the same config) folded in.
    """
    from repro.campaign.hashing import experiment_identity

    payload = {
        "schema": HASH_SCHEMA,
        "kind": RECORD_KIND,
        "experiment": experiment_identity(experiment),
        "scenario": scenario.to_dict() if scenario else None,
    }
    text = canonical_json(payload)
    return hashlib.sha256(text.encode("ascii")).hexdigest()


def make_diagnosis_record(
    experiment,
    scenario: "DefectScenario | None",
    result: DiagnosisResult,
    *,
    elapsed_s: "float | None" = None,
    config_hash: "str | None" = None,
) -> dict:
    """The self-describing store record of one completed diagnosis.

    ``config_hash`` lets callers that already computed
    :func:`diagnosis_hash` (e.g. for a batched store lookup) pass it
    in instead of paying the canonicalisation twice.
    """
    return {
        "schema": SCHEMA_VERSION,
        "kind": RECORD_KIND,
        "hash": config_hash or diagnosis_hash(experiment, scenario),
        "workload": experiment.workload.identity(),
        "config": experiment.config.to_dict(),
        "scenario": scenario.to_dict() if scenario else None,
        "result": result.to_dict(),
        "elapsed_s": elapsed_s,
    }


def is_diagnosis_record(record: Mapping) -> bool:
    """Whether a store record came from a diagnosis run."""
    return record.get("kind") == RECORD_KIND


def result_from_record(record: Mapping) -> DiagnosisResult:
    """Rebuild the :class:`DiagnosisResult` of a diagnosis record."""
    return DiagnosisResult.from_dict(record["result"])
