"""``python -m repro`` -- the campaign command line.

See :mod:`repro.campaign.cli` for the verbs (run, sweep, report,
merge, list).
"""

import sys

from repro.campaign.cli import main

if __name__ == "__main__":
    sys.exit(main())
