"""Exception hierarchy for the CAS-BUS reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause
while still discriminating the finer-grained categories below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A component was built or driven with inconsistent parameters.

    Examples: a CAS asked for ``P > N``, a core demanding more test wires
    than the bus provides, an instruction register loaded with an encoding
    outside the instruction set.
    """


class SimulationError(ReproError):
    """The simulator reached a state it cannot resolve.

    Examples: two strong drivers fighting on a net, stepping a session
    that was never configured, reading a port that does not exist.
    """


class SynthesisError(ReproError):
    """Netlist generation or logic minimisation failed.

    Examples: a cover that does not implement its specification, a cell
    instantiated with the wrong pin count.
    """


class ScheduleError(ReproError):
    """Test scheduling could not satisfy its constraints.

    Examples: a session whose cores need more wires than the bus width,
    a core that can never be placed because ``P > N``.
    """


class VerificationError(ReproError):
    """An equivalence or invariant check between two models failed."""


class StoreError(ReproError):
    """A campaign result store cannot be read or written.

    Examples: a store written by a newer schema version, a merge target
    colliding with one of its sources.
    """
