"""BIST substrate: LFSR pattern generators, MISR response compactors and
a self-test engine wrapping a scannable core.

Figure 2(b) of the paper connects a BISTed core to the CAS with P=1:
the single switched wire starts the self-test and, when it completes,
streams the signature back to the SoC test controller.  Figure 2(c)
uses the same primitives off-chip: "P=1 when the source is a simple
LFSR and the sink a simple MISR".
"""

from repro.bist.lfsr import DEFAULT_TAPS, Lfsr
from repro.bist.misr import Misr
from repro.bist.engine import BistEngine, BistReport

__all__ = ["DEFAULT_TAPS", "Lfsr", "Misr", "BistEngine", "BistReport"]
