"""Multiple-input signature registers (MISR).

A MISR compacts a stream of parallel response vectors into a signature.
Built on the same primitive-polynomial taps as the LFSR so the state
transition is maximal-length.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.bist.lfsr import DEFAULT_TAPS


class Misr:
    """A parallel-input signature register of ``width`` stages."""

    def __init__(
        self,
        width: int,
        taps: Sequence[int] | None = None,
        seed: int = 0,
    ) -> None:
        if width < 2:
            raise ConfigurationError(f"MISR width must be >= 2, got {width}")
        if taps is None:
            if width not in DEFAULT_TAPS:
                raise ConfigurationError(
                    f"no default taps for width {width}; "
                    f"available: {sorted(DEFAULT_TAPS)}"
                )
            taps = DEFAULT_TAPS[width]
        self.width = width
        self.taps = tuple(taps)
        self._initial_state = seed % (1 << width)
        self.state = self._initial_state

    def reset(self) -> None:
        self.state = self._initial_state

    def absorb(self, inputs: Sequence[int]) -> None:
        """Clock the MISR once with a parallel input vector.

        ``inputs`` may be narrower than the register; missing stages
        absorb zero.
        """
        if len(inputs) > self.width:
            raise SimulationError(
                f"MISR of width {self.width} fed {len(inputs)} bits"
            )
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (self.width - tap)) & 1
        shifted = (self.state >> 1) | (feedback << (self.width - 1))
        inject = 0
        for index, bit in enumerate(inputs):
            if bit not in (0, 1):
                raise SimulationError(f"MISR input bit {bit!r} is not 0/1")
            inject |= bit << index
        self.state = shifted ^ inject

    def absorb_bit(self, bit: int) -> None:
        """Single-input convenience (serial signature analysis)."""
        self.absorb((bit,))

    @property
    def signature(self) -> int:
        return self.state

    def signature_bits(self) -> list[int]:
        """Signature as bits, LSB (stage 0) first -- the order a serial
        read-out over the test bus produces."""
        return [(self.state >> index) & 1 for index in range(self.width)]
