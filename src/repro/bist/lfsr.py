"""Linear feedback shift registers (Fibonacci form).

Tap sets come from the standard table of primitive polynomials, so the
default LFSR of width ``w`` has maximal period ``2^w - 1``.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError

#: Maximal-length tap positions (1-based, as usually tabulated) for
#: x^w + ... + 1 primitive polynomials.
DEFAULT_TAPS: dict[int, tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 12, 11, 8),
    14: (14, 13, 12, 2),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 18, 17, 14),
    20: (20, 17),
    24: (24, 23, 22, 17),
    28: (28, 25),
    32: (32, 30, 26, 25),
}


class Lfsr:
    """A Fibonacci LFSR producing one pseudo-random bit per step."""

    def __init__(
        self,
        width: int,
        taps: Sequence[int] | None = None,
        seed: int = 1,
    ) -> None:
        if width < 2:
            raise ConfigurationError(f"LFSR width must be >= 2, got {width}")
        if taps is None:
            if width not in DEFAULT_TAPS:
                raise ConfigurationError(
                    f"no default taps for width {width}; "
                    f"available: {sorted(DEFAULT_TAPS)}"
                )
            taps = DEFAULT_TAPS[width]
        self.width = width
        self.taps = tuple(taps)
        for tap in self.taps:
            if not 1 <= tap <= width:
                raise ConfigurationError(
                    f"tap {tap} out of range for width {width}"
                )
        if seed % (1 << width) == 0:
            raise ConfigurationError("LFSR seed must be non-zero modulo 2^w")
        self._initial_state = seed % (1 << width)
        self.state = self._initial_state

    def reset(self) -> None:
        self.state = self._initial_state

    def step(self) -> int:
        """Advance one cycle; returns the output bit (stage 1).

        Taps are numbered from the output side (tap ``w`` is the stage
        the feedback re-enters), so tap ``t`` reads register bit
        ``width - t`` -- the standard Fibonacci convention.
        """
        out_bit = self.state & 1
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (self.width - tap)) & 1
        self.state = (self.state >> 1) | (feedback << (self.width - 1))
        return out_bit

    def stream(self, count: int) -> list[int]:
        """The next ``count`` output bits."""
        return [self.step() for _ in range(count)]

    def period(self, limit: int | None = None) -> int:
        """Cycle length from the initial state (for verification).

        Stops at ``limit`` steps if given; raises if no cycle found.
        """
        if limit is None:
            limit = 1 << self.width
        probe = Lfsr(self.width, self.taps, self._initial_state)
        start = probe.state
        for count in range(1, limit + 1):
            probe.step()
            if probe.state == start:
                return count
        raise ConfigurationError(
            f"no period within {limit} steps (non-maximal taps?)"
        )
