"""BIST engine: LFSR-fed self-test of a scannable core with MISR
compaction, plus golden-signature computation.

The engine is the inside of a "BISTed core" (figure 2b): from the
CAS-BUS's point of view the whole thing is one core with P=1 whose test
consists of (a) a start command, (b) ``cycles`` autonomous clocks,
(c) a serial signature read-out.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.bist.lfsr import Lfsr
from repro.bist.misr import Misr
from repro.scan.core_model import ScannableCore


@dataclass(frozen=True)
class BistReport:
    """Outcome of one BIST run."""

    cycles: int
    signature: int
    golden_signature: int

    @property
    def passed(self) -> bool:
        return self.signature == self.golden_signature


class BistEngine:
    """Hardware self-test around one scannable core.

    Each BIST cycle: the LFSR supplies fresh pseudo-random values to
    every core input (PIs and flip-flops via test-mode load), the core
    computes, and the MISR absorbs all observable outputs (next-state
    and primary outputs).  This is test-per-clock BIST -- simple, and
    enough to give the CAS-BUS a realistic autonomous-test payload.
    """

    def __init__(
        self,
        core: ScannableCore,
        *,
        signature_width: int = 16,
        lfsr_seed: int = 0xACE1,
        fault: "tuple[int, int] | None" = None,
    ) -> None:
        if signature_width < 2:
            raise ConfigurationError(
                f"signature width must be >= 2, got {signature_width}"
            )
        self.core = core
        self.signature_width = signature_width
        self.lfsr = Lfsr(width=16, seed=lfsr_seed)
        self.misr = Misr(width=signature_width)
        self.fault = fault
        self._rng_cache: dict[int, list[int]] = {}

    def _input_vector(self, cycle: int) -> list[int]:
        """Pseudo-random core input vector for one BIST cycle.

        Derived from the LFSR state so runs are reproducible; cached so
        golden and faulty runs see identical stimuli.
        """
        cached = self._rng_cache.get(cycle)
        if cached is not None:
            return cached
        # Expand the LFSR serially into as many bits as the core needs.
        needed = self.core.cloud.num_inputs
        bits = self.lfsr.stream(needed)
        self._rng_cache[cycle] = bits
        return bits

    def run(self, cycles: int) -> BistReport:
        """Execute the self-test and return signature vs golden."""
        golden = self._signature(cycles, fault=None)
        actual = (
            golden
            if self.fault is None
            else self._signature(cycles, fault=self.fault)
        )
        return BistReport(
            cycles=cycles, signature=actual, golden_signature=golden
        )

    def golden_signature(self, cycles: int) -> int:
        """Signature of the fault-free core for ``cycles`` BIST clocks."""
        return self._signature(cycles, fault=None)

    def signatures_for(
        self,
        cycles: int,
        faults: "list[tuple[int, int]]",
    ) -> "tuple[int, dict[tuple[int, int], int]]":
        """``(golden, fault -> signature)`` over one self-test run.

        The fault-dictionary builder of :mod:`repro.diagnose.engine`
        needs every candidate's signature; running them together shares
        the per-cycle stimulus expansion (one LFSR stream for all
        faults) instead of re-deriving it per candidate.
        """
        self.lfsr.reset()
        self._rng_cache.clear()
        golden_misr = Misr(self.signature_width)
        misrs = {fault: Misr(self.signature_width) for fault in faults}
        width = self.signature_width
        for cycle in range(cycles):
            inputs = self._input_vector(cycle)
            golden_bits = [
                v & 1 for v in self.core.cloud.evaluate_words(
                    inputs, mask=1, fault=None
                )
            ]
            for start in range(0, len(golden_bits), width):
                golden_misr.absorb(golden_bits[start:start + width])
            for fault, misr in misrs.items():
                bits = [
                    v & 1 for v in self.core.cloud.evaluate_words(
                        inputs, mask=1, fault=fault
                    )
                ]
                for start in range(0, len(bits), width):
                    misr.absorb(bits[start:start + width])
        return golden_misr.signature, {
            fault: misr.signature for fault, misr in misrs.items()
        }

    def _signature(self, cycles: int, fault: "tuple[int, int] | None") -> int:
        self.lfsr.reset()
        self.misr.reset()
        self._rng_cache.clear()
        for cycle in range(cycles):
            inputs = self._input_vector(cycle)
            outputs = self.core.cloud.evaluate_words(inputs, mask=1,
                                                     fault=fault)
            bits = [v & 1 for v in outputs]
            # Fold every observable output into the signature, chunked
            # to the MISR width, so no logic escapes compaction.
            for start in range(0, len(bits), self.misr.width):
                self.misr.absorb(bits[start:start + self.misr.width])
        return self.misr.signature


def random_detectable_fault(
    core: ScannableCore,
    seed: int,
    *,
    check_cycles: int = 32,
    attempts: int = 64,
) -> tuple[int, int]:
    """A pseudo-random stuck-at fault that a short BIST run detects.

    Used by examples and failure-injection tests to make a BISTed or
    scanned core instance actually defective.  Candidates that do not
    change the signature within ``check_cycles`` (redundant or masked
    faults) are skipped.
    """
    rng = random.Random(seed)
    probe = BistEngine(core, signature_width=8)
    golden = probe.golden_signature(check_cycles)
    for _ in range(attempts):
        node = rng.randrange(core.cloud.num_inputs, core.cloud.num_nodes)
        fault = (node, rng.randint(0, 1))
        if probe._signature(check_cycles, fault=fault) != golden:
            return fault
    raise ConfigurationError(
        f"no detectable fault found in {attempts} attempts "
        f"(core {core.name}, seed {seed})"
    )
