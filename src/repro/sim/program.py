"""Controller-program compilation and replay.

The paper's central SoC test controller "synchroniz[es] test data and
control".  This module turns system-level intents into the concrete
per-cycle control stream (:class:`~repro.core.controller.ControllerProgram`)
that such a controller would issue -- the artefact a test programmer
would review -- and can replay a program against a live system,
proving the stream is self-contained.
"""

from __future__ import annotations

from typing import Mapping

from repro import values as lv
from repro.errors import SimulationError
from repro.core.controller import ControllerProgram, SoCTestController
from repro.sim.system import CasBusSystem


def compile_configuration_program(
    system: CasBusSystem,
    targets: Mapping[str, int],
    *,
    phase: str = "configuration",
) -> ControllerProgram:
    """The controller program for one serial reconfiguration.

    The program is pure data: shifting it into the system (see
    :func:`replay_program`) is equivalent to
    :meth:`~repro.sim.system.CasBusSystem.run_configuration`.
    """
    controller = SoCTestController(system.n)
    program = controller.new_program()
    controller.add_configuration(
        program, system.config_stream(targets), phase=phase
    )
    return program


def replay_program(
    system: CasBusSystem,
    program: ControllerProgram,
) -> int:
    """Drive a system cycle by cycle from a controller program.

    Returns the number of cycles executed.  Only the configuration
    machinery reacts here (test-phase payloads are driver-specific and
    produced by the session executor); the point is that the serial
    streams are complete and ordering-correct on their own.
    """
    cycles = 0
    for cycle in program:
        if cycle.config:
            bit = 1 if cycle.bus_in[0] == lv.ONE else 0
            system.serial_shift(bit)
        if cycle.update:
            system.config_update()
        if cycle.config and cycle.update:
            raise SimulationError(
                "a controller cycle cannot shift and update at once"
            )
        cycles += 1
    return cycles


def configuration_report(program: ControllerProgram) -> str:
    """Human-readable summary of a controller program."""
    total = len(program)
    phases = ", ".join(
        f"{name}: {count}" for name, count in program.phase_lengths.items()
    )
    shifts = sum(1 for cycle in program if cycle.config)
    updates = sum(1 for cycle in program if cycle.update)
    return (
        f"controller program: {total} cycles ({phases}); "
        f"{shifts} shift cycles, {updates} update pulses on an "
        f"{program.n}-wire bus"
    )
