"""SoC interconnect test over the CAS-BUS (EXTEST).

Paper section 4: "SoC interconnect test time can be optimized when
adopting a good configuration of the test chains."  Interconnect test
is the boundary-scan classic: wrappers go to EXTEST, test patterns are
shifted into the *driver* cores' output boundary cells, a transfer
cycle launches them across the SoC wiring, the *sink* cores' input
boundary cells capture, and the captured values are shifted out and
compared.

This module supplies:

* :class:`Interconnect` -- one core-to-core net;
* :func:`counting_patterns` -- the standard modified counting sequence
  (detects all stuck-ats/opens and every pairwise short, because every
  net pair sees differing values in some pattern);
* fault models applied at transfer time by the system executor:
  stuck-at, open (reads as 0), and pairwise wired-AND shorts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ConfigurationError

#: Fault kinds for interconnect nets.
FAULT_STUCK_AT_0 = "sa0"
FAULT_STUCK_AT_1 = "sa1"
FAULT_OPEN = "open"
FAULT_SHORT = "short"  # keyed by a (net_a, net_b) tuple


@dataclass(frozen=True)
class Interconnect:
    """One point-to-point SoC net between two wrapped cores.

    Attributes:
        name: net name (unique within the SoC).
        source: ``(core_name, po_index)`` -- the driving core output.
        sink: ``(core_name, pi_index)`` -- the receiving core input.
    """

    name: str
    source: tuple[str, int]
    sink: tuple[str, int]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("interconnect needs a name")
        for role, (core, pin) in (("source", self.source),
                                  ("sink", self.sink)):
            if pin < 0:
                raise ConfigurationError(
                    f"{self.name}: negative {role} pin {pin}"
                )
        if self.source[0] == self.sink[0]:
            raise ConfigurationError(
                f"{self.name}: source and sink on the same core "
                f"(feedthroughs are not modelled)"
            )


def validate_interconnects(
    nets: Sequence[Interconnect],
    core_shapes: Mapping[str, tuple[int, int]],
) -> None:
    """Check nets against the cores' (num_pis, num_pos) shapes."""
    names = [net.name for net in nets]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate interconnect names in {names}")
    sinks_seen: set[tuple[str, int]] = set()
    for net in nets:
        source_core, po_index = net.source
        sink_core, pi_index = net.sink
        for core, label in ((source_core, "source"), (sink_core, "sink")):
            if core not in core_shapes:
                raise ConfigurationError(
                    f"{net.name}: unknown {label} core {core!r}"
                )
        num_pis, num_pos = core_shapes[source_core]
        if po_index >= num_pos:
            raise ConfigurationError(
                f"{net.name}: source pin {po_index} out of range "
                f"({source_core} has {num_pos} outputs)"
            )
        num_pis, num_pos = core_shapes[sink_core]
        if pi_index >= num_pis:
            raise ConfigurationError(
                f"{net.name}: sink pin {pi_index} out of range "
                f"({sink_core} has {num_pis} inputs)"
            )
        if (sink_core, pi_index) in sinks_seen:
            raise ConfigurationError(
                f"{net.name}: sink {sink_core}.pi{pi_index} driven twice"
            )
        sinks_seen.add((sink_core, pi_index))


def counting_patterns(nets: Sequence[Interconnect]) -> list[dict[str, int]]:
    """The true/complement counting sequence over a set of nets.

    Net ``i`` receives the bits of ``i + 1`` (avoiding the all-zero
    code) across ``ceil(log2(n + 2))`` patterns, each followed by its
    complement, plus the all-zeros and all-ones patterns.  Every net
    sees both values, and every ordered pair of nets has a pattern
    where they differ in *each direction* -- required to catch
    wired-AND (and wired-OR) shorts on both participants, as well as
    all stuck-ats and opens.
    """
    if not nets:
        return []
    width = max(1, math.ceil(math.log2(len(nets) + 2)))
    patterns: list[dict[str, int]] = []
    for bit in range(width):
        true_pattern = {
            net.name: (index + 1 >> bit) & 1
            for index, net in enumerate(nets)
        }
        patterns.append(true_pattern)
        patterns.append({
            name: 1 - value for name, value in true_pattern.items()
        })
    patterns.append({net.name: 0 for net in nets})
    patterns.append({net.name: 1 for net in nets})
    return patterns


def apply_faults(
    driven: dict[str, int],
    faults: Mapping[object, str],
) -> dict[str, int]:
    """Fault-transform the driver-side values into sink-side values.

    ``faults`` maps a net name to ``sa0``/``sa1``/``open``, or a
    ``(net_a, net_b)`` tuple to ``short`` (wired-AND).
    """
    received = dict(driven)
    for key, kind in faults.items():
        if kind == FAULT_SHORT:
            if not (isinstance(key, tuple) and len(key) == 2):
                raise ConfigurationError(
                    f"short faults need a (net, net) key, got {key!r}"
                )
            net_a, net_b = key
            if net_a not in received or net_b not in received:
                raise ConfigurationError(
                    f"short {key} references unknown nets"
                )
            wired = received[net_a] & received[net_b]
            received[net_a] = wired
            received[net_b] = wired
        elif kind == FAULT_STUCK_AT_0:
            _check_net(key, received)
            received[key] = 0  # type: ignore[index]
        elif kind == FAULT_STUCK_AT_1:
            _check_net(key, received)
            received[key] = 1  # type: ignore[index]
        elif kind == FAULT_OPEN:
            _check_net(key, received)
            received[key] = 0  # floating input, pulled down
        else:
            raise ConfigurationError(f"unknown fault kind {kind!r}")
    return received


def _check_net(key: object, received: dict[str, int]) -> None:
    if key not in received:
        raise ConfigurationError(f"fault on unknown net {key!r}")
