"""Process-wide ATPG test-set cache.

A :class:`~repro.soc.core.CoreSpec` is frozen and fully seeded, so the
test set generated for it is a pure function of the spec: every system
instance of the same spec shares one ATPG run.  Both execution backends
draw from this cache -- the legacy executor used to regenerate test
sets per executor instance, which dominated repeated simulation runs.
"""

from __future__ import annotations

from repro.scan.atpg import TestSet, generate_test_set
from repro.sim.cache import BoundedCache
from repro.soc.core import CoreSpec

#: Least-recently-used entries are evicted past this size, so sweeps
#: over unbounded generated workloads (``random_soc`` et al.) cannot
#: grow memory monotonically while hot specs stay cached.
MAX_CACHED = 1024

_CACHE: "BoundedCache[CoreSpec, TestSet]" = BoundedCache(
    MAX_CACHED, name="testsets"
)


def test_set_for(spec: CoreSpec) -> TestSet:
    """The (cached) ATPG test set for a scan core spec.

    Always generated from a *clean* build of the spec -- injected
    faults live in system instances, never in expected data.
    """
    cached = _CACHE.get(spec)
    if cached is not None:
        return cached
    clean = spec.build_scannable()
    test_set = generate_test_set(
        clean,
        seed=spec.seed,
        target_coverage=spec.atpg_target,
        max_patterns=spec.atpg_max_patterns,
        deterministic_topup=spec.atpg_deterministic,
    )
    _CACHE.put(spec, test_set)
    return test_set


def clear_cache() -> None:
    """Drop every cached test set (tests and memory-sensitive callers)."""
    _CACHE.clear()
