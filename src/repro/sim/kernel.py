"""Compile-then-execute simulation kernel.

The legacy :class:`~repro.sim.session.SessionExecutor` moves every test
bit through per-cycle, per-node Python dispatch: each clock routes the
whole bus through every CAS object and shifts wrapper chains one
boundary cell at a time.  That is faithful but slow -- and for every
*valid* plan it is also redundant, because the architecture guarantees
independence: concurrently tested cores sit on disjoint bus wires, and
the paper's pairing heuristic routes a terminal's data in and out on
the same wire.  A core's test traffic therefore never interacts with
another core's, and a whole shift window can be computed at once.

This module exploits that in two phases:

* **compile** -- lower a session into flat per-core *programs*: serial
  chain geometry as index tuples, scan stimulus and expected-response
  streams bit-packed into Python ints (care bits separated, so
  don't-cares cost nothing), configuration targets and exact stage
  cycle costs.  Programs are pure functions of the frozen
  :class:`~repro.soc.core.CoreSpec`, so they are cached process-wide.
* **execute** -- run each compiled program with integer shift/mask
  arithmetic plus one combinational-cloud evaluation per capture
  (needed only when the instance carries an injected fault), and apply
  configuration by loading the same register states the serial
  protocol would have shifted in, with the update pulses driven
  through the real node objects so side effects (BIST restarts, CHAIN
  splices) stay bit-exact.

The kernel reproduces the legacy backend's
:class:`~repro.sim.session.ProgramResult` exactly -- cycle counts,
pass/fail, bit-level mismatch counts, per-core detail strings -- and
leaves the live system objects in the same post-session state (chain
contents, wrapper modes, CAS codes), so non-interference snapshots and
mixed-backend usage agree.  Golden-equivalence tests in
``tests/integration/test_kernel_equivalence.py`` pin this.

What it does not do: record per-cycle traces (use the legacy backend
for VCD work) and drive gate-level CAS instances (their whole point is
exercising the generated netlist cycle by cycle).
:func:`kernel_supports` reports whether a system qualifies;
:class:`~repro.sim.session.SessionExecutor` falls back automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.diagnose.syndrome import (
    KIND_BIST,
    KIND_EXTERNAL,
    KIND_SCAN,
    Syndrome,
)
from repro.errors import ConfigurationError, SimulationError
from repro.core.cas import CoreAccessSwitch
from repro.core.instruction import CHAIN_CODE
from repro.bist.lfsr import Lfsr
from repro.bist.misr import Misr
from repro.scan.atpg import TestSet
from repro.soc.core import CoreSpec, TestMethod
from repro.obs.spans import span as obs_span
from repro.sim.cache import BoundedCache
from repro.sim.config import configuration_targets, state_snapshot
from repro.sim.nodes import BistNode, CasNode, ScanNode
from repro.sim.plan import CoreAssignment, SessionPlan, TestPlan
from repro.sim.session import CoreResult, ProgramResult, SessionResult
from repro.sim.system import CasBusSystem
from repro.sim.testsets import test_set_for
from repro.wrapper.wir import Wir
from repro.wrapper.wrapper import P1500Wrapper


def kernel_supports(system: CasBusSystem) -> bool:
    """Whether the compiled kernel can run this system.

    Gate-level CAS instances exist to exercise the generated netlist
    through the real serial protocol, so they stay on the legacy
    backend.  So do systems carrying physical transport defects --
    broken/bridged bus wires or dead wrapper boundary cells (see
    :mod:`repro.diagnose.inject`): the kernel's whole premise is that
    test traffic crosses the TAM unmodified.
    """
    if getattr(system, "wire_faults", None) or getattr(
        system, "wire_bridges", None
    ):
        return False
    for node in system.walk():
        if not isinstance(node.cas, CoreAccessSwitch):
            return False
        if node.wrapper is not None and any(
            cell.stuck is not None for cell in node.wrapper.boundary.cells
        ):
            return False
    return True


def _popcount(word: int) -> int:
    return bin(word).count("1")


# -- compiled per-core programs -----------------------------------------------


@dataclass(frozen=True)
class _ChainGeometry:
    """One wrapper chain as index tuples, scan-in side first."""

    in_pi: tuple[int, ...]    # PI number of each input boundary cell
    ff_ids: tuple[int, ...]   # core flip-flop id at each chain position
    out_po: tuple[int, ...]   # PO number of each output boundary cell

    @property
    def length(self) -> int:
        return len(self.in_pi) + len(self.ff_ids) + len(self.out_po)


def chain_geometries(wrapper: P1500Wrapper) -> tuple[_ChainGeometry, ...]:
    """Per-chain index geometry of a wrapped core.

    Public because the diagnosis engine (:mod:`repro.diagnose`) uses
    the same geometry to map observed syndromes back onto core
    flip-flops and primary outputs.
    """
    assert wrapper.core is not None
    layout = wrapper.chain_layout()
    return tuple(
        _ChainGeometry(
            in_pi=in_pi,
            ff_ids=tuple(wrapper.core.chains[c]),
            out_po=out_po,
        )
        for c, (in_pi, out_po) in enumerate(layout)
    )


def _pack_reversed(contents: Sequence[int]) -> int:
    """Chain contents -> the packed bit stream they scan out.

    Bit ``o`` of the result is what emerges on the ``o``-th shift: the
    content nearest scan-out first.
    """
    word = 0
    for offset, bit in enumerate(reversed(contents)):
        word |= bit << offset
    return word


@dataclass(frozen=True)
class _ScanProgram:
    """Everything a scan core's session test needs, precompiled."""

    test_set: TestSet
    geometries: tuple[_ChainGeometry, ...]
    lengths: tuple[int, ...]
    depth: int
    num_patterns: int
    total_cycles: int
    bits_compared: int
    #: ``want_care[r][c]`` = packed (expected, care-mask) ints for
    #: response ``r`` emerging on chain ``c``.
    want_care: tuple[tuple[tuple[int, int], ...], ...]
    detail: str


#: LRU-bounded like :data:`repro.sim.testsets.MAX_CACHED`, so sweeps
#: over generated workloads cannot grow memory monotonically.
MAX_CACHED_PROGRAMS = 1024

_SCAN_PROGRAMS: "BoundedCache[CoreSpec, _ScanProgram]" = BoundedCache(
    MAX_CACHED_PROGRAMS, name="scan_programs"
)


def _scan_program(spec: CoreSpec, wrapper: P1500Wrapper) -> _ScanProgram:
    cached = _SCAN_PROGRAMS.get(spec)
    if cached is not None:
        return cached
    test_set = test_set_for(spec)
    geometries = chain_geometries(wrapper)
    lengths = tuple(geo.length for geo in geometries)
    depth = max(lengths)
    num_patterns = len(test_set.patterns)
    want_care = tuple(
        tuple(
            _pack_expected(geo, response) for geo in geometries
        )
        for response in test_set.responses
    )
    program = _ScanProgram(
        test_set=test_set,
        geometries=geometries,
        lengths=lengths,
        depth=depth,
        num_patterns=num_patterns,
        # (depth shifts + 1 capture) per pattern + final flush.
        total_cycles=(depth + 1) * num_patterns + depth,
        bits_compared=num_patterns * sum(
            len(geo.ff_ids) + len(geo.out_po) for geo in geometries
        ),
        want_care=want_care,
        detail=(
            f"{num_patterns} patterns, chains={list(lengths)}, "
            f"coverage={test_set.fault_coverage:.2%}"
        ),
    )
    _SCAN_PROGRAMS.put(spec, program)
    return program


def _pack_expected(geo: _ChainGeometry, response) -> tuple[int, int]:
    """Packed (want, care) for one response on one chain.

    Input-cell positions echo the next pattern's PI load, not core
    logic, so they are don't-care -- exactly the ``None`` entries of
    :meth:`~repro.wrapper.wrapper.P1500Wrapper.expected_response_streams`.
    """
    want = 0
    care = 0
    contents = (
        [None] * len(geo.in_pi)
        + [response.ff_values[ff] for ff in geo.ff_ids]
        + [response.po_values[po] for po in geo.out_po]
    )
    for offset, value in enumerate(reversed(contents)):
        if value is None:
            continue
        care |= 1 << offset
        want |= value << offset
    return want, care


# -- kernel executor ----------------------------------------------------------


@dataclass
class _CompiledDriver:
    """One tested terminal inside a compiled session."""

    kind: str  # "scan" | "bist" | "external"
    node: CasNode
    assignment: CoreAssignment
    total_cycles: int
    scan: _ScanProgram | None = None


@dataclass
class _CompiledSession:
    """A session lowered to per-core programs (state-independent)."""

    plan: SessionPlan
    drivers: list[_CompiledDriver]

    @property
    def test_cycles(self) -> int:
        return max(
            (driver.total_cycles for driver in self.drivers), default=0
        )


class KernelExecutor:
    """Compiled counterpart of :class:`~repro.sim.session.SessionExecutor`.

    Runs plans against one live system instance.  The constructor takes
    an optional ``test_sets`` mapping (node path -> test set) that it
    keeps populated, so a delegating session executor exposes the same
    introspection surface either way.
    """

    def __init__(
        self,
        system: CasBusSystem,
        test_sets: "dict[str, TestSet] | None" = None,
        capture_syndromes: bool = False,
    ) -> None:
        if not kernel_supports(system):
            raise ConfigurationError(
                f"{system.soc.name}: gate-level CAS instances need the "
                f"legacy object-stepping backend"
            )
        self.system = system
        self.capture_syndromes = capture_syndromes
        self._test_sets = test_sets if test_sets is not None else {}
        self._compiled: dict[SessionPlan, _CompiledSession] = {}

    # -- public API ------------------------------------------------------

    def run_plan(self, plan: TestPlan) -> ProgramResult:
        plan.validate(self.system.n)
        program = ProgramResult()
        for index, session in enumerate(plan.sessions):
            label = session.label or f"session{index}"
            program.sessions.append(self.run_session(session, label=label))
        return program

    def run_session(
        self,
        session: SessionPlan,
        *,
        label: str = "session",
        undisturbed_paths: Sequence[tuple[str, ...]] = (),
    ) -> SessionResult:
        session.validate(self.system.n)
        with obs_span("executor.session", label=label, backend="kernel"):
            with obs_span("executor.compile"):
                compiled = self.compile_session(session)
            snapshots = {
                "/".join(path): state_snapshot(self.system, path)
                for path in undisturbed_paths
            }
            with obs_span("executor.config"):
                config_cycles = self._apply_configuration(session)
            with obs_span(
                "executor.capture", cycles=compiled.test_cycles
            ):
                core_results = [
                    self._execute_driver(driver)
                    for driver in compiled.drivers
                ]
        result = SessionResult(
            label=label,
            config_cycles=config_cycles,
            test_cycles=compiled.test_cycles,
            core_results=core_results,
        )
        for name, before in snapshots.items():
            after = state_snapshot(self.system, tuple(name.split("/")))
            result.undisturbed[name] = (before == after)
        return result

    # -- compile ---------------------------------------------------------

    def compile_session(self, session: SessionPlan) -> _CompiledSession:
        cached = self._compiled.get(session)
        if cached is not None:
            return cached
        # Validate the configuration first so error ordering matches the
        # legacy backend (conflicting/hierarchy errors before driver or
        # wire errors); the cheap target computation is redone against
        # live state when the session actually runs.
        configuration_targets(self.system, session)
        drivers = [
            self._compile_driver(assignment)
            for assignment in session.assignments
        ]
        used_wires: dict[int, str] = {}
        for driver in drivers:
            for wire in driver.assignment.top_wires():
                owner = used_wires.get(wire)
                if owner is not None and owner != driver.assignment.name:
                    raise SimulationError(
                        f"two drivers on wire {wire}: {owner} and "
                        f"{driver.assignment.name}"
                    )
                used_wires[wire] = driver.assignment.name
        compiled = _CompiledSession(plan=session, drivers=drivers)
        self._compiled[session] = compiled
        return compiled

    def _compile_driver(self, assignment: CoreAssignment) -> _CompiledDriver:
        node = self.system.node_at(assignment.path)
        if isinstance(node, BistNode):
            return _CompiledDriver(
                kind="bist",
                node=node,
                assignment=assignment,
                total_cycles=(node.spec.bist_cycles
                              + node.spec.signature_width),
            )
        if node.spec.method == TestMethod.EXTERNAL:
            assert node.wrapper is not None
            depth = node.wrapper.max_chain_length
            patterns = node.spec.external_stream_patterns
            return _CompiledDriver(
                kind="external",
                node=node,
                assignment=assignment,
                total_cycles=(depth + 1) * patterns + depth,
            )
        if isinstance(node, ScanNode):
            assert node.wrapper is not None
            program = _scan_program(node.spec, node.wrapper)
            self._test_sets[node.path] = program.test_set
            return _CompiledDriver(
                kind="scan",
                node=node,
                assignment=assignment,
                total_cycles=program.total_cycles,
                scan=program,
            )
        raise ConfigurationError(
            f"{assignment.name}: no driver for {node.spec.method}"
        )

    # -- configuration ---------------------------------------------------

    def _apply_configuration(self, session: SessionPlan) -> int:
        """Load the staged configuration; returns the exact cycle cost.

        The serial protocol's cost is the chain length plus the update
        pulse per stage; its *effect* is that every register on the
        chain ends up holding the target (or re-loaded current) code
        and one update pulse fires.  The kernel applies the effect
        directly and charges the same cycles, driving the update
        through the real node objects so splice/restart side effects
        are identical.
        """
        system = self.system
        cas_targets, wir_targets = configuration_targets(system, session)
        splice: dict[str, int] = {
            path: Wir.code_of(mode) for path, mode in wir_targets.items()
        }
        cycles = 0
        if splice:
            # Stage A: re-shift the current chain with spliced CASes
            # moved to CHAIN.
            cycles += self._chain_width() + 1
            for node in system.walk():
                reload_wir = node.chain_spliced
                code = (CHAIN_CODE if node.path in splice
                        else node.cas.active_code)
                node.cas.load_code(code)
                if reload_wir:
                    assert node.wrapper is not None
                    wir = node.wrapper.wir
                    wir.load_code(wir.active_code)
            system.config_update()
        # Stage B: final CAS codes everywhere, wrapper instructions
        # through the freshly spliced WIRs, one atomic update.
        cycles += self._chain_width() + 1
        for node in system.walk():
            reload_wir = node.chain_spliced and node.path not in splice
            node.cas.load_code(cas_targets[f"{node.path}.cas"])
            if node.path in splice:
                assert node.wrapper is not None
                node.wrapper.wir.load_code(splice[node.path])
            elif reload_wir:
                assert node.wrapper is not None
                wir = node.wrapper.wir
                wir.load_code(wir.active_code)
        system.config_update()
        return cycles

    def _chain_width(self) -> int:
        return sum(
            register.width for register in self.system.serial_layout()
        )

    # -- execute ---------------------------------------------------------

    def _execute_driver(self, driver: _CompiledDriver) -> CoreResult:
        if driver.kind == "scan":
            return self._run_scan(driver)
        if driver.kind == "bist":
            return self._run_bist(driver)
        return self._run_external(driver)

    def _run_bist(self, driver: _CompiledDriver) -> CoreResult:
        node = driver.node
        assert isinstance(node, BistNode)
        spec = node.spec
        report = node.engine.run(spec.bist_cycles)
        mask = (1 << spec.signature_width) - 1
        xor_mask = (report.signature ^ report.golden_signature) & mask
        mismatches = _popcount(xor_mask)
        return CoreResult(
            name=driver.assignment.name,
            method="bist",
            passed=mismatches == 0,
            bits_compared=spec.signature_width,
            mismatches=mismatches,
            detail=(
                f"{spec.bist_cycles} BIST cycles, "
                f"{spec.signature_width}-bit signature"
            ),
            syndrome=(Syndrome.signature_xor(KIND_BIST, xor_mask, 0)
                      if self.capture_syndromes else None),
        )

    def _run_scan(self, driver: _CompiledDriver) -> CoreResult:
        node = driver.node
        program = driver.scan
        assert program is not None
        wrapper = node.wrapper
        assert wrapper is not None and wrapper.core is not None
        core = wrapper.core
        masks: "dict[tuple[int, int], int]" = {}
        if core.fault is None or program.num_patterns == 0:
            # A clean instance's captures are, bit for bit, the ATPG
            # responses the expected streams were compiled from.
            mismatches = 0
        else:
            mismatches = self._scan_mismatches(
                core, program,
                masks=masks if self.capture_syndromes else None,
            )
        # Every window shifts full depth, so the final flush leaves all
        # chains (boundary cells included) holding zeros -- write the
        # state the legacy backend would have shifted into place.
        core.ff_values = [0] * core.num_ffs
        for cell in wrapper.boundary.cells:
            cell.shift_value = 0
        return CoreResult(
            name=driver.assignment.name,
            method="scan",
            passed=mismatches == 0,
            bits_compared=program.bits_compared,
            mismatches=mismatches,
            detail=program.detail,
            syndrome=(Syndrome.from_masks(KIND_SCAN, masks)
                      if self.capture_syndromes else None),
        )

    @staticmethod
    def _scan_mismatches(
        core,
        program: _ScanProgram,
        masks: "dict[tuple[int, int], int] | None" = None,
    ) -> int:
        """Bit-exact mismatch count for a fault-carrying instance.

        With ``masks``, the per-``(window, chain)`` mismatch words --
        exactly the quantity :func:`_compare_window` popcounts -- are
        also recorded, in the same packing the legacy backend's
        syndrome capture produces bit for bit.
        """
        cloud = core.cloud
        fault = core.fault
        num_pis = core.num_pis
        num_ffs = core.num_ffs
        mismatches = 0
        emitted: list[int] = []
        patterns = program.test_set.patterns
        for index, pattern in enumerate(patterns):
            if index > 0:
                mismatches += _compare_window(
                    emitted, program.want_care[index - 1],
                    window=index - 1, masks=masks,
                )
            # Capture: PIs and present state come straight from the
            # freshly loaded pattern; one cloud evaluation applies the
            # instance's injected fault.
            inputs = list(pattern.pi) + [0] * num_ffs
            for chain, geo in zip(pattern.chains, program.geometries):
                for position, ff in enumerate(geo.ff_ids):
                    inputs[num_pis + ff] = chain[position]
            outputs = cloud.evaluate_words(inputs, mask=1, fault=fault)
            emitted = [
                _pack_reversed(
                    [pattern.pi[pi] for pi in geo.in_pi]
                    + [outputs[ff] & 1 for ff in geo.ff_ids]
                    + [outputs[num_ffs + po] & 1 for po in geo.out_po]
                )
                for geo in program.geometries
            ]
        # The last response scans out during the flush window.
        mismatches += _compare_window(
            emitted, program.want_care[-1],
            window=program.num_patterns - 1, masks=masks,
        )
        return mismatches

    def _run_external(self, driver: _CompiledDriver) -> CoreResult:
        """Off-chip LFSR source vs MISR sink with a golden shadow.

        The live chain starts from whatever state the instance is in
        (a re-test after earlier activity legitimately diverges from
        the fresh-built golden shadow, exactly as on the legacy
        backend), so this driver simulates the full bit stream -- still
        at chain level, with one cloud evaluation per capture instead
        of per-cycle bus routing.
        """
        node = driver.node
        spec = node.spec
        wrapper = node.wrapper
        assert wrapper is not None and wrapper.core is not None
        core = wrapper.core
        geo = chain_geometries(wrapper)[0]
        depth = geo.length
        num_in = len(geo.in_pi)
        num_core = len(geo.ff_ids)
        input_cells = wrapper.boundary.input_cells
        output_cells = wrapper.boundary.output_cells
        live = (
            [input_cells[pi].shift_value for pi in geo.in_pi]
            + [core.ff_values[ff] for ff in geo.ff_ids]
            + [output_cells[po].shift_value for po in geo.out_po]
        )
        shadow = [0] * depth
        source = Lfsr(16, seed=0xACE1 ^ (spec.seed or 1))
        live_misr = Misr(16)
        golden_misr = Misr(16)
        bits_compared = 0
        for window in range(spec.external_stream_patterns + 1):
            for _ in range(depth):
                live_misr.absorb_bit(live[-1])
                golden_misr.absorb_bit(shadow[-1])
                bit = source.step()
                live.insert(0, bit)
                live.pop()
                shadow.insert(0, bit)
                shadow.pop()
                bits_compared += 1
            if window < spec.external_stream_patterns:
                chain_capture(core, geo, live, core.fault)
                chain_capture(core, geo, shadow, None)
        for position, pi in enumerate(geo.in_pi):
            input_cells[pi].shift_value = live[position]
        for position, ff in enumerate(geo.ff_ids):
            core.ff_values[ff] = live[num_in + position]
        for position, po in enumerate(geo.out_po):
            output_cells[po].shift_value = live[num_in + num_core + position]
        passed = live_misr.signature == golden_misr.signature
        return CoreResult(
            name=driver.assignment.name,
            method="external",
            passed=passed,
            bits_compared=bits_compared,
            mismatches=0 if passed else 1,
            detail=(
                f"sink signature {live_misr.signature:#06x} vs "
                f"golden {golden_misr.signature:#06x}"
            ),
            syndrome=(Syndrome.signature_xor(
                KIND_EXTERNAL, live_misr.signature, golden_misr.signature,
            ) if self.capture_syndromes else None),
        )


def chain_capture(core, geo: _ChainGeometry, state: list[int],
                  fault) -> None:
    """One capture clock on chain contents held as a flat list.

    Public for the diagnosis engine's off-line external-stream
    predictor (:mod:`repro.diagnose.engine`).
    """
    num_in = len(geo.in_pi)
    pi_values = [0] * core.num_pis
    for position, pi in enumerate(geo.in_pi):
        pi_values[pi] = state[position]
    ff_values = [0] * core.num_ffs
    for position, ff in enumerate(geo.ff_ids):
        ff_values[ff] = state[num_in + position]
    outputs = core.cloud.evaluate_words(
        pi_values + ff_values, mask=1, fault=fault
    )
    for position, ff in enumerate(geo.ff_ids):
        state[num_in + position] = outputs[ff] & 1
    base = num_in + len(geo.ff_ids)
    for position, po in enumerate(geo.out_po):
        state[base + position] = outputs[core.num_ffs + po] & 1


def _compare_window(
    emitted: list[int],
    want_care,
    *,
    window: int = 0,
    masks: "dict[tuple[int, int], int] | None" = None,
) -> int:
    total = 0
    for chain, (got, (want, care)) in enumerate(zip(emitted, want_care)):
        diff = (got ^ want) & care
        if diff:
            total += _popcount(diff)
            if masks is not None:
                masks[(window, chain)] = masks.get((window, chain), 0) | diff
    return total


def clear_program_cache() -> None:
    """Drop compiled scan programs (tests and memory-sensitive callers)."""
    _SCAN_PROGRAMS.clear()
