"""Test plans: which cores are tested when, on which wires.

A :class:`TestPlan` is a sequence of :class:`SessionPlan` steps; each
session tests a set of cores *concurrently* on disjoint top-level bus
wires.  Hierarchical cores are addressed by path, and an assignment
carries the wire choice at every hierarchy level:

``levels[0]`` -- top-level bus wires feeding the outermost node on the
path (ordered by that node's ports); ``levels[1]`` -- the inner bus
wires feeding the next node; ...; ``levels[-1]`` -- the wires of the
terminal core's enclosing bus, ordered by the terminal's ports.

Because every CAS applies the paper's pairing heuristic (``e_i -> o_j``
implies ``i_j -> s_i``), a terminal port's data enters and leaves the
SoC on the *same* top-level wire; :meth:`CoreAssignment.top_wire`
computes it by composing the levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CoreAssignment:
    """Wire assignment for one (possibly nested) tested core.

    Attributes:
        path: core names from the top level down, e.g. ``("core5",
            "core5a")``; flat cores have a single-element path.
        levels: per-level wire tuples as described in the module doc.
        wir_override: optional wrapper instruction replacing the
            default (INTEST for scan/external, BIST for BISTed cores);
            the interconnect test uses ``"EXTEST"``.
    """

    path: tuple[str, ...]
    levels: tuple[tuple[int, ...], ...]
    wir_override: str | None = None

    def __post_init__(self) -> None:
        if not self.path:
            raise ConfigurationError("assignment needs a core path")
        if len(self.levels) != len(self.path):
            raise ConfigurationError(
                f"{'/'.join(self.path)}: {len(self.path)} path levels but "
                f"{len(self.levels)} wire levels"
            )
        for level in self.levels:
            if len(set(level)) != len(level):
                raise ConfigurationError(
                    f"{'/'.join(self.path)}: duplicate wires in {level}"
                )

    @property
    def name(self) -> str:
        return "/".join(self.path)

    @property
    def terminal_wires(self) -> tuple[int, ...]:
        """Wires of the terminal core's enclosing bus, by port."""
        return self.levels[-1]

    def top_wire(self, port: int) -> int:
        """The top-level bus wire that carries terminal port ``port``.

        Composes the hierarchy: the terminal's enclosing-bus wire is an
        inner-bus index, which the next level up maps to its own
        enclosing bus, and so on to the top.
        """
        wire = self.levels[-1][port]
        for level in reversed(self.levels[:-1]):
            wire = level[wire]
        return wire

    def top_wires(self) -> tuple[int, ...]:
        """Top-level wires for all terminal ports, in port order."""
        return tuple(self.top_wire(p) for p in range(len(self.levels[-1])))


@dataclass(frozen=True)
class SessionPlan:
    """One concurrent test step.

    Attributes:
        assignments: cores tested in this session; their top-level wire
            footprints must be disjoint (validated against a bus width
            by :meth:`validate`).
        label: free-form tag for reports.
    """

    assignments: tuple[CoreAssignment, ...]
    label: str = ""

    def validate(self, bus_width: int) -> None:
        used: set[int] = set()
        for assignment in self.assignments:
            footprint = set(assignment.levels[0])
            for wire in footprint:
                if not 0 <= wire < bus_width:
                    raise ConfigurationError(
                        f"{assignment.name}: wire {wire} outside bus "
                        f"of width {bus_width}"
                    )
            overlap = used & footprint
            # Nested cores of one hierarchical parent share the parent's
            # top-level footprint; that is legal.  Distinct top-level
            # nodes must not collide.
            if overlap:
                sharers = [
                    a for a in self.assignments
                    if a.path[0] != assignment.path[0]
                    and set(a.levels[0]) & footprint
                ]
                if sharers:
                    raise ConfigurationError(
                        f"session wires clash on {sorted(overlap)} between "
                        f"{assignment.name} and {sharers[0].name}"
                    )
            used |= footprint

    def tested_names(self) -> list[str]:
        return [assignment.name for assignment in self.assignments]


@dataclass(frozen=True)
class TestPlan:
    """A full test program: sessions applied in order, each preceded by
    a reconfiguration of the TAM (the paper's 'different TAM
    architectures ... in sequential order, within the same test
    program')."""

    __test__ = False  # keep pytest from collecting this as a test class

    sessions: tuple[SessionPlan, ...]
    label: str = ""

    def validate(self, bus_width: int) -> None:
        if not self.sessions:
            raise ConfigurationError("a test plan needs at least one session")
        for session in self.sessions:
            session.validate(bus_width)


def flat_assignment(core_name: str, wires: tuple[int, ...]) -> CoreAssignment:
    """Convenience: an assignment for a top-level (non-nested) core."""
    return CoreAssignment(path=(core_name,), levels=(wires,))


@dataclass
class PlanBuilder:
    """Incremental construction of a test plan."""

    sessions: list[SessionPlan] = field(default_factory=list)

    def add_session(self, *assignments: CoreAssignment,
                    label: str = "") -> "PlanBuilder":
        self.sessions.append(
            SessionPlan(assignments=tuple(assignments), label=label)
        )
        return self

    def build(self, label: str = "") -> TestPlan:
        return TestPlan(sessions=tuple(self.sessions), label=label)
