"""Vectorized batch kernel: thousands of scenarios per dispatch.

The compiled kernel (:mod:`repro.sim.kernel`) made a *single* session
fast, but every many-scenario consumer -- fault-dictionary builds,
Monte-Carlo defect sweeps, campaign ``run_many`` -- still dispatched
sessions one at a time through Python loops, so throughput was bounded
by interpreter overhead.  This module removes that bound for the hot
path (scan-test capture): one compiled program geometry plus N scenario
variants are lowered into numpy ``uint64`` arrays and executed as whole
array operations, one dispatch per shift window instead of one per
scenario.

Layout.  A :class:`BatchScanProgram` packs a spec's ATPG stimulus into
an ``(inputs, words)`` array -- word ``w`` holds patterns
``w*64 .. w*64+63``, exactly the packing of
:func:`repro.scan.fault_sim.pack_patterns` -- together with the clean
(golden) capture words and the scan-out coordinates of every cloud
output.  A batch of F scenario faults is evaluated on the column grid
``F x words``: column ``i*words + w`` is fault ``i`` under pattern word
``w``, the per-fault stuck value forced onto its column range by
:func:`evaluate_cloud_array`.  Mismatch counts and syndrome masks then
fall out of ``xor`` / ``and`` / popcount array ops:

* per-fault mismatches = ``popcount((faulty ^ golden) & mask)`` summed
  over outputs and words -- valid because a clean instance's captures
  are, bit for bit, the ATPG responses the expected streams were
  compiled from, and input-cell (don't-care) positions never enter the
  output arrays at all;
* syndrome masks place a mismatching output bit of pattern ``p`` at
  scan-out offset ``out_offset[o]`` of chain ``out_chain[o]`` in window
  ``p`` -- the same packing both scalar backends emit byte-identically.

Entry points, innermost to outermost:

* :func:`evaluate_cloud_array` -- the vectorized twin of
  :meth:`repro.scan.core_model.CombCloud.evaluate_words`;
* :func:`scan_fault_failing_sets` -- per-fault failing ``(pattern,
  output)`` sets, the fault-dictionary builder's inner loop;
* :class:`BatchKernelExecutor` -- a :class:`~repro.sim.kernel.
  KernelExecutor` whose scan tests run on the array evaluator
  (``SessionExecutor(backend="batch")``);
* :class:`BatchExecutor` -- runs one plan against N independent
  scenario instances, deduplicating work across scenarios that share a
  per-core fault, with per-scenario scalar fallback for transport
  defects the kernel premise excludes.

This is the only module that imports numpy at module level; every
consumer imports it lazily and falls back to the scalar backends when
numpy is unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.bist.lfsr import Lfsr
from repro.bist.misr import Misr
from repro.diagnose.syndrome import (
    KIND_BIST,
    KIND_EXTERNAL,
    KIND_SCAN,
    Syndrome,
)
from repro.errors import ConfigurationError, SimulationError
from repro.scan.core_model import CombCloud
from repro.scan.fault_sim import WORD_WIDTH, pack_patterns
from repro.obs.metrics import counter as obs_counter
from repro.obs.metrics import histogram as obs_histogram
from repro.obs.spans import span as obs_span
from repro.obs.timing import stopwatch
from repro.soc.core import CoreSpec
from repro.soc.soc import SocSpec
from repro.sim.cache import BoundedCache
from repro.sim.kernel import (
    KernelExecutor,
    _popcount,
    _scan_program,
    _ScanProgram,
    chain_capture,
    chain_geometries,
    kernel_supports,
)
from repro.sim.plan import TestPlan
from repro.sim.session import CoreResult, ProgramResult, SessionResult
from repro.sim.system import build_system
from repro.wrapper.wrapper import P1500Wrapper

_U64 = np.uint64

#: Cap on simultaneously evaluated columns (faults x pattern words) of
#: one dispatch.  Bounds the working set of the node-value array to
#: roughly ``num_nodes * _MAX_COLUMNS * 8`` bytes, so dictionary builds
#: over thousands of faults stream in constant memory.
_MAX_COLUMNS = 4096


# -- popcount -----------------------------------------------------------------


_M1 = _U64(0x5555555555555555)
_M2 = _U64(0x3333333333333333)
_M4 = _U64(0x0F0F0F0F0F0F0F0F)
_H01 = _U64(0x0101010101010101)


def _popcount_words_swar(words: np.ndarray) -> np.ndarray:
    """Per-element population count (SWAR bit-twiddling).

    The numpy < 2.0 fallback; kept unconditionally defined so the
    test suite pins it against ``np.bitwise_count`` wherever the
    native ufunc exists.
    """
    x = words.astype(_U64, copy=True)
    x -= (x >> _U64(1)) & _M1
    x = (x & _M2) + ((x >> _U64(2)) & _M2)
    x = (x + (x >> _U64(4))) & _M4
    return ((x * _H01) >> _U64(56)).astype(np.int64)


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def _popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-element population count of a ``uint64`` array."""
        return np.bitwise_count(words).astype(np.int64)

else:  # pragma: no cover - exercised only on numpy < 2.0
    _popcount_words = _popcount_words_swar


# -- vectorized cloud evaluation ----------------------------------------------


def evaluate_cloud_array(
    cloud: CombCloud,
    inputs: np.ndarray,
    mask: np.ndarray,
    overrides: "Mapping[int, tuple[np.ndarray, np.ndarray]] | None" = None,
) -> np.ndarray:
    """Array twin of :meth:`~repro.scan.core_model.CombCloud.evaluate_words`.

    Args:
        inputs: ``(num_inputs, columns)`` ``uint64`` words -- each
            column is an independent evaluation (bit ``v`` = pattern v).
        mask: ``(columns,)`` pattern masks, for complementation.
        overrides: stuck-at forcing, ``node -> (column_indices,
            forced_words)``.  Input-node overrides apply before the op
            loop, op-node overrides after the node computes -- the
            exact semantics of the scalar evaluator's single ``fault``.

    Returns:
        ``(num_outputs, columns)`` output-node words.
    """
    if inputs.shape[0] != cloud.num_inputs:
        raise SimulationError(
            f"cloud has {cloud.num_inputs} inputs, got {inputs.shape[0]}"
        )
    columns = inputs.shape[1]
    values = np.empty((cloud.num_nodes, columns), dtype=_U64)
    values[: cloud.num_inputs] = inputs
    if overrides:
        for node, (cols, forced) in overrides.items():
            if node < cloud.num_inputs:
                values[node, cols] = forced
    base = cloud.num_inputs
    for index, op in enumerate(cloud.ops):
        node_id = base + index
        a = values[op.a]
        if op.op == "AND":
            out = a & values[op.b]
        elif op.op == "OR":
            out = a | values[op.b]
        elif op.op == "XOR":
            out = a ^ values[op.b]
        elif op.op == "NAND":
            out = ~(a & values[op.b]) & mask
        elif op.op == "NOR":
            out = ~(a | values[op.b]) & mask
        elif op.op == "NOT":
            out = ~a & mask
        else:  # BUF
            out = a
        values[node_id] = out
        if overrides:
            override = overrides.get(node_id)
            if override is not None:
                cols, forced = override
                values[node_id, cols] = forced
    return values[cloud.outputs]


# -- batch scan programs ------------------------------------------------------


@dataclass(frozen=True)
class BatchScanProgram:
    """A spec's scan test lowered to arrays, pure function of the spec.

    ``inputs[i, w]`` packs patterns ``w*64 .. w*64+63`` at cloud input
    ``i`` (:func:`~repro.scan.fault_sim.pack_patterns` packing);
    ``golden`` holds the clean capture words; ``out_chain[o]`` /
    ``out_offset[o]`` are the wrapper chain and scan-out bit offset at
    which cloud output ``o`` emerges -- the coordinates syndrome masks
    are keyed by.
    """

    spec: CoreSpec
    cloud: CombCloud
    num_patterns: int
    words: int
    inputs: np.ndarray
    masks: np.ndarray
    golden: np.ndarray
    out_chain: tuple[int, ...]
    out_offset: tuple[int, ...]
    scalar: _ScanProgram


#: LRU-bounded like the scalar program cache it parallels.
MAX_CACHED_BATCH_PROGRAMS = 1024

_BATCH_PROGRAMS: "BoundedCache[CoreSpec, BatchScanProgram]" = BoundedCache(
    MAX_CACHED_BATCH_PROGRAMS, name="batch_programs"
)


def batch_scan_program(
    spec: CoreSpec, wrapper: "P1500Wrapper | None" = None
) -> BatchScanProgram:
    """The (cached) batch program of a scan core spec."""
    cached = _BATCH_PROGRAMS.get(spec)
    if cached is not None:
        return cached
    if wrapper is None:
        wrapper = P1500Wrapper(spec.build_scannable())
    core = wrapper.core
    assert core is not None
    scalar = _scan_program(spec, wrapper)
    batches = pack_patterns(core, scalar.test_set.patterns)
    words = len(batches)
    num_inputs = core.cloud.num_inputs
    inputs = np.array(
        [[batch.input_words[i] for batch in batches]
         for i in range(num_inputs)],
        dtype=_U64,
    ).reshape(num_inputs, words)
    masks = np.array([batch.mask for batch in batches], dtype=_U64)
    golden = (
        evaluate_cloud_array(core.cloud, inputs, masks)
        if words
        else np.zeros((len(core.cloud.outputs), 0), dtype=_U64)
    )
    num_outputs = core.num_ffs + core.num_pos
    out_chain = [0] * num_outputs
    out_offset = [0] * num_outputs
    for chain, geo in enumerate(scalar.geometries):
        num_in = len(geo.in_pi)
        length = geo.length
        for position, ff in enumerate(geo.ff_ids):
            out_chain[ff] = chain
            out_offset[ff] = length - 1 - num_in - position
        po_base = num_in + len(geo.ff_ids)
        for position, po in enumerate(geo.out_po):
            out_chain[core.num_ffs + po] = chain
            out_offset[core.num_ffs + po] = length - 1 - po_base - position
    program = BatchScanProgram(
        spec=spec,
        cloud=core.cloud,
        num_patterns=scalar.num_patterns,
        words=words,
        inputs=inputs,
        masks=masks,
        golden=golden,
        out_chain=tuple(out_chain),
        out_offset=tuple(out_offset),
        scalar=scalar,
    )
    _BATCH_PROGRAMS.put(spec, program)
    return program


def clear_batch_cache() -> None:
    """Drop cached batch programs (tests, memory-sensitive callers)."""
    _BATCH_PROGRAMS.clear()


def _fault_chunks(
    program: BatchScanProgram,
    faults: Sequence[tuple[int, int]],
) -> "Iterable[tuple[int, int, np.ndarray]]":
    """Evaluate ``faults`` in column-bounded chunks.

    Yields ``(start, count, diff)`` where ``diff[o, i, w]`` is the
    masked golden-vs-faulty xor of output ``o``, fault ``start + i``,
    pattern word ``w`` -- one array dispatch per chunk.
    """
    words = program.words
    chunk = max(1, _MAX_COLUMNS // max(1, words))
    num_outputs = program.golden.shape[0]
    for start in range(0, len(faults), chunk):
        group = faults[start:start + chunk]
        count = len(group)
        inputs = np.tile(program.inputs, (1, count))
        mask_cols = np.tile(program.masks, count)
        zeros = np.zeros(words, dtype=_U64)
        per_node: "dict[int, tuple[list, list]]" = {}
        for index, (node, stuck) in enumerate(group):
            cols = np.arange(index * words, (index + 1) * words,
                             dtype=np.intp)
            lists = per_node.setdefault(node, ([], []))
            lists[0].append(cols)
            lists[1].append(program.masks if stuck else zeros)
        overrides = {
            node: (np.concatenate(cols), np.concatenate(forced))
            for node, (cols, forced) in per_node.items()
        }
        out = evaluate_cloud_array(
            program.cloud, inputs, mask_cols, overrides
        )
        diff = (
            out.reshape(num_outputs, count, words)
            ^ program.golden[:, None, :]
        ) & program.masks[None, None, :]
        yield start, count, diff


def _scan_fault_results(
    program: BatchScanProgram,
    faults: Sequence[tuple[int, int]],
    *,
    capture: bool = False,
) -> "list[tuple[int, dict[tuple[int, int], int]]]":
    """Per-fault ``(mismatches, syndrome_masks)`` over the pattern set.

    The masks dict is empty unless ``capture`` -- its keys/packing are
    byte-identical to :meth:`KernelExecutor._scan_mismatches`.
    """
    results: "list[tuple[int, dict[tuple[int, int], int]]]" = []
    if program.words == 0:
        return [(0, {}) for _ in faults]
    for _, count, diff in _fault_chunks(program, faults):
        watch = stopwatch()
        counts = _popcount_words(diff).sum(axis=(0, 2))
        obs_histogram("batch.popcount_s").observe(watch.elapsed)
        for index in range(count):
            masks: "dict[tuple[int, int], int]" = {}
            if capture and counts[index]:
                masks = _syndrome_masks(program, diff[:, index, :])
            results.append((int(counts[index]), masks))
    return results


def _syndrome_masks(
    program: BatchScanProgram, diff: np.ndarray
) -> "dict[tuple[int, int], int]":
    """One fault's ``(window, chain) -> mask`` syndrome accumulation."""
    masks: "dict[tuple[int, int], int]" = {}
    out_idx, word_idx = np.nonzero(diff)
    for output, word_i in zip(out_idx.tolist(), word_idx.tolist()):
        word = int(diff[output, word_i])
        chain = program.out_chain[output]
        offset_bit = 1 << program.out_offset[output]
        base = word_i * WORD_WIDTH
        while word:
            bit = (word & -word).bit_length() - 1
            key = (base + bit, chain)
            masks[key] = masks.get(key, 0) | offset_bit
            word &= word - 1
    return masks


def scan_fault_failing_sets(
    spec: CoreSpec,
    faults: Sequence[tuple[int, int]],
) -> "list[set[tuple[int, int]]]":
    """Per-fault failing ``(pattern, output)`` positions, batched.

    The fault-dictionary builder's inner loop
    (:func:`repro.diagnose.engine._scan_dictionary`): coordinates match
    :func:`repro.diagnose.engine.decode_scan_syndrome` exactly.
    """
    program = batch_scan_program(spec)
    sets: "list[set[tuple[int, int]]]" = [set() for _ in faults]
    if program.words == 0:
        return sets
    for start, count, diff in _fault_chunks(program, faults):
        # Two-stage extraction keeps the dense scan at word granularity
        # (mismatch words are sparse) and unpacks only nonzero words.
        out_idx, fault_idx, word_idx = np.nonzero(diff)
        if not out_idx.size:
            continue
        words = diff[out_idx, fault_idx, word_idx]
        bits = np.unpackbits(
            words[:, None].view(np.uint8), axis=-1, bitorder="little"
        )
        rows, offsets = np.nonzero(bits)
        patterns = word_idx[rows] * WORD_WIDTH + offsets
        for pattern, output, fault_i in zip(
            patterns.tolist(), out_idx[rows].tolist(),
            fault_idx[rows].tolist(),
        ):
            sets[start + fault_i].add((pattern, output))
    return sets


# -- the batch-backed kernel executor -----------------------------------------


class BatchKernelExecutor(KernelExecutor):
    """A :class:`~repro.sim.kernel.KernelExecutor` whose scan captures
    run on the array evaluator (``SessionExecutor(backend="batch")``).

    Single-instance semantics, results and post-session system state
    are byte-identical to the scalar kernel; only the inner per-pattern
    Python loop is replaced by one array dispatch.
    """

    def _run_scan(self, driver) -> CoreResult:
        node = driver.node
        program = driver.scan
        assert program is not None
        wrapper = node.wrapper
        assert wrapper is not None and wrapper.core is not None
        core = wrapper.core
        masks: "dict[tuple[int, int], int]" = {}
        if core.fault is None or program.num_patterns == 0:
            mismatches = 0
        else:
            batch = batch_scan_program(node.spec, wrapper)
            ((mismatches, masks),) = _scan_fault_results(
                batch, [core.fault], capture=self.capture_syndromes
            )
        core.ff_values = [0] * core.num_ffs
        for cell in wrapper.boundary.cells:
            cell.shift_value = 0
        return CoreResult(
            name=driver.assignment.name,
            method="scan",
            passed=mismatches == 0,
            bits_compared=program.bits_compared,
            mismatches=mismatches,
            detail=program.detail,
            syndrome=(Syndrome.from_masks(KIND_SCAN, masks)
                      if self.capture_syndromes else None),
        )


# -- the N-scenario batch executor --------------------------------------------


def scenario_overlay(scenario) -> "dict[str, tuple[int, int]] | None":
    """Normalise one scenario to a ``core path -> stuck-at`` overlay.

    Accepted scenario forms: ``None`` (clean instance), a mapping in
    :func:`repro.sim.system.build_system` ``inject_faults`` style, or a
    :class:`~repro.diagnose.inject.DefectScenario`.  Returns ``None``
    for transport defects (broken wires, dead cells) -- those violate
    the kernel premise and must fall back to per-scenario execution.
    """
    from repro.diagnose.inject import KIND_STUCK_AT, DefectScenario

    if scenario is None:
        return {}
    if isinstance(scenario, DefectScenario):
        if scenario.kind != KIND_STUCK_AT:
            return None
        assert scenario.core is not None and scenario.fault is not None
        return {scenario.core: scenario.fault}
    if isinstance(scenario, Mapping):
        return {
            str(path): (int(node), int(stuck))
            for path, (node, stuck) in scenario.items()
        }
    raise ConfigurationError(
        f"cannot interpret scenario {scenario!r}; expected None, a "
        f"fault mapping, or a DefectScenario"
    )


def scenario_system(soc: SocSpec, scenario):
    """A fresh system instance with one scenario applied."""
    from repro.diagnose.inject import DefectScenario, build_faulty_system

    if scenario is None:
        return build_system(soc)
    if isinstance(scenario, DefectScenario):
        return build_faulty_system(soc, scenario)
    if isinstance(scenario, Mapping):
        return build_system(soc, inject_faults=dict(scenario))
    raise ConfigurationError(
        f"cannot interpret scenario {scenario!r}; expected None, a "
        f"fault mapping, or a DefectScenario"
    )


class BatchExecutor:
    """Runs one test plan against N independent scenario instances.

    The contract is *fresh-instance semantics*: element ``i`` of
    :meth:`run_batch` is byte-identical to::

        SessionExecutor(
            scenario_system(soc, scenarios[i]),
            capture_syndromes=..., verify=...,
        ).run_plan(plan)

    All stuck-at scenarios execute against one configured template
    system: configuration never depends on test outcomes, scan captures
    depend only on the loaded pattern, and BIST/external replays are
    deterministic from reset -- so per-driver work is computed once per
    *distinct* per-core fault and shared across the batch.  Scenarios
    the kernel premise excludes (transport defects) fall back to a
    per-scenario scalar run transparently.
    """

    def __init__(
        self,
        soc: SocSpec,
        *,
        capture_syndromes: bool = False,
        verify: bool = True,
    ) -> None:
        self.soc = soc
        self.capture_syndromes = capture_syndromes
        self.verify = verify

    def run_batch(self, plan: TestPlan, scenarios) -> "list[ProgramResult]":
        scenarios = list(scenarios)
        overlays = [scenario_overlay(scenario) for scenario in scenarios]
        results: "list[ProgramResult | None]" = [None] * len(scenarios)
        batched = [i for i, ov in enumerate(overlays) if ov is not None]
        with obs_span(
            "batch.run", scenarios=len(scenarios), batched=len(batched)
        ):
            if batched:
                template = build_system(self.soc)
                if kernel_supports(template):
                    self._run_batched(
                        plan, template,
                        [overlays[i] for i in batched],
                        batched, results,
                    )
                else:  # pragma: no cover - clean builds always qualify
                    batched = []
            obs_counter("batch.fallback_scenarios").inc(
                len(scenarios) - len(batched)
            )
            for index, result in enumerate(results):
                if result is None:
                    results[index] = self._run_fallback(
                        plan, scenarios[index]
                    )
        return results  # type: ignore[return-value]

    # -- batched path ----------------------------------------------------

    def _run_batched(
        self,
        plan: TestPlan,
        template,
        overlays: "list[dict[str, tuple[int, int]]]",
        indices: "list[int]",
        results: "list[ProgramResult | None]",
    ) -> None:
        kernel = KernelExecutor(
            template, capture_syndromes=self.capture_syndromes
        )
        plan.validate(template.n)
        if self.verify:
            from repro.verify import (
                verify_batch_program,
                verify_session_programs,
                verify_system,
            )
            from repro.sim.nodes import ScanNode

            verify_system(template).raise_if_failed(template.soc.name)
            for session in plan.sessions:
                verify_session_programs(template, session).raise_if_failed(
                    template.soc.name
                )
                for assignment in session.assignments:
                    node = template.node_at(assignment.path)
                    if (isinstance(node, ScanNode)
                            and node.wrapper is not None):
                        batch = batch_scan_program(node.spec, node.wrapper)
                        verify_batch_program(
                            batch, node.spec,
                            location=f"batch/{assignment.name}",
                        ).raise_if_failed(template.soc.name)
        programs = [ProgramResult() for _ in overlays]
        # Off-chip replay state per (core path, fault): external chains
        # legitimately carry state across sessions of one instance.
        external_state: "dict[tuple[str, object], list[int]]" = {}
        for index, session in enumerate(plan.sessions):
            label = session.label or f"session{index}"
            session.validate(template.n)
            with obs_span(
                "batch.dispatch", label=label, scenarios=len(overlays)
            ):
                compiled = kernel.compile_session(session)
                config_cycles = kernel._apply_configuration(session)
                per_driver = [
                    self._driver_results(driver, overlays, external_state)
                    for driver in compiled.drivers
                ]
            obs_histogram("batch.scenarios_per_dispatch").observe(
                len(overlays)
            )
            for scenario_i in range(len(overlays)):
                programs[scenario_i].sessions.append(SessionResult(
                    label=label,
                    config_cycles=config_cycles,
                    test_cycles=compiled.test_cycles,
                    core_results=[
                        row[scenario_i] for row in per_driver
                    ],
                ))
        for index, program in zip(indices, programs):
            results[index] = program

    def _driver_results(
        self,
        driver,
        overlays: "list[dict[str, tuple[int, int]]]",
        external_state: "dict[tuple[str, object], list[int]]",
    ) -> "list[CoreResult]":
        """One driver's results for every scenario, deduplicated."""
        path = driver.node.path
        faults = [overlay.get(path) for overlay in overlays]
        distinct: "list[tuple[int, int] | None]" = []
        position: "dict[tuple[int, int] | None, int]" = {}
        for fault in faults:
            if fault not in position:
                position[fault] = len(distinct)
                distinct.append(fault)
        if driver.kind == "scan":
            by_fault = self._scan_results(driver, distinct)
        elif driver.kind == "bist":
            by_fault = self._bist_results(driver, distinct)
        else:
            by_fault = self._external_results(
                driver, distinct, external_state
            )
        return [replace(by_fault[position[fault]]) for fault in faults]

    def _scan_results(self, driver, distinct) -> "list[CoreResult]":
        node = driver.node
        program = driver.scan
        assert program is not None
        wrapper = node.wrapper
        assert wrapper is not None and wrapper.core is not None
        core = wrapper.core
        capture = self.capture_syndromes
        injected = [fault for fault in distinct if fault is not None]
        computed: "dict[tuple[int, int], tuple[int, dict]]" = {}
        if injected and program.num_patterns > 0:
            batch = batch_scan_program(node.spec, wrapper)
            for fault, outcome in zip(
                injected,
                _scan_fault_results(batch, injected, capture=capture),
            ):
                computed[fault] = outcome
        # Identical template post-state to the scalar kernel's flush.
        core.ff_values = [0] * core.num_ffs
        for cell in wrapper.boundary.cells:
            cell.shift_value = 0
        results = []
        for fault in distinct:
            mismatches, masks = computed.get(fault, (0, {}))
            results.append(CoreResult(
                name=driver.assignment.name,
                method="scan",
                passed=mismatches == 0,
                bits_compared=program.bits_compared,
                mismatches=mismatches,
                detail=program.detail,
                syndrome=(Syndrome.from_masks(KIND_SCAN, masks)
                          if capture else None),
            ))
        return results

    def _bist_results(self, driver, distinct) -> "list[CoreResult]":
        node = driver.node
        spec = node.spec
        engine = node.engine
        golden = engine._signature(spec.bist_cycles, fault=None)
        mask = (1 << spec.signature_width) - 1
        results = []
        for fault in distinct:
            actual = (
                golden if fault is None
                else engine._signature(spec.bist_cycles, fault=fault)
            )
            xor_mask = (actual ^ golden) & mask
            mismatches = _popcount(xor_mask)
            results.append(CoreResult(
                name=driver.assignment.name,
                method="bist",
                passed=mismatches == 0,
                bits_compared=spec.signature_width,
                mismatches=mismatches,
                detail=(
                    f"{spec.bist_cycles} BIST cycles, "
                    f"{spec.signature_width}-bit signature"
                ),
                syndrome=(
                    Syndrome.signature_xor(KIND_BIST, xor_mask, 0)
                    if self.capture_syndromes else None
                ),
            ))
        return results

    def _external_results(
        self, driver, distinct, external_state
    ) -> "list[CoreResult]":
        node = driver.node
        spec = node.spec
        wrapper = node.wrapper
        assert wrapper is not None and wrapper.core is not None
        core = wrapper.core
        geo = chain_geometries(wrapper)[0]
        depth = geo.length
        input_cells = wrapper.boundary.input_cells
        output_cells = wrapper.boundary.output_cells
        results = []
        for fault in distinct:
            key = (node.path, fault)
            live = external_state.get(key)
            if live is None:
                # First session of this instance: the template holds
                # exactly the fresh-build state a scenario starts from.
                live = (
                    [input_cells[pi].shift_value for pi in geo.in_pi]
                    + [core.ff_values[ff] for ff in geo.ff_ids]
                    + [output_cells[po].shift_value for po in geo.out_po]
                )
            shadow = [0] * depth
            source = Lfsr(16, seed=0xACE1 ^ (spec.seed or 1))
            live_misr = Misr(16)
            golden_misr = Misr(16)
            bits_compared = 0
            for window in range(spec.external_stream_patterns + 1):
                for _ in range(depth):
                    live_misr.absorb_bit(live[-1])
                    golden_misr.absorb_bit(shadow[-1])
                    bit = source.step()
                    live.insert(0, bit)
                    live.pop()
                    shadow.insert(0, bit)
                    shadow.pop()
                    bits_compared += 1
                if window < spec.external_stream_patterns:
                    chain_capture(core, geo, live, fault)
                    chain_capture(core, geo, shadow, None)
            external_state[key] = live
            passed = live_misr.signature == golden_misr.signature
            results.append(CoreResult(
                name=driver.assignment.name,
                method="external",
                passed=passed,
                bits_compared=bits_compared,
                mismatches=0 if passed else 1,
                detail=(
                    f"sink signature {live_misr.signature:#06x} vs "
                    f"golden {golden_misr.signature:#06x}"
                ),
                syndrome=(Syndrome.signature_xor(
                    KIND_EXTERNAL, live_misr.signature,
                    golden_misr.signature,
                ) if self.capture_syndromes else None),
            ))
        return results

    # -- per-scenario fallback -------------------------------------------

    def _run_fallback(self, plan: TestPlan, scenario) -> ProgramResult:
        from repro.sim.session import SessionExecutor

        executor = SessionExecutor(
            scenario_system(self.soc, scenario),
            capture_syndromes=self.capture_syndromes,
            verify=self.verify,
        )
        return executor.run_plan(plan)
