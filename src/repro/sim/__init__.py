"""Cycle-accurate system simulation of a complete CAS-BUS SoC.

Binds the behavioural CASes, P1500 wrappers and core models into one
clocked system: the test bus threads every node (figure 1), the serial
configuration chain rides wire 0 with CHAIN splices and hierarchical
descent, and a session executor applies real test data and decides
pass/fail per core.

Two backends execute sessions: the compiled kernel
(:mod:`repro.sim.kernel` -- bit-packed integer programs, the default)
and the legacy per-cycle object stepping; both produce byte-identical
results, selected via ``SessionExecutor(backend=...)``.
"""

from repro.sim.plan import CoreAssignment, SessionPlan, TestPlan
from repro.sim.system import CasBusSystem, build_system
from repro.sim.session import (
    BACKENDS,
    CoreResult,
    SessionExecutor,
    SessionResult,
    ProgramResult,
)
from repro.sim.kernel import KernelExecutor, kernel_supports
from repro.sim.trace import TraceRecorder
from repro.sim.vcd import write_vcd

__all__ = [
    "BACKENDS",
    "CoreAssignment",
    "SessionPlan",
    "TestPlan",
    "CasBusSystem",
    "build_system",
    "CoreResult",
    "KernelExecutor",
    "SessionExecutor",
    "SessionResult",
    "ProgramResult",
    "TraceRecorder",
    "kernel_supports",
    "write_vcd",
]
