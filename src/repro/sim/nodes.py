"""System-simulation nodes: one CAS + wrapper + core per testable core.

A node owns everything between two points of the test bus (figure 1):
its CAS, the P1500 wrapper and the core model.  Nodes expose

* the **serial configuration segment** -- the CAS instruction register,
  optionally spliced with the wrapper's WIR (CHAIN instruction, paper
  section 3.1), and, for hierarchical cores, the whole inner chain;
* the **bus evaluation** -- combinational routing of the N wires
  through the CAS with the node's core-side return values;
* the **clock edge** -- scan shifting / capturing / BIST counting,
  controlled per-cycle by the session executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import values as lv
from repro.errors import ConfigurationError, SimulationError
from repro.core.cas import CoreAccessSwitch
from repro.core.instruction import CHAIN_CODE, KIND_TEST
from repro.bist.engine import BistEngine
from repro.soc.core import CoreSpec, TestMethod
from repro.wrapper.wrapper import P1500Wrapper

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.sim.system import CasBusSystem


@dataclass
class NodeControls:
    """Per-cycle test controls the executor asserts for one node."""

    shift: bool = False
    capture: bool = False


@dataclass(frozen=True)
class SerialRegister:
    """One register on the serial configuration chain."""

    path: str      # e.g. "core1.cas", "core1.wir", "core5/core5a.cas"
    kind: str      # "cas" | "wir"
    width: int


def _to_bit(value: int) -> int:
    """Collapse a four-valued wire sample to the bit a register stores.

    Registers sampling X or Z store an unpredictable level; modelling it
    as 0 keeps runs deterministic (the executor never relies on such
    samples for pass/fail data).
    """
    return 1 if value == lv.ONE else 0


class CasNode:
    """Base node: CAS + wrapper + (subclass-specific) core."""

    def __init__(
        self,
        spec: CoreSpec,
        cas: CoreAccessSwitch,
        wrapper: P1500Wrapper | None,
        path: str,
    ) -> None:
        self.spec = spec
        self.cas = cas
        self.wrapper = wrapper
        self.path = path
        self.controls = NodeControls()
        self.pending_core_inputs: tuple[int, ...] = (lv.Z,) * cas.p

    # -- serial configuration chain --------------------------------------

    @property
    def chain_spliced(self) -> bool:
        """True when the wrapper WIR sits on the serial chain."""
        return self.wrapper is not None and self.cas.active_code == CHAIN_CODE

    def serial_layout(self) -> list[SerialRegister]:
        """Registers this node contributes, in chain order."""
        layout = [SerialRegister(path=f"{self.path}.cas", kind="cas",
                                 width=self.cas.k)]
        if self.chain_spliced:
            assert self.wrapper is not None
            layout.append(SerialRegister(path=f"{self.path}.wir",
                                         kind="wir",
                                         width=self.wrapper.wir.width))
        return layout

    def serial_shift(self, bit_in: int) -> int:
        """Shift the node's segment; returns the displaced output bit."""
        bit = self.cas.shift(bit_in)
        if self.chain_spliced:
            assert self.wrapper is not None
            bit = self.wrapper.serial_shift(bit)
        return bit

    def serial_out(self) -> int:
        """The segment's serial output before the next shift."""
        if self.chain_spliced:
            assert self.wrapper is not None
            return self.wrapper.serial_out()
        return self.cas.serial_out()

    def config_update(self) -> None:
        """Update pulse: activate shifted CAS code and, when the WIR was
        spliced, the shifted wrapper instruction."""
        spliced = self.chain_spliced
        self.cas.update()
        if spliced:
            assert self.wrapper is not None
            self.wrapper.serial_update()

    # -- bus ------------------------------------------------------------------

    def core_returns(self) -> tuple[int, ...]:
        """Values on the node's ``i`` pins this cycle (pre-clock)."""
        if self.wrapper is not None and self.wrapper.mode in (
            "INTEST", "EXTEST"
        ):
            return self.wrapper.test_returns()
        return (0,) * self.cas.p

    def process_bus(self, e_values: tuple[int, ...],
                    config: bool) -> tuple[int, ...]:
        """Route the bus through this node; stash core-side inputs."""
        routing = self.cas.route(e_values, self.core_returns(), config=config)
        if config:
            serial_value = lv.ONE if self.serial_out() else lv.ZERO
            return (serial_value,) + routing.s[1:]
        self.pending_core_inputs = routing.o
        return routing.s

    # -- clock -------------------------------------------------------------------

    def tick(self, config: bool) -> None:
        """Clock edge outside the serial chain (test-data side)."""
        if config or self.wrapper is None:
            return
        if self.controls.capture:
            self.wrapper.test_capture()
        elif self.controls.shift:
            bits = tuple(_to_bit(v) for v in self.pending_core_inputs)
            self.wrapper.test_shift(bits)

    def reset(self) -> None:
        self.cas.reset()
        self.controls = NodeControls()
        self.pending_core_inputs = (lv.Z,) * self.cas.p
        if self.wrapper is not None:
            self.wrapper.reset()

    # -- introspection ------------------------------------------------------------

    def describe(self) -> str:
        mode = self.wrapper.mode if self.wrapper is not None else "-"
        return (
            f"{self.path}: cas={self.cas.active_instruction.describe()} "
            f"wir={mode}"
        )


class ScanNode(CasNode):
    """A scannable core behind an INTEST-capable wrapper (fig 2a)."""

    def __init__(self, spec: CoreSpec, cas: CoreAccessSwitch,
                 wrapper: P1500Wrapper, path: str) -> None:
        if spec.method not in (TestMethod.SCAN, TestMethod.EXTERNAL):
            raise ConfigurationError(
                f"{path}: ScanNode needs a scan/external spec"
            )
        super().__init__(spec, cas, wrapper, path)

    @property
    def core(self):
        assert self.wrapper is not None
        return self.wrapper.core


class ExternalNode(ScanNode):
    """A core tested from off-chip LFSR/MISR (fig 2c).

    Structurally identical to a scan node with one chain; the stimulus
    source and signature sink live controller-side in the executor.
    """


class BistNode(CasNode):
    """A self-testable core (fig 2b): P = 1.

    Protocol: when the WIR activates BIST the engine starts; after
    ``bist_cycles`` clocks the signature streams out on the return
    wire, LSB first.
    """

    def __init__(self, spec: CoreSpec, cas: CoreAccessSwitch,
                 wrapper: P1500Wrapper, engine: BistEngine,
                 path: str) -> None:
        if spec.method != TestMethod.BIST:
            raise ConfigurationError(f"{path}: BistNode needs a BIST spec")
        super().__init__(spec, cas, wrapper, path)
        self.engine = engine
        self._counter = 0
        self._signature_bits: list[int] | None = None

    def config_update(self) -> None:
        # A WIR update that lands on BIST (re)starts the engine -- the
        # update pulse is the start command, so a spliced reload of the
        # same instruction restarts a fresh self-test run.
        updated = self.chain_spliced
        super().config_update()
        if (updated and self.wrapper is not None
                and self.wrapper.mode == "BIST"):
            self._counter = 0
            self._signature_bits = None

    def core_returns(self) -> tuple[int, ...]:
        if self.wrapper is None or self.wrapper.mode != "BIST":
            return (0,)
        done = self._counter - self.spec.bist_cycles
        if done < 0:
            return (0,)
        if self._signature_bits is None:
            report = self.engine.run(self.spec.bist_cycles)
            bits = [(report.signature >> i) & 1
                    for i in range(self.spec.signature_width)]
            self._signature_bits = bits
        if done < len(self._signature_bits):
            return (self._signature_bits[done],)
        return (0,)

    def tick(self, config: bool) -> None:
        if config:
            return
        if self.wrapper is not None and self.wrapper.mode == "BIST":
            self._counter += 1

    def golden_signature_bits(self) -> list[int]:
        """What a healthy instance would stream out, LSB first."""
        golden = self.engine.golden_signature(self.spec.bist_cycles)
        return [(golden >> i) & 1
                for i in range(self.spec.signature_width)]

    def reset(self) -> None:
        super().reset()
        self._counter = 0
        self._signature_bits = None


class HierNode(CasNode):
    """A hierarchical core embedding its own CAS-BUS (fig 2d).

    The node's ``P`` core-side terminals *are* the inner test bus; the
    serial configuration chain physically threads the CAS instruction
    register and then every inner node's segment.
    """

    def __init__(self, spec: CoreSpec, cas: CoreAccessSwitch,
                 inner: "CasBusSystem", path: str) -> None:
        if spec.method != TestMethod.HIERARCHICAL:
            raise ConfigurationError(
                f"{path}: HierNode needs a hierarchical spec"
            )
        super().__init__(spec, cas, wrapper=None, path=path)
        self.inner = inner

    # -- serial chain: CAS IR then the whole inner chain -------------------

    def serial_layout(self) -> list[SerialRegister]:
        layout = [SerialRegister(path=f"{self.path}.cas", kind="cas",
                                 width=self.cas.k)]
        layout.extend(self.inner.serial_layout())
        return layout

    def serial_shift(self, bit_in: int) -> int:
        bit = self.cas.shift(bit_in)
        return self.inner.serial_shift(bit)

    def serial_out(self) -> int:
        return self.inner.serial_out()

    def config_update(self) -> None:
        self.cas.update()
        self.inner.config_update()

    # -- bus: descend into the inner system --------------------------------------

    def process_bus(self, e_values: tuple[int, ...],
                    config: bool) -> tuple[int, ...]:
        if config:
            routing = self.cas.route(e_values, (0,) * self.cas.p,
                                     config=True)
            serial_value = lv.ONE if self.serial_out() else lv.ZERO
            return (serial_value,) + routing.s[1:]
        instruction = self.cas.active_instruction
        if instruction.kind != KIND_TEST:
            return tuple(e_values)
        scheme = instruction.scheme
        assert scheme is not None
        inner_in = tuple(
            lv.v_buf(e_values[wire]) for wire in scheme.wire_of_port
        )
        inner_out = self.inner.route_bus(inner_in, config=False)
        port_of_wire = scheme.port_of_wire
        return tuple(
            lv.v_buf(inner_out[port_of_wire[wire]])
            if wire in port_of_wire
            else e_values[wire]
            for wire in range(self.cas.n)
        )

    def tick(self, config: bool) -> None:
        self.inner.tick_all(config)

    def reset(self) -> None:
        self.cas.reset()
        self.controls = NodeControls()
        self.inner.reset()

    def core_returns(self) -> tuple[int, ...]:  # pragma: no cover
        raise SimulationError(
            f"{self.path}: hierarchical nodes route through process_bus"
        )
