"""Session-configuration planning shared by both execution backends.

Given a :class:`~repro.sim.plan.SessionPlan` and the live system, the
planner computes the two-stage reconfiguration targets the paper's
protocol needs:

* the final CAS instruction code for *every* node (tested nodes get
  their switch scheme, everything else BYPASS);
* the wrapper instructions that must change (test modes for the tested
  terminals, NORMAL reverts for wrappers an earlier session left in a
  test mode).

Both the legacy object-stepping executor
(:class:`~repro.sim.session.SessionExecutor`) and the compiled kernel
(:mod:`repro.sim.kernel`) derive their stage-A/stage-B configuration
from these targets, so the two backends can never disagree about what a
session configures or what it costs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.core.instruction import BYPASS_CODE
from repro.core.switch import SwitchScheme
from repro.soc.core import TestMethod

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.sim.nodes import CasNode
    from repro.sim.plan import CoreAssignment, SessionPlan
    from repro.sim.system import CasBusSystem


def collect_assignment_targets(
    system: "CasBusSystem",
    assignment: "CoreAssignment",
    scheme_of: dict[str, tuple[int, ...]],
    wir_targets: dict[str, str],
) -> None:
    """Record one assignment's CAS schemes and terminal WIR mode.

    Walks the assignment's path level by level, validating wire counts
    and cross-assignment consistency exactly like the original
    session-executor logic.
    """
    from repro.sim.nodes import HierNode

    current = system
    for depth, _ in enumerate(assignment.path):
        # Resolve one level at a time within the current (sub-)system.
        node = current.node_at((assignment.path[depth],))
        wires = assignment.levels[depth]
        if len(wires) != node.cas.p:
            raise ConfigurationError(
                f"{assignment.name}: level {depth} assigns "
                f"{len(wires)} wires, node {node.path} has "
                f"P={node.cas.p}"
            )
        existing = scheme_of.get(node.path)
        if existing is not None and existing != wires:
            raise ConfigurationError(
                f"{node.path}: conflicting wire assignments "
                f"{existing} vs {wires} in one session"
            )
        scheme_of[node.path] = wires
        is_terminal = depth == len(assignment.path) - 1
        if is_terminal:
            if isinstance(node, HierNode):
                raise ConfigurationError(
                    f"{assignment.name}: terminal core is "
                    f"hierarchical; address its inner cores"
                )
            if assignment.wir_override is not None:
                wir_targets[node.path] = assignment.wir_override
            elif node.spec.method == TestMethod.BIST:
                wir_targets[node.path] = "BIST"
            else:
                wir_targets[node.path] = "INTEST"
        else:
            if not isinstance(node, HierNode):
                raise ConfigurationError(
                    f"{assignment.name}: {node.path} is not "
                    f"hierarchical but the path descends into it"
                )
            current = node.inner


def configuration_targets(
    system: "CasBusSystem", session: "SessionPlan"
) -> tuple[dict[str, int], dict[str, str]]:
    """Final CAS codes (all nodes) and WIR modes (changed nodes)."""
    scheme_of: dict[str, tuple[int, ...]] = {}
    wir_targets: dict[str, str] = {}
    for assignment in session.assignments:
        collect_assignment_targets(
            system, assignment, scheme_of, wir_targets
        )
    cas_targets: dict[str, int] = {}
    for node in system.walk():
        register = f"{node.path}.cas"
        wires = scheme_of.get(node.path)
        if wires is None:
            cas_targets[register] = BYPASS_CODE
        else:
            scheme = SwitchScheme(
                n=node.cas.n, p=node.cas.p, wire_of_port=wires
            )
            cas_targets[register] = node.cas.iset.encode(scheme)
    # Wrappers left in a test mode by earlier sessions revert to
    # NORMAL unless re-targeted now.
    for node in system.walk():
        if node.wrapper is None or node.path in wir_targets:
            continue
        if node.wrapper.mode != "NORMAL":
            wir_targets[node.path] = "NORMAL"
    return cas_targets, wir_targets


def predicted_config_cycles(
    system: "CasBusSystem", session: "SessionPlan"
) -> int:
    """Model-predicted cycle cost of configuring ``session``.

    Reads the *actual* register widths off the live system's serial
    chain and feeds them to the shared cost model's two-stage formula
    (:func:`repro.schedule.model.two_stage_config_cycles`), so the
    abstract schedulers and the behavioural executor charge
    configuration from one source of truth.  Exact by construction:
    the kernel-equivalence suite asserts it matches what both
    backends measure.
    """
    from repro.schedule.model import two_stage_config_cycles

    _, wir_targets = configuration_targets(system, session)
    cas_bits = 0
    wir_bits = 0
    for node in system.walk():
        cas_bits += node.cas.k
        if node.path in wir_targets and node.wrapper is not None:
            wir_bits += node.wrapper.wir.width
    return two_stage_config_cycles(
        cas_bits, len(wir_targets),
        wir_bits=wir_bits, stage_a_always=False,
    )


def state_snapshot(system: "CasBusSystem", path: tuple[str, ...]):
    """Flip-flop contents of the core(s) at ``path`` (non-interference
    checks compare these before/after a session)."""
    from repro.sim.nodes import HierNode

    node: "CasNode" = system.node_at(path)
    if isinstance(node, HierNode):
        return tuple(
            tuple(inner.wrapper.core.ff_values)
            for inner in node.inner.walk()
            if inner.wrapper is not None and inner.wrapper.core is not None
        )
    assert node.wrapper is not None and node.wrapper.core is not None
    return tuple(node.wrapper.core.ff_values)
