"""Keyed-and-bounded LRU cache shared by the process-wide caches.

The simulation layer memoizes several pure-function-of-spec artifacts
process-wide: ATPG test sets (:mod:`repro.sim.testsets`), compiled
scan programs (:mod:`repro.sim.kernel`), fault dictionaries
(:mod:`repro.diagnose.engine`) and batch scan programs
(:mod:`repro.sim.batch`).  All of them used to evict FIFO -- fine for
one-shot runs, wrong for thousand-scenario batch sweeps, where a hot
spec inserted early is exactly the one that must *stay* cached.

:class:`BoundedCache` is a plain LRU: a hit refreshes recency, an
insert past ``capacity`` evicts the least recently used entry.  Not
thread-safe by design -- the simulation layer is single-threaded per
process and the campaign runner fans out over *processes*.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, TypeVar

K = TypeVar("K")
V = TypeVar("V")

_MISSING = object()


class BoundedCache(Generic[K, V]):
    """An LRU mapping holding at most ``capacity`` entries."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()

    def get(self, key: K, default=None):
        """The cached value (refreshing its recency), else ``default``."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            return default
        self._entries.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        """Insert/overwrite ``key``; evicts the LRU entry past capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def items(self) -> "list[tuple[K, V]]":
        """A snapshot of the entries, LRU first, without refreshing
        recency (picklable -- the portfolio ships these to workers)."""
        return list(self._entries.items())

    def clear(self) -> None:
        self._entries.clear()

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[K]:
        return iter(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BoundedCache({len(self._entries)}/{self.capacity} "
                f"entries)")
