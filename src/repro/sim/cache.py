"""Keyed-and-bounded LRU cache shared by the process-wide caches.

The simulation layer memoizes several pure-function-of-spec artifacts
process-wide: ATPG test sets (:mod:`repro.sim.testsets`), compiled
scan programs (:mod:`repro.sim.kernel`), fault dictionaries
(:mod:`repro.diagnose.engine`) and batch scan programs
(:mod:`repro.sim.batch`).  All of them used to evict FIFO -- fine for
one-shot runs, wrong for thousand-scenario batch sweeps, where a hot
spec inserted early is exactly the one that must *stay* cached.

:class:`BoundedCache` is a plain LRU: a hit refreshes recency, an
insert past ``capacity`` evicts the least recently used entry.  Not
thread-safe by design -- the simulation layer is single-threaded per
process and the campaign runner fans out over *processes*.

Named caches report hit/miss/evict counts to :mod:`repro.obs` (as
``cache.<name>.hits`` etc.); anonymous ones stay silent.  The report
is one guarded call per operation and a no-op while observability is
disabled, so naming a cache costs nothing on the hot path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, Optional, TypeVar

from repro.obs.metrics import cache_event

K = TypeVar("K")
V = TypeVar("V")

_MISSING = object()


class BoundedCache(Generic[K, V]):
    """An LRU mapping holding at most ``capacity`` entries."""

    def __init__(self, capacity: int, name: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._entries: "OrderedDict[K, V]" = OrderedDict()

    def get(self, key: K, default=None):
        """The cached value (refreshing its recency), else ``default``."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            if self.name is not None:
                cache_event(self.name, "misses")
            return default
        self._entries.move_to_end(key)
        if self.name is not None:
            cache_event(self.name, "hits")
        return value

    def put(self, key: K, value: V) -> None:
        """Insert/overwrite ``key``; evicts the LRU entry past capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            if self.name is not None:
                cache_event(self.name, "evictions")

    def items(self) -> "list[tuple[K, V]]":
        """A snapshot of the entries, LRU first, without refreshing
        recency (picklable -- the portfolio ships these to workers)."""
        return list(self._entries.items())

    def clear(self) -> None:
        self._entries.clear()

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[K]:
        return iter(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BoundedCache({len(self._entries)}/{self.capacity} "
                f"entries)")
