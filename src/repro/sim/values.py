"""Four-valued logic re-export.

The canonical module is :mod:`repro.values` (kept at top level so the
netlist substrate can use it without importing the simulation package);
this alias keeps ``repro.sim`` self-contained for callers that import
the simulation package alone (see README.md for the package map).
"""

from repro.values import (  # noqa: F401
    DRIVEN,
    ONE,
    VALUES,
    X,
    Z,
    ZERO,
    from_char,
    from_string,
    is_known,
    resolve,
    resolve_all,
    to_char,
    to_string,
    v_and,
    v_buf,
    v_mux,
    v_not,
    v_or,
    v_tristate,
    v_xor,
)
