"""Four-valued logic re-export.

The canonical module is :mod:`repro.values` (kept at top level so the
netlist substrate can use it without importing the simulation package);
this alias preserves the layout promised in DESIGN.md.
"""

from repro.values import (  # noqa: F401
    DRIVEN,
    ONE,
    VALUES,
    X,
    Z,
    ZERO,
    from_char,
    from_string,
    is_known,
    resolve,
    resolve_all,
    to_char,
    to_string,
    v_and,
    v_buf,
    v_mux,
    v_not,
    v_or,
    v_tristate,
    v_xor,
)
