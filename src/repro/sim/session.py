"""Test-session execution: configure the TAM, move real bits, decide
pass/fail.

The executor turns a :class:`~repro.sim.plan.TestPlan` into clocked
activity on a :class:`~repro.sim.system.CasBusSystem`:

1. **Staged configuration** per session.  Stage A splices the wrappers
   whose instruction must change (CAS CHAIN instruction, the paper's
   optional tri-state mechanism); stage B shifts the final CAS switch
   schemes together with the wrapper instructions and updates
   atomically.  Cycle costs are counted exactly.
2. **Test phase.**  Each tested core gets a *driver* that knows its
   per-cycle stimulus, expected observations and wrapper controls:
   scan cores stream ATPG patterns and compare responses bit by bit;
   BISTed cores wait out the self-test and check the signature
   read-out; externally tested cores replay an off-chip LFSR source
   against an off-chip MISR sink with a golden shadow model.
3. **Results.**  Per-core pass/fail with bit-level mismatch counts,
   per-session cycle budgets (configuration vs test), and optional
   non-interference checks (cores in NORMAL mode must keep their state
   -- the paper's maintenance-test scenario).

Two interchangeable backends execute plans:

* ``"kernel"`` -- the compiled engine of :mod:`repro.sim.kernel`:
  sessions are lowered once into bit-packed integer programs and run
  as whole shift bursts.  Much faster, bit-exact.
* ``"batch"`` -- the compiled kernel with scan captures executed on
  the vectorized array evaluator of :mod:`repro.sim.batch` (requires
  numpy; silently degrades to ``"kernel"`` without it).  Bit-exact,
  and the backend :meth:`SessionExecutor.run_batch` amortises over
  whole scenario batches.
* ``"legacy"`` -- the original object-stepping path below: every cycle
  routes the bus through every node object.  Required for per-cycle
  :class:`~repro.sim.trace.TraceRecorder` capture and for gate-level
  CAS instances.

The default ``backend="auto"`` picks the kernel whenever it applies
(no trace requested, no gate-level CAS) and falls back otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro import values as lv
from repro.diagnose.syndrome import (
    KIND_BIST,
    KIND_EXTERNAL,
    KIND_SCAN,
    Syndrome,
)
from repro.errors import ConfigurationError, SimulationError
from repro.core.instruction import CHAIN_CODE
from repro.bist.lfsr import Lfsr
from repro.bist.misr import Misr
from repro.scan.atpg import TestSet
from repro.soc.core import CoreSpec, TestMethod
from repro.obs.spans import span as obs_span
from repro.sim.config import configuration_targets, state_snapshot
from repro.sim.nodes import BistNode, CasNode, NodeControls, ScanNode
from repro.sim.plan import CoreAssignment, SessionPlan, TestPlan
from repro.sim.system import CasBusSystem
from repro.sim.testsets import test_set_for
from repro.sim.trace import TraceRecorder
from repro.wrapper.wir import Wir
from repro.wrapper.wrapper import P1500Wrapper

#: Accepted ``SessionExecutor(backend=...)`` values.
BACKENDS = ("auto", "kernel", "batch", "legacy")


@dataclass
class CoreResult:
    """Outcome of one core's test inside one session.

    ``syndrome`` is populated only when the executor runs with
    ``capture_syndromes=True`` (and never for interconnect results);
    both backends then emit identical
    :class:`~repro.diagnose.syndrome.Syndrome` values.
    """

    name: str
    method: str
    passed: bool
    bits_compared: int
    mismatches: int
    detail: str = ""
    syndrome: "Syndrome | None" = None


@dataclass
class SessionResult:
    """Outcome of one session."""

    label: str
    config_cycles: int
    test_cycles: int
    core_results: list[CoreResult] = field(default_factory=list)
    undisturbed: dict[str, bool] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return self.config_cycles + self.test_cycles

    @property
    def passed(self) -> bool:
        return (all(result.passed for result in self.core_results)
                and all(self.undisturbed.values()))


@dataclass
class ProgramResult:
    """Outcome of a full test program (all sessions)."""

    sessions: list[SessionResult] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(session.total_cycles for session in self.sessions)

    @property
    def config_cycles(self) -> int:
        return sum(session.config_cycles for session in self.sessions)

    @property
    def test_cycles(self) -> int:
        return sum(session.test_cycles for session in self.sessions)

    @property
    def passed(self) -> bool:
        return all(session.passed for session in self.sessions)

    def core_results(self) -> list[CoreResult]:
        return [result for session in self.sessions
                for result in session.core_results]


class SessionExecutor:
    """Runs test plans against one system instance.

    Args:
        system: the live behavioural system.
        trace: optional per-cycle signal recorder (forces the legacy
            backend, which is the only one that sees individual
            cycles).
        backend: ``"auto"`` (default, compiled kernel when possible),
            ``"kernel"`` (force the compiled engine; raises when it
            cannot apply) or ``"legacy"`` (original object stepping).
        capture_syndromes: record bit-level failing positions into
            :attr:`CoreResult.syndrome` (off by default; cycle counts
            are unaffected either way).
        verify: statically verify the system wiring and each session's
            configuration/program artifacts before dispatching them
            (:mod:`repro.verify`); raises
            :class:`~repro.errors.VerificationError` instead of
            executing a malformed plan.
    """

    def __init__(self, system: CasBusSystem,
                 trace: TraceRecorder | None = None,
                 backend: str = "auto",
                 capture_syndromes: bool = False,
                 verify: bool = True) -> None:
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}"
            )
        self.system = system
        self.trace = trace
        self.backend = backend
        self.capture_syndromes = capture_syndromes
        self.verify = verify
        self._test_sets: dict[str, TestSet] = {}
        self._cycle = 0  # global clock, spans sessions
        self._kernel = None
        self._system_verified = False

    # -- pre-dispatch static verification --------------------------------

    def _verify_session(self, session: SessionPlan) -> None:
        """Fail fast on invariant violations before anything executes.

        Runs after the plan's own structural validation, so the
        planner's :class:`~repro.errors.ConfigurationError` surface is
        unchanged; what this adds is the static verifier's deeper
        checks (system wiring bijections, configuration target codes,
        compiled program packing).
        """
        from repro.verify import verify_session_programs, verify_system

        if not self._system_verified:
            # Raise on wiring violations *before* compiling session
            # programs: configuration targets are meaningless (and can
            # raise ConfigurationError) on a corrupted system.
            verify_system(self.system).raise_if_failed(
                self.system.soc.name
            )
            self._system_verified = True
        report = verify_session_programs(self.system, session)
        report.raise_if_failed(self.system.soc.name)

    # -- backend dispatch ------------------------------------------------

    def _use_kernel(self) -> bool:
        from repro.sim.kernel import kernel_supports

        if self.backend == "legacy":
            return False
        if self.backend in ("kernel", "batch"):
            if self.trace is not None:
                raise ConfigurationError(
                    "the kernel backend runs whole shift bursts and "
                    "records no per-cycle trace; use backend='legacy' "
                    "(or 'auto') for tracing"
                )
            if not kernel_supports(self.system):
                raise ConfigurationError(
                    f"{self.system.soc.name}: gate-level CAS instances "
                    f"need backend='legacy'"
                )
            return True
        return self.trace is None and kernel_supports(self.system)

    def _kernel_executor(self):
        from repro.sim.kernel import KernelExecutor

        executor_class = KernelExecutor
        if self.backend == "batch":
            try:
                from repro.sim.batch import BatchKernelExecutor
            except ImportError:
                pass  # no numpy: the scalar kernel is bit-identical
            else:
                executor_class = BatchKernelExecutor
        if self._kernel is None:
            self._kernel = executor_class(
                self.system, test_sets=self._test_sets,
                capture_syndromes=self.capture_syndromes,
            )
        return self._kernel

    # -- public API ------------------------------------------------------

    def run_plan(self, plan: TestPlan) -> ProgramResult:
        with obs_span(
            "executor.run_plan",
            sessions=len(plan.sessions),
            backend=self.backend,
        ):
            if self.verify:
                plan.validate(self.system.n)
                for session in plan.sessions:
                    self._verify_session(session)
            if self._use_kernel():
                return self._kernel_executor().run_plan(plan)
            plan.validate(self.system.n)
            program = ProgramResult()
            for index, session in enumerate(plan.sessions):
                label = session.label or f"session{index}"
                program.sessions.append(
                    self._run_session_legacy(session, label=label)
                )
            return program

    def run_batch(self, plan: TestPlan, scenarios) -> "list[ProgramResult]":
        """Run ``plan`` against N independent scenario instances.

        Each scenario is ``None`` (clean), an ``inject_faults``-style
        mapping, or a :class:`~repro.diagnose.inject.DefectScenario`.
        Fresh-instance semantics: element ``i`` is byte-identical to
        running the plan on a brand-new system built with scenario
        ``i`` applied -- this executor's own live system is never
        touched.

        Same-geometry scenarios execute through the vectorized batch
        kernel (:mod:`repro.sim.batch`) in one dispatch per shift
        window; scenarios the kernel cannot express (transport
        defects), ``backend="legacy"``, or a missing numpy fall back
        to per-scenario scalar runs transparently.
        """
        scenarios = list(scenarios)
        if self.backend != "legacy" and self.trace is None:
            try:
                from repro.sim.batch import BatchExecutor
            except ImportError:
                pass  # no numpy: per-scenario scalar runs below
            else:
                return BatchExecutor(
                    self.system.soc,
                    capture_syndromes=self.capture_syndromes,
                    verify=self.verify,
                ).run_batch(plan, scenarios)
        results = []
        for scenario in scenarios:  # RL005: this IS the scalar fallback
            executor = SessionExecutor(
                _scenario_system(self.system.soc, scenario),
                backend=self.backend,
                capture_syndromes=self.capture_syndromes,
                verify=self.verify,
            )
            results.append(executor.run_plan(plan))
        return results

    def run_session(
        self,
        session: SessionPlan,
        *,
        label: str = "session",
        undisturbed_paths: Sequence[tuple[str, ...]] = (),
    ) -> SessionResult:
        if self.verify:
            session.validate(self.system.n)
            self._verify_session(session)
        if self._use_kernel():
            return self._kernel_executor().run_session(
                session, label=label, undisturbed_paths=undisturbed_paths
            )
        return self._run_session_legacy(
            session, label=label, undisturbed_paths=undisturbed_paths
        )

    def _run_session_legacy(
        self,
        session: SessionPlan,
        *,
        label: str = "session",
        undisturbed_paths: Sequence[tuple[str, ...]] = (),
    ) -> SessionResult:
        session.validate(self.system.n)
        snapshots = {
            "/".join(path): self._state_snapshot(path)
            for path in undisturbed_paths
        }
        with obs_span("executor.session", label=label, backend="legacy"):
            with obs_span("executor.config"):
                config_cycles = self._configure(session)
            drivers = [self._driver_for(assignment)
                       for assignment in session.assignments]
            with obs_span("executor.shift") as shift_span:
                test_cycles = self._run_test_phase(drivers)
                shift_span.set(cycles=test_cycles)
            result = SessionResult(
                label=label,
                config_cycles=config_cycles,
                test_cycles=test_cycles,
                core_results=[driver.finish() for driver in drivers],
            )
        for name, before in snapshots.items():
            after = self._state_snapshot(tuple(name.split("/")))
            result.undisturbed[name] = (before == after)
        return result

    def run_interconnect_test(
        self,
        *,
        label: str = "interconnect",
        patterns: "list[dict[str, int]] | None" = None,
    ) -> SessionResult:
        """EXTEST interconnect test of every SoC net (section 4).

        Wrappers of the involved cores go to EXTEST; for each pattern,
        driver output boundary cells are loaded through the CAS-BUS, a
        transfer cycle launches the values across the SoC nets (with
        any injected interconnect faults applied), sink input cells
        capture, and the captured bits are shifted out and compared.

        One :class:`CoreResult` per net (method ``"interconnect"``).
        Nets whose cores do not all fit on the bus together are tested
        in automatically chosen phases.
        """
        from repro.sim.interconnect import apply_faults, counting_patterns

        nets = list(self.system.soc.interconnects)
        if not nets:
            raise ConfigurationError(
                f"{self.system.soc.name}: no interconnects declared"
            )
        phases = self._interconnect_phases(nets)
        net_results: dict[str, CoreResult] = {}
        total_config = 0
        total_test = 0
        for phase_nets in phases:
            config, test, results = self._run_interconnect_phase(
                phase_nets,
                patterns or counting_patterns(phase_nets),
                apply_faults,
            )
            total_config += config
            total_test += test
            net_results.update(results)
        return SessionResult(
            label=label,
            config_cycles=total_config,
            test_cycles=total_test,
            core_results=[net_results[net.name] for net in nets],
        )

    def _interconnect_phases(self, nets):
        """Group nets so each phase's cores fit on the bus at once."""
        phases: list[list] = []
        phase: list = []
        used_wires = 0
        cores_in_phase: set[str] = set()
        for net in nets:
            cores = {net.source[0], net.sink[0]}
            extra = sum(
                self.system.node_at((name,)).cas.p
                for name in cores - cores_in_phase
            )
            if phase and used_wires + extra > self.system.n:
                phases.append(phase)
                phase, used_wires, cores_in_phase = [], 0, set()
                extra = sum(
                    self.system.node_at((name,)).cas.p for name in cores
                )
            if extra > self.system.n and not cores_in_phase:
                raise ConfigurationError(
                    f"net {net.name}: its two cores need {extra} wires, "
                    f"bus has {self.system.n}"
                )
            phase.append(net)
            used_wires += extra
            cores_in_phase |= cores
        if phase:
            phases.append(phase)
        return phases

    def _run_interconnect_phase(self, nets, patterns, apply_faults):
        core_names: list[str] = []
        for net in nets:
            for name in (net.source[0], net.sink[0]):
                if name not in core_names:
                    core_names.append(name)
        assignments = []
        cursor = 0
        for name in core_names:
            node = self.system.node_at((name,))
            wires = tuple(range(cursor, cursor + node.cas.p))
            cursor += node.cas.p
            assignments.append(CoreAssignment(
                path=(name,), levels=(wires,), wir_override="EXTEST"
            ))
        session = SessionPlan(assignments=tuple(assignments),
                              label="extest")
        config_cycles = self._configure(session)
        wrappers: dict[str, P1500Wrapper] = {}
        port_wire: dict[str, int] = {}
        for assignment in assignments:
            node = self.system.node_at(assignment.path)
            assert node.wrapper is not None
            wrappers[assignment.path[0]] = node.wrapper
            port_wire[assignment.path[0]] = assignment.levels[0][0]
        boundary_len = {
            name: len(wrapper.boundary)
            for name, wrapper in wrappers.items()
        }
        depth = max(boundary_len.values())
        mismatches: dict[str, int] = {net.name: 0 for net in nets}
        compared: dict[str, int] = {net.name: 0 for net in nets}
        test_cycles = 0
        # expect[(core, cycle_in_window)] -> (net_name, expected_bit)
        expect: dict[tuple[str, int], tuple[str, int]] = {}
        windows = [*patterns, None]  # final flush window
        for pattern in windows:
            streams = self._interconnect_streams(
                nets, wrappers, pattern, depth
            )
            for offset in range(depth):
                for node in self.system.walk():
                    node.controls = NodeControls()
                bus_drive = {
                    port_wire[name]: streams[name][offset]
                    for name in core_names
                }
                bus_in = tuple(
                    lv.ONE if bus_drive.get(w) else lv.ZERO
                    for w in range(self.system.n)
                )
                bus_out = self.system.route_bus(bus_in, config=False)
                for (core, when), (net_name, want) in expect.items():
                    if when == offset:
                        got = _to_bit(bus_out[port_wire[core]])
                        compared[net_name] += 1
                        if got != want:
                            mismatches[net_name] += 1
                for name in core_names:
                    node = self.system.node_at((name,))
                    node.controls.shift = True
                self.system.tick_all(config=False)
                test_cycles += 1
                self._cycle += 1
            for node in self.system.walk():
                node.controls = NodeControls()
            if pattern is None:
                break
            # Transfer-capture cycle: drive nets, apply faults, capture.
            driven = {
                net.name: wrappers[net.source[0]].extest_driven_output(
                    net.source[1])
                for net in nets
            }
            received = apply_faults(
                driven, self.system.interconnect_faults
            )
            by_sink: dict[str, dict[int, int]] = {}
            for net in nets:
                sink_core, pi_index = net.sink
                by_sink.setdefault(sink_core, {})[pi_index] = received[
                    net.name]
            for sink_core, values in by_sink.items():
                wrappers[sink_core].extest_capture_inputs(values)
            test_cycles += 1
            self._cycle += 1
            # Expected observations for the next shift window: input
            # cell ``pi`` of core c emerges at cycle B_c - 1 - pi with
            # the fault-free (driven) value.
            expect = {}
            for net in nets:
                sink_core, pi_index = net.sink
                when = boundary_len[sink_core] - 1 - pi_index
                expect[(sink_core, when)] = (net.name, driven[net.name])
        results = {
            net.name: CoreResult(
                name=net.name,
                method="interconnect",
                passed=mismatches[net.name] == 0,
                bits_compared=compared[net.name],
                mismatches=mismatches[net.name],
                detail=(
                    f"{net.source[0]}.po{net.source[1]} -> "
                    f"{net.sink[0]}.pi{net.sink[1]}"
                ),
            )
            for net in nets
        }
        return config_cycles, test_cycles, results

    def _interconnect_streams(self, nets, wrappers, pattern, depth):
        """Per-core scan-in streams loading one EXTEST pattern."""
        streams: dict[str, list[int]] = {}
        for name, wrapper in wrappers.items():
            target = [0] * len(wrapper.boundary)
            if pattern is not None:
                num_inputs = len(wrapper.boundary.input_cells)
                for net in nets:
                    if net.source[0] == name:
                        target[num_inputs + net.source[1]] = pattern[
                            net.name]
            stream = list(reversed(target))
            streams[name] = [0] * (depth - len(stream)) + stream
        return streams

    # -- configuration -----------------------------------------------------------

    def _configure(self, session: SessionPlan) -> int:
        """Two-stage reconfiguration; returns cycle cost."""
        cas_targets, wir_targets = self._targets_for(session)
        # Every targeted wrapper is spliced, even when the instruction
        # is unchanged: the WIR update pulse is what (re)arms the test
        # resource (a BIST engine restarts on it).
        splice: dict[str, int] = {
            path: Wir.code_of(mode) for path, mode in wir_targets.items()
        }
        cycles = 0
        if splice:
            stage_a = {f"{path}.cas": CHAIN_CODE for path in splice}
            cycles += self.system.run_configuration(stage_a)
        stage_b = dict(cas_targets)
        stage_b.update(
            {f"{path}.wir": code for path, code in splice.items()}
        )
        cycles += self.system.run_configuration(stage_b)
        self._verify_configuration(cas_targets, wir_targets)
        self._cycle += cycles
        return cycles

    def _targets_for(
        self, session: SessionPlan
    ) -> tuple[dict[str, int], dict[str, str]]:
        """Final CAS codes (all nodes) and WIR modes (changed nodes).

        Shared with the kernel backend -- see
        :func:`repro.sim.config.configuration_targets`.
        """
        return configuration_targets(self.system, session)

    def _verify_configuration(
        self,
        cas_targets: dict[str, int],
        wir_targets: dict[str, str],
    ) -> None:
        for node in self.system.walk():
            want = cas_targets[f"{node.path}.cas"]
            if node.cas.active_code != want:
                raise SimulationError(
                    f"{node.path}: CAS landed on {node.cas.active_code}, "
                    f"wanted {want}"
                )
        for path, mode in wir_targets.items():
            node = self.system.node_at(tuple(path.split("/")))
            assert node.wrapper is not None
            if node.wrapper.mode != mode:
                raise SimulationError(
                    f"{path}: wrapper mode {node.wrapper.mode}, "
                    f"wanted {mode}"
                )

    # -- test phase --------------------------------------------------------------

    def _run_test_phase(self, drivers: list["_TerminalDriver"]) -> int:
        for node in self.system.walk():
            node.controls = NodeControls()
        total = max((driver.total_cycles for driver in drivers), default=0)
        for local_cycle in range(total):
            bus_drive: dict[int, int] = {}
            for driver in drivers:
                drives, shift, capture = driver.plan(local_cycle)
                for wire, bit in drives.items():
                    if wire in bus_drive and bus_drive[wire] != bit:
                        raise SimulationError(
                            f"two drivers on wire {wire} at cycle "
                            f"{local_cycle}"
                        )
                    bus_drive[wire] = bit
                driver.node.controls.shift = shift
                driver.node.controls.capture = capture
            bus_in = tuple(
                lv.ONE if bus_drive.get(w) else lv.ZERO
                for w in range(self.system.n)
            )
            bus_out = self.system.route_bus(bus_in, config=False)
            if self.trace is not None:
                self.trace.record_vector("bus_in", self._cycle, bus_in)
                self.trace.record_vector("bus_out", self._cycle, bus_out)
            for driver in drivers:
                driver.observe(local_cycle, bus_out)
            self.system.tick_all(config=False)
            self._cycle += 1
        for node in self.system.walk():
            node.controls = NodeControls()
        return total

    # -- drivers -----------------------------------------------------------------

    def _driver_for(self, assignment: CoreAssignment) -> "_TerminalDriver":
        node = self.system.node_at(assignment.path)
        capture = self.capture_syndromes
        if isinstance(node, BistNode):
            return _BistDriver(node, assignment, capture=capture)
        if node.spec.method == TestMethod.EXTERNAL:
            return _ExternalDriver(node, assignment, capture=capture)
        if isinstance(node, ScanNode):
            return _ScanDriver(node, assignment,
                               self._test_set_for(node), capture=capture)
        raise ConfigurationError(
            f"{assignment.name}: no driver for {node.spec.method}"
        )

    def _test_set_for(self, node: ScanNode) -> TestSet:
        cached = self._test_sets.get(node.path)
        if cached is not None:
            return cached
        test_set = test_set_for(node.spec)
        self._test_sets[node.path] = test_set
        return test_set

    # -- helpers ------------------------------------------------------------------

    def _state_snapshot(self, path: tuple[str, ...]):
        return state_snapshot(self.system, path)


def _to_bit(value: int) -> int:
    return 1 if value == lv.ONE else 0


def _scenario_system(soc, scenario):
    """A fresh system with one :meth:`SessionExecutor.run_batch`
    scenario applied (numpy-free twin of the batch module's helper)."""
    from repro.diagnose.inject import DefectScenario, build_faulty_system
    from repro.sim.system import build_system

    if scenario is None:
        return build_system(soc)
    if isinstance(scenario, DefectScenario):
        return build_faulty_system(soc, scenario)
    if isinstance(scenario, Mapping):
        return build_system(soc, inject_faults=dict(scenario))
    raise ConfigurationError(
        f"cannot interpret scenario {scenario!r}; expected None, a "
        f"fault mapping, or a DefectScenario"
    )


class _TerminalDriver:
    """Per-core stimulus/observation timeline inside one session."""

    def __init__(self, node: CasNode, assignment: CoreAssignment,
                 capture: bool = False) -> None:
        self.node = node
        self.assignment = assignment
        self.capture = capture
        self.total_cycles = 0
        self.bits_compared = 0
        self.mismatches = 0

    def plan(self, cycle: int) -> tuple[dict[int, int], bool, bool]:
        raise NotImplementedError

    def observe(self, cycle: int, bus_out: tuple[int, ...]) -> None:
        raise NotImplementedError

    def finish(self) -> CoreResult:
        raise NotImplementedError


class _ScanDriver(_TerminalDriver):
    """Streams ATPG patterns through the wrapper chains (fig 2a)."""

    def __init__(self, node: ScanNode, assignment: CoreAssignment,
                 test_set: TestSet, capture: bool = False) -> None:
        super().__init__(node, assignment, capture=capture)
        self._masks: dict[tuple[int, int], int] = {}
        wrapper = node.wrapper
        assert wrapper is not None
        self.wrapper = wrapper
        self.test_set = test_set
        self.lengths = wrapper.wrapper_chain_lengths()
        self.depth = max(self.lengths)
        self.top_wires = assignment.top_wires()
        if len(self.top_wires) != wrapper.p:
            raise ConfigurationError(
                f"{assignment.name}: {len(self.top_wires)} wires for "
                f"{wrapper.p} wrapper chains"
            )
        self.patterns = test_set.patterns
        self.num_patterns = len(self.patterns)
        # (depth shifts + 1 capture) per pattern + final flush.
        self.total_cycles = (self.depth + 1) * self.num_patterns + self.depth
        self._in_streams = [
            self._padded(wrapper.pattern_streams(p)) for p in self.patterns
        ]
        self._out_streams = [
            wrapper.expected_response_streams(r) for r in test_set.responses
        ]

    def _padded(self, streams: list[list[int]]) -> list[list[int]]:
        return [
            [0] * (self.depth - len(stream)) + stream for stream in streams
        ]

    def plan(self, cycle: int) -> tuple[dict[int, int], bool, bool]:
        if cycle >= self.total_cycles:
            return {}, False, False
        block, offset = divmod(cycle, self.depth + 1)
        if block < self.num_patterns:
            if offset == self.depth:
                return {}, False, True  # capture clock
            drives = {
                self.top_wires[c]: self._in_streams[block][c][offset]
                for c in range(self.wrapper.p)
            }
            return drives, True, False
        # Flush window: push the last response out with zero fill.
        return {wire: 0 for wire in self.top_wires}, True, False

    def observe(self, cycle: int, bus_out: tuple[int, ...]) -> None:
        if cycle >= self.total_cycles:
            return
        block, offset = divmod(cycle, self.depth + 1)
        if block < self.num_patterns:
            response_index = block - 1
        else:
            response_index = self.num_patterns - 1
            offset = cycle - (self.depth + 1) * self.num_patterns
        if response_index < 0 or offset >= self.depth:
            return
        expected = self._out_streams[response_index]
        for c in range(self.wrapper.p):
            if offset >= len(expected[c]):
                continue
            want = expected[c][offset]
            if want is None:
                continue
            got = _to_bit(bus_out[self.top_wires[c]])
            self.bits_compared += 1
            if got != want:
                self.mismatches += 1
                if self.capture:
                    key = (response_index, c)
                    self._masks[key] = self._masks.get(key, 0) | (1 << offset)

    def finish(self) -> CoreResult:
        return CoreResult(
            name=self.assignment.name,
            method="scan",
            passed=self.mismatches == 0,
            bits_compared=self.bits_compared,
            mismatches=self.mismatches,
            detail=(
                f"{self.num_patterns} patterns, chains={list(self.lengths)}, "
                f"coverage={self.test_set.fault_coverage:.2%}"
            ),
            syndrome=(Syndrome.from_masks(KIND_SCAN, self._masks)
                      if self.capture else None),
        )


class _BistDriver(_TerminalDriver):
    """Waits out the self-test, then checks the signature bits (fig 2b)."""

    def __init__(self, node: BistNode, assignment: CoreAssignment,
                 capture: bool = False) -> None:
        super().__init__(node, assignment, capture=capture)
        self.bist_node = node
        self.wire = assignment.top_wire(0)
        self.golden_bits = node.golden_signature_bits()
        self.total_cycles = node.spec.bist_cycles + len(self.golden_bits)
        self._xor_mask = 0

    def plan(self, cycle: int) -> tuple[dict[int, int], bool, bool]:
        return {}, False, False

    def observe(self, cycle: int, bus_out: tuple[int, ...]) -> None:
        start = self.bist_node.spec.bist_cycles
        index = cycle - start
        if 0 <= index < len(self.golden_bits):
            got = _to_bit(bus_out[self.wire])
            self.bits_compared += 1
            if got != self.golden_bits[index]:
                self.mismatches += 1
                # The signature streams out LSB first, so the serial
                # read-out index *is* the signature bit number.
                self._xor_mask |= 1 << index

    def finish(self) -> CoreResult:
        return CoreResult(
            name=self.assignment.name,
            method="bist",
            passed=self.mismatches == 0,
            bits_compared=self.bits_compared,
            mismatches=self.mismatches,
            detail=(
                f"{self.bist_node.spec.bist_cycles} BIST cycles, "
                f"{len(self.golden_bits)}-bit signature"
            ),
            syndrome=(Syndrome.signature_xor(KIND_BIST, self._xor_mask, 0)
                      if self.capture else None),
        )


class _ExternalDriver(_TerminalDriver):
    """Off-chip LFSR source and MISR sink with a golden shadow (fig 2c)."""

    def __init__(self, node: ScanNode, assignment: CoreAssignment,
                 capture: bool = False) -> None:
        super().__init__(node, assignment, capture=capture)
        spec: CoreSpec = node.spec
        self.wire = assignment.top_wire(0)
        self.source = Lfsr(16, seed=0xACE1 ^ (spec.seed or 1))
        self.live_misr = Misr(16)
        self.golden_misr = Misr(16)
        shadow_core = spec.build_scannable()
        self.shadow = P1500Wrapper(shadow_core, name=f"{node.path}.shadow")
        self.shadow.set_mode("INTEST")
        self.depth = self.shadow.max_chain_length
        self.num_patterns = spec.external_stream_patterns
        self.total_cycles = (self.depth + 1) * self.num_patterns + self.depth
        self._current_bit = 0

    def plan(self, cycle: int) -> tuple[dict[int, int], bool, bool]:
        if cycle >= self.total_cycles:
            return {}, False, False
        block, offset = divmod(cycle, self.depth + 1)
        if block < self.num_patterns and offset == self.depth:
            return {}, False, True
        self._current_bit = self.source.step()
        return {self.wire: self._current_bit}, True, False

    def observe(self, cycle: int, bus_out: tuple[int, ...]) -> None:
        if cycle >= self.total_cycles:
            return
        block, offset = divmod(cycle, self.depth + 1)
        capture = block < self.num_patterns and offset == self.depth
        if capture:
            self.shadow.test_capture()
            return
        self.live_misr.absorb_bit(_to_bit(bus_out[self.wire]))
        self.golden_misr.absorb_bit(self.shadow.test_returns()[0])
        self.shadow.test_shift((self._current_bit,))
        self.bits_compared += 1

    def finish(self) -> CoreResult:
        passed = self.live_misr.signature == self.golden_misr.signature
        return CoreResult(
            name=self.assignment.name,
            method="external",
            passed=passed,
            bits_compared=self.bits_compared,
            mismatches=0 if passed else 1,
            detail=(
                f"sink signature {self.live_misr.signature:#06x} vs "
                f"golden {self.golden_misr.signature:#06x}"
            ),
            syndrome=(Syndrome.signature_xor(
                KIND_EXTERNAL, self.live_misr.signature,
                self.golden_misr.signature,
            ) if self.capture else None),
        )
