"""Signal trace recording for system simulations."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class TraceRecorder:
    """Records named signal values over cycles (change-compressed).

    Only changes are stored, so long idle stretches cost nothing.  The
    recorder is intentionally permissive: any hashable value can be
    recorded, though VCD export expects logic values.
    """

    changes: dict[str, list[tuple[int, int]]] = field(
        default_factory=lambda: defaultdict(list)
    )
    last: dict[str, int] = field(default_factory=dict)
    max_cycle: int = 0

    def record(self, name: str, cycle: int, value: int) -> None:
        """Record one signal's value at a cycle (no-op if unchanged)."""
        self.max_cycle = max(self.max_cycle, cycle)
        if self.last.get(name) == value:
            return
        self.last[name] = value
        self.changes[name].append((cycle, value))

    def record_vector(self, prefix: str, cycle: int, values) -> None:
        """Record an indexed bundle, e.g. ``bus[0..n-1]``."""
        for index, value in enumerate(values):
            self.record(f"{prefix}{index}", cycle, value)

    def signals(self) -> list[str]:
        return sorted(self.changes)

    def value_at(self, name: str, cycle: int) -> int | None:
        """The recorded value of a signal at (or before) a cycle."""
        history = self.changes.get(name)
        if not history:
            return None
        result = None
        for when, value in history:
            if when > cycle:
                break
            result = value
        return result
