"""The complete CAS-BUS system: nodes on a shared test bus.

Owns the two transport mechanisms of the architecture:

* **bus routing** -- each cycle, the N wires thread every node in
  physical order; nodes in TEST mode switch their P wires to the core,
  everything else bypasses (combinationally, as in the paper);
* **the serial configuration chain** -- during CONFIGURATION, wire 0
  carries a bit stream through every CAS instruction register, every
  spliced wrapper WIR, and (recursively) every inner chain of
  hierarchical cores.  :meth:`CasBusSystem.run_configuration` computes
  the stream for a target state and shifts it in, returning the cycle
  cost -- the quantity the reconfiguration experiments charge.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro import values as lv
from repro.errors import ConfigurationError, SimulationError
from repro.core.cas import CoreAccessSwitch
from repro.core.instruction import InstructionSet
from repro.bist.engine import BistEngine
from repro.soc.core import TestMethod
from repro.soc.soc import SocSpec
from repro.sim.nodes import (
    BistNode,
    CasNode,
    ExternalNode,
    HierNode,
    ScanNode,
    SerialRegister,
)
from repro.wrapper.wrapper import P1500Wrapper


class CasBusSystem:
    """All nodes of one (sub-)SoC on one test bus."""

    def __init__(self, soc: SocSpec, nodes: list[CasNode]) -> None:
        self.soc = soc
        self.nodes = nodes
        self.n = soc.bus_width
        #: Interconnect fault injection: net name -> "sa0"/"sa1"/"open",
        #: or (net_a, net_b) -> "short".  Applied at EXTEST transfer.
        self.interconnect_faults: dict = {}
        #: TAM transport defects (see :mod:`repro.diagnose.inject`):
        #: bus wire -> stuck level (0/1), applied on every bus pass.
        #: Non-empty wire defects force the legacy backend
        #: (:func:`repro.sim.kernel.kernel_supports`).
        self.wire_faults: dict = {}
        #: Pairs of bridged (wired-AND shorted) bus wires.
        self.wire_bridges: list = []

    # -- construction: see build_system() below ---------------------------

    # -- node lookup -------------------------------------------------------

    def node_at(self, path: tuple[str, ...]) -> CasNode:
        """Resolve a hierarchical core path to its node."""
        current: CasBusSystem = self
        node: CasNode | None = None
        for depth, name in enumerate(path):
            node = next(
                (n for n in current.nodes if n.spec.name == name), None
            )
            if node is None:
                raise ConfigurationError(
                    f"no core named {name!r} at level {depth} "
                    f"of path {'/'.join(path)}"
                )
            if depth < len(path) - 1:
                if not isinstance(node, HierNode):
                    raise ConfigurationError(
                        f"{'/'.join(path[:depth + 1])} is not hierarchical"
                    )
                current = node.inner
        assert node is not None
        return node

    def walk(self) -> Iterator[CasNode]:
        """All nodes, depth-first, in chain order."""
        for node in self.nodes:
            yield node
            if isinstance(node, HierNode):
                yield from node.inner.walk()

    # -- bus transport ------------------------------------------------------

    def route_bus(self, bus_in: tuple[int, ...],
                  config: bool) -> tuple[int, ...]:
        """Combinational pass of the bus through every node.

        Injected wire defects corrupt the values both entering and
        leaving the bus: a physically broken or bridged wire mangles
        whatever segment of the net the traffic crosses.  The serial
        configuration chain is a separate path (wire 0 in
        CONFIGURATION carries :meth:`serial_shift` directly), so wire
        defects model data-path breakage while the TAM stays
        reconfigurable -- which is exactly what lets the diagnosis
        engine route a core's test around a broken wire.
        """
        if len(bus_in) != self.n:
            raise SimulationError(
                f"{self.soc.name}: bus is {self.n} wires, "
                f"got {len(bus_in)} values"
            )
        values = self._apply_wire_defects(tuple(bus_in))
        for node in self.nodes:
            values = node.process_bus(values, config)
        return self._apply_wire_defects(values)

    def _apply_wire_defects(
        self, values: tuple[int, ...]
    ) -> tuple[int, ...]:
        if not self.wire_faults and not self.wire_bridges:
            return values
        out = list(values)
        for wire, level in self.wire_faults.items():
            out[wire] = lv.ONE if level else lv.ZERO
        for wire_a, wire_b in self.wire_bridges:
            merged = _bridge_merge(out[wire_a], out[wire_b])
            out[wire_a] = merged
            out[wire_b] = merged
        return tuple(out)

    def tick_all(self, config: bool) -> None:
        for node in self.nodes:
            node.tick(config)

    # -- serial configuration chain ---------------------------------------------

    def serial_layout(self) -> list[SerialRegister]:
        """Every register currently on the chain, in chain order.

        The layout depends on the *current* state (CHAIN splices), which
        is why reconfiguration is staged: first splice, then program.
        """
        layout: list[SerialRegister] = []
        for node in self.nodes:
            layout.extend(node.serial_layout())
        return layout

    def serial_shift(self, bit_in: int) -> int:
        """One configuration clock through the whole chain."""
        bit = bit_in
        for node in self.nodes:
            bit = node.serial_shift(bit)
        return bit

    def serial_out(self) -> int:
        if not self.nodes:
            raise SimulationError(f"{self.soc.name}: empty system")
        return self.nodes[-1].serial_out()

    def config_update(self) -> None:
        for node in self.nodes:
            node.config_update()

    def current_codes(self) -> dict[str, int]:
        """Current contents to re-load for registers without new targets."""
        codes: dict[str, int] = {}
        for node in self.walk():
            codes[f"{node.path}.cas"] = node.cas.active_code
            if node.wrapper is not None:
                codes[f"{node.path}.wir"] = node.wrapper.wir.active_code
        return codes

    def config_stream(self, targets: Mapping[str, int]) -> list[int]:
        """Serial stream loading ``targets`` (register path -> code).

        Registers not named keep their current code (they must still be
        re-shifted -- the chain disturbs everything it threads).  Bits
        for the register farthest from the controller come first; each
        code is expanded LSB first.
        """
        layout = self.serial_layout()
        known = {register.path for register in layout}
        unknown = set(targets) - known
        if unknown:
            raise ConfigurationError(
                f"targets for registers not on the chain: {sorted(unknown)} "
                f"(is the WIR spliced?)"
            )
        current = self.current_codes()
        stream: list[int] = []
        cas_isets = {
            f"{node.path}.cas": node.cas.iset for node in self.walk()
        }
        for register in reversed(layout):
            code = targets.get(register.path, current[register.path])
            if register.kind == "cas":
                iset = cas_isets[register.path]
                if not iset.is_valid_code(code):
                    raise ConfigurationError(
                        f"{register.path}: invalid code {code}"
                    )
                bits = iset.code_to_bits(code)
            else:
                bits = tuple(
                    (code >> b) & 1 for b in range(register.width)
                )
            stream.extend(bits)
        return stream

    def run_configuration(self, targets: Mapping[str, int]) -> int:
        """Shift a configuration and pulse update; returns cycle cost."""
        stream = self.config_stream(targets)
        for bit in stream:
            self.serial_shift(bit)
        self.config_update()
        return len(stream) + 1

    def reset(self) -> None:
        for node in self.nodes:
            node.reset()

    # -- reporting ---------------------------------------------------------------

    def describe(self) -> str:
        lines = [f"system {self.soc.name}: N={self.n}"]
        for node in self.walk():
            lines.append("  " + node.describe())
        return "\n".join(lines)

    def idle_bus(self) -> tuple[int, ...]:
        return (lv.ZERO,) * self.n


def _bridge_merge(value_a: int, value_b: int) -> int:
    """Wired-AND resolution of two shorted wires.

    Equal levels pass unchanged; a driven 0 wins against anything else
    (the classic short-to-ground dominance); two non-0 disagreeing
    levels resolve to X.
    """
    if value_a == value_b:
        return value_a
    if lv.ZERO in (value_a, value_b):
        return lv.ZERO
    return lv.X


def build_system(
    soc: SocSpec,
    *,
    inject_faults: Mapping[str, tuple[int, int]] | None = None,
    interconnect_faults: Mapping | None = None,
    gate_level: "set[str] | frozenset[str] | None" = None,
    strict_cas: bool = True,
    path_prefix: str = "",
) -> CasBusSystem:
    """Instantiate the behavioural system for an SoC spec.

    Args:
        soc: the validated SoC description.
        inject_faults: optional map of core path (e.g. ``"core1"`` or
            ``"core5/core5a"``) to a stuck-at fault injected into that
            instance's logic.  Expected test data always comes from
            clean builds, so injected faults surface as mismatches.
        interconnect_faults: optional interconnect fault injection
            (see :mod:`repro.sim.interconnect`).
        gate_level: core paths whose CAS is instantiated from its
            *generated netlist* instead of the behavioural model --
            the cross-layer validation hook.
        strict_cas: propagate to CAS models (reject invalid codes).
        path_prefix: internal, for hierarchical naming.
    """
    soc.validate()
    faults = dict(inject_faults or {})
    gate_paths = set(gate_level or ())
    nodes: list[CasNode] = []
    for spec in soc.cores:
        path = f"{path_prefix}{spec.name}"
        if path in gate_paths:
            from repro.core.gatelevel import GateLevelCoreAccessSwitch
            from repro.core.generator import generate_cas

            design = generate_cas(soc.bus_width, spec.p)
            cas = GateLevelCoreAccessSwitch(
                design, name=f"{path}.cas", strict=strict_cas
            )
        else:
            iset = InstructionSet(soc.bus_width, spec.p)
            cas = CoreAccessSwitch(
                iset, name=f"{path}.cas", strict=strict_cas
            )
        if spec.method == TestMethod.HIERARCHICAL:
            assert spec.inner is not None
            inner = build_system(
                spec.inner,
                inject_faults={
                    key.split("/", 1)[1]: value
                    for key, value in faults.items()
                    if key.startswith(f"{spec.name}/")
                },
                gate_level={
                    key.split("/", 1)[1]
                    for key in gate_paths
                    if key.startswith(f"{spec.name}/")
                },
                strict_cas=strict_cas,
                path_prefix=f"{path}/",
            )
            nodes.append(HierNode(spec, cas, inner, path))
            continue
        core = spec.build_scannable()
        if spec.name in faults:
            core.fault = faults[spec.name]
        wrapper = P1500Wrapper(core, name=f"{path}.wrapper")
        if spec.method == TestMethod.SCAN:
            nodes.append(ScanNode(spec, cas, wrapper, path))
        elif spec.method == TestMethod.EXTERNAL:
            nodes.append(ExternalNode(spec, cas, wrapper, path))
        else:
            engine = BistEngine(
                core,
                signature_width=spec.signature_width,
                fault=core.fault,
            )
            nodes.append(BistNode(spec, cas, wrapper, engine, path))
    system = CasBusSystem(soc, nodes)
    if interconnect_faults:
        system.interconnect_faults = dict(interconnect_faults)
    return system
