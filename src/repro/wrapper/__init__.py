"""P1500-style core test wrapper substrate.

The paper relies on the (then-draft) IEEE P1500 wrapper as "the
interface between the embedded core and the TAM".  This package models
the parts the CAS-BUS interacts with:

* a **WIR** (wrapper instruction register) with shift/update stages --
  serially loadable through the CAS CHAIN splice (paper section 3.1);
* a **WBY** single-bit bypass register;
* a **WBR** boundary register (input cells hold core inputs during
  INTEST; output cells capture core outputs);
* wrapper modes: NORMAL, BYPASS, INTEST, EXTEST, plus a BIST-launch
  mode for self-testable cores.
"""

from repro.wrapper.wir import WIR_INSTRUCTIONS, Wir
from repro.wrapper.boundary import BoundaryCell, BoundaryRegister
from repro.wrapper.wrapper import P1500Wrapper

__all__ = [
    "WIR_INSTRUCTIONS",
    "Wir",
    "BoundaryCell",
    "BoundaryRegister",
    "P1500Wrapper",
]
