"""The Wrapper Instruction Register (WIR).

Shift/update mechanics mirror the CAS instruction register so the two
can be spliced into one serial chain by the CHAIN instruction: stage 0
is the serial-out end, codes travel LSB first, and an update pulse
transfers the shift stage into the active stage.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError, SimulationError

#: Wrapper instruction encoding, fixed across all wrappers.
WIR_INSTRUCTIONS: dict[str, int] = {
    "NORMAL": 0,
    "BYPASS": 1,
    "INTEST": 2,
    "EXTEST": 3,
    "BIST": 4,
}

_NAME_OF_CODE = {code: name for name, code in WIR_INSTRUCTIONS.items()}

#: WIR width: enough bits for every instruction.
WIR_WIDTH = max(1, math.ceil(math.log2(len(WIR_INSTRUCTIONS))))


class Wir:
    """One wrapper instruction register (shift + update stages)."""

    def __init__(self, name: str = "wir") -> None:
        self.name = name
        self.width = WIR_WIDTH
        self._shift_reg: list[int] = [0] * self.width
        self._active_code: int = WIR_INSTRUCTIONS["NORMAL"]

    @property
    def active_code(self) -> int:
        return self._active_code

    @property
    def active_name(self) -> str:
        return _NAME_OF_CODE[self._active_code]

    @property
    def shift_register(self) -> tuple[int, ...]:
        return tuple(self._shift_reg)

    def reset(self) -> None:
        self._shift_reg = [0] * self.width
        self._active_code = WIR_INSTRUCTIONS["NORMAL"]

    def serial_out(self) -> int:
        """Bit presented at WSO before the next shift."""
        return self._shift_reg[0]

    def shift(self, serial_in: int) -> int:
        """One shift cycle; returns the bit moved out (WSO)."""
        if serial_in not in (0, 1):
            raise SimulationError(
                f"{self.name}: serial input must be 0/1, got {serial_in!r}"
            )
        out_bit = self._shift_reg[0]
        self._shift_reg = self._shift_reg[1:] + [serial_in]
        return out_bit

    def load_code(self, code: int) -> None:
        """Directly load the shift stage (test convenience)."""
        self._shift_reg = list(self.code_to_bits(code))

    def update(self) -> str:
        """Activate the shifted instruction; returns its name."""
        code = 0
        for index, bit in enumerate(self._shift_reg):
            code |= bit << index
        if code not in _NAME_OF_CODE:
            raise ConfigurationError(
                f"{self.name}: {code:#x} is not a wrapper instruction"
            )
        self._active_code = code
        return _NAME_OF_CODE[code]

    def code_to_bits(self, code: int) -> tuple[int, ...]:
        """Little-endian bits of an instruction code."""
        if code not in _NAME_OF_CODE:
            raise ConfigurationError(f"unknown WIR code {code}")
        return tuple((code >> bit) & 1 for bit in range(self.width))

    @staticmethod
    def code_of(name: str) -> int:
        try:
            return WIR_INSTRUCTIONS[name]
        except KeyError:
            known = ", ".join(sorted(WIR_INSTRUCTIONS))
            raise ConfigurationError(
                f"unknown wrapper instruction {name!r}; known: {known}"
            ) from None
