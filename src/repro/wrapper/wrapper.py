"""The P1500-style wrapper around one core.

Composition (paper figure 3 shows the CAS attached to the "P1500
WRAPPER" terminals):

* **WIR** -- serially loadable through the CAS CHAIN splice;
* **WBY** -- one-bit bypass between WSI and WSO;
* **WBR** -- boundary cells for the core's PIs and POs;
* **parallel test port** of width P = number of wrapper scan chains.

In INTEST, wrapper scan chain ``c`` is the concatenation

    scan-in -> [input boundary cells] -> core chain c -> [output cells] -> scan-out

with boundary cells distributed across chains to balance lengths (the
wrapper-side half of the paper's scan-balancing story).  At a capture
clock the core's PIs are driven from the input cells, the core captures,
and POs land in the output cells.

In EXTEST, the whole boundary register is one serial chain on parallel
port 0 (P effectively 1), which is how SoC interconnect test rides the
CAS-BUS.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SimulationError
from repro.scan.core_model import ScannableCore
from repro.wrapper.boundary import BoundaryCell, BoundaryRegister
from repro.wrapper.wir import Wir


class P1500Wrapper:
    """Wrapper for a scannable core (or a boundary-only element).

    Args:
        core: the wrapped scannable core, or ``None`` for boundary-only
            wrappers (e.g. the wrapped system bus), in which case
            ``num_inputs``/``num_outputs`` size the boundary register.
        name: instance name for diagnostics.
        num_inputs / num_outputs: boundary sizes for boundary-only
            wrappers; ignored when ``core`` is given.
    """

    def __init__(
        self,
        core: ScannableCore | None,
        name: str = "wrapper",
        *,
        num_inputs: int = 0,
        num_outputs: int = 0,
    ) -> None:
        self.name = name
        self.core = core
        self.wir = Wir(name=f"{name}.wir")
        self.wby = 0
        if core is not None:
            num_inputs = core.num_pis
            num_outputs = core.num_pos
        self.boundary = BoundaryRegister.for_core(num_inputs, num_outputs)
        self._in_cells: list[list[BoundaryCell]] = []
        self._out_cells: list[list[BoundaryCell]] = []
        self._distribute_boundary_cells()

    # -- geometry --------------------------------------------------------

    @property
    def p(self) -> int:
        """Parallel test port width (number of wrapper chains)."""
        if self.core is None:
            return 1
        return self.core.num_chains

    def wrapper_chain_lengths(self) -> tuple[int, ...]:
        """INTEST chain lengths: boundary cells + core chain, per port."""
        if self.core is None:
            return (len(self.boundary),)
        return tuple(
            len(self._in_cells[c]) + len(self.core.chains[c])
            + len(self._out_cells[c])
            for c in range(self.p)
        )

    @property
    def max_chain_length(self) -> int:
        return max(self.wrapper_chain_lengths())

    def chain_layout(self) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Boundary-cell indices per wrapper chain.

        Returns one ``(input_pi_indices, output_po_indices)`` pair per
        chain: the PI / PO numbers of the boundary cells assigned to
        that chain, in chain (scan) order.  The compiled kernel uses
        this to reconstruct chain contents without touching cells.
        """
        pi_index = {
            id(cell): index
            for index, cell in enumerate(self.boundary.input_cells)
        }
        po_index = {
            id(cell): index
            for index, cell in enumerate(self.boundary.output_cells)
        }
        return [
            (
                tuple(pi_index[id(cell)] for cell in self._in_cells[c]),
                tuple(po_index[id(cell)] for cell in self._out_cells[c]),
            )
            for c in range(len(self._in_cells))
        ]

    def _distribute_boundary_cells(self) -> None:
        """Assign boundary cells to wrapper chains, balancing lengths."""
        if self.core is None:
            self._in_cells = [list(self.boundary.input_cells)]
            self._out_cells = [list(self.boundary.output_cells)]
            return
        chains = self.core.num_chains
        lengths = [len(chain) for chain in self.core.chains]
        self._in_cells = [[] for _ in range(chains)]
        self._out_cells = [[] for _ in range(chains)]
        for cell in self.boundary.input_cells:
            target = min(range(chains), key=lambda c: lengths[c])
            self._in_cells[target].append(cell)
            lengths[target] += 1
        for cell in self.boundary.output_cells:
            target = min(range(chains), key=lambda c: lengths[c])
            self._out_cells[target].append(cell)
            lengths[target] += 1

    # -- modes ---------------------------------------------------------------

    @property
    def mode(self) -> str:
        return self.wir.active_name

    def set_mode(self, name: str) -> None:
        """Directly select a wrapper mode (bypasses the serial protocol;
        session code uses the CHAIN splice instead)."""
        self.wir.load_code(Wir.code_of(name))
        self.wir.update()

    def reset(self) -> None:
        self.wir.reset()
        self.wby = 0
        self.boundary.reset()
        if self.core is not None:
            self.core.reset()

    # -- serial port (WSI/WSO), used by the CHAIN splice -------------------------

    def serial_out(self) -> int:
        """WSO value before the next shift (the WIR's stage 0)."""
        return self.wir.serial_out()

    def serial_shift(self, bit_in: int) -> int:
        """Shift the WIR by one bit; returns the displaced WSO bit."""
        return self.wir.shift(bit_in)

    def serial_update(self) -> str:
        """Activate the shifted wrapper instruction."""
        return self.wir.update()

    # -- parallel test port -----------------------------------------------------

    def test_returns(self) -> tuple[int, ...]:
        """Values presented on the parallel outputs this cycle (pre-clock).

        Only meaningful in INTEST/EXTEST; other modes present zeros
        (the CAS does not route them anyway).
        """
        mode = self.mode
        if mode == "INTEST" and self.core is not None:
            return tuple(
                self._chain_out_bit(c) for c in range(self.p)
            )
        if mode == "EXTEST":
            if not len(self.boundary):
                return (0,) * self.p
            out = self.boundary.cells[-1].shift_value
            return (out,) + (0,) * (self.p - 1)
        return (0,) * self.p

    def _chain_out_bit(self, c: int) -> int:
        if self._out_cells[c]:
            return self._out_cells[c][-1].shift_value
        assert self.core is not None
        if self.core.chains[c]:
            return self.core.scan_out_bit(c)
        if self._in_cells[c]:
            return self._in_cells[c][-1].shift_value
        return 0

    def test_shift(self, inputs: Sequence[int]) -> tuple[int, ...]:
        """One shift clock on the parallel port; returns the out bits."""
        if len(inputs) != self.p:
            raise SimulationError(
                f"{self.name}: expected {self.p} parallel inputs, "
                f"got {len(inputs)}"
            )
        mode = self.mode
        if mode == "INTEST" and self.core is not None:
            return tuple(
                self._shift_chain(c, inputs[c]) for c in range(self.p)
            )
        if mode == "EXTEST":
            out = self.boundary.shift(inputs[0])
            return (out,) + (0,) * (self.p - 1)
        raise SimulationError(
            f"{self.name}: test_shift in mode {mode} (need INTEST/EXTEST)"
        )

    def _shift_chain(self, c: int, bit_in: int) -> int:
        assert self.core is not None
        bit = bit_in
        for cell in self._in_cells[c]:
            out = cell.shift_value
            cell.load(bit)
            bit = out
        bit = self.core.scan_shift(c, bit)
        for cell in self._out_cells[c]:
            out = cell.shift_value
            cell.load(bit)
            bit = out
        return bit

    def test_capture(self) -> None:
        """One capture clock: apply boundary inputs, capture the core."""
        if self.mode != "INTEST":
            raise SimulationError(
                f"{self.name}: capture in mode {self.mode} (need INTEST)"
            )
        if self.core is None:
            raise SimulationError(f"{self.name}: no core to capture")
        pi_values = [cell.shift_value for cell in self.boundary.input_cells]
        po_values = self.core.capture(pi_values)
        self.boundary.capture_outputs(po_values)

    # -- EXTEST interconnect hooks ------------------------------------------

    def extest_driven_output(self, po_index: int) -> int:
        """Value an output boundary cell drives onto the SoC net."""
        if self.mode != "EXTEST":
            raise SimulationError(
                f"{self.name}: driving interconnect in mode {self.mode}"
            )
        return self.boundary.output_cells[po_index].shift_value

    def extest_capture_inputs(self, values: dict[int, int]) -> None:
        """Capture interconnect values into input boundary cells.

        ``values`` maps PI index to the net value arriving at that pin;
        unconnected inputs keep their content.
        """
        if self.mode != "EXTEST":
            raise SimulationError(
                f"{self.name}: capturing interconnect in mode {self.mode}"
            )
        input_cells = self.boundary.input_cells
        for pi_index, value in values.items():
            if not 0 <= pi_index < len(input_cells):
                raise SimulationError(
                    f"{self.name}: no input boundary cell {pi_index}"
                )
            input_cells[pi_index].load(value)

    # -- pattern/response mapping --------------------------------------------

    def pattern_streams(self, pattern) -> list[list[int]]:
        """Scan-in bit streams (per wrapper chain) loading one pattern.

        The stream for chain ``c`` is ordered first-bit-shifted-first
        and sized to the *wrapper* chain length; shorter chains are the
        caller's concern (the session pads to the session's max length).

        After ``len(stream)`` shifts the chain holds: input cells = the
        pattern's PI values (for the cells assigned to this chain), core
        chain = the pattern's chain load, output cells = don't-care (0).
        """
        if self.core is None:
            raise SimulationError(f"{self.name}: boundary-only wrapper")
        streams: list[list[int]] = []
        for c in range(self.p):
            in_cells = self._in_cells[c]
            out_cells = self._out_cells[c]
            pi_of_cell = {
                id(cell): pattern.pi[index]
                for index, cell in enumerate(self.boundary.input_cells)
            }
            # Shift order: a bit entering at scan-in traverses input
            # cells, then the core chain, then output cells.  After L
            # shifts the FIRST bit shifted ends in the LAST position
            # (nearest scan-out).  Build target contents scan-in-first,
            # then reverse into a stream.
            target: list[int] = []
            target.extend(pi_of_cell[id(cell)] for cell in in_cells)
            target.extend(pattern.chains[c])
            target.extend([0] * len(out_cells))
            streams.append(list(reversed(target)))
        return streams

    def expected_response_streams(self, response) -> list[list[int | None]]:
        """Scan-out bit streams (per wrapper chain) after a capture.

        Bit 0 of a stream is what emerges on the *first* shift after
        capture: the value nearest scan-out, i.e. the last output cell
        (or the core chain tail when a chain has no output cells).
        Input-cell positions carry ``None`` (don't-care): they echo the
        previous pattern's PI values and observe no core logic.
        """
        if self.core is None:
            raise SimulationError(f"{self.name}: boundary-only wrapper")
        streams: list[list[int | None]] = []
        for c in range(self.p):
            contents: list[int | None] = []
            # Post-capture chain contents, scan-in side first: input
            # cells keep their shifted PI values (don't-care here), core
            # FFs hold the captured next state, output cells captured POs.
            po_of_cell = {
                id(cell): response.po_values[index]
                for index, cell in enumerate(self.boundary.output_cells)
            }
            contents.extend(None for _ in self._in_cells[c])
            contents.extend(
                response.ff_values[ff] for ff in self.core.chains[c]
            )
            for cell in self._out_cells[c]:
                contents.append(po_of_cell[id(cell)])
            # Scan-out order: last content first.
            streams.append(list(reversed(contents)))
        return streams

    def __repr__(self) -> str:
        return (
            f"P1500Wrapper({self.name!r}, mode={self.mode}, p={self.p}, "
            f"chains={list(self.wrapper_chain_lengths())})"
        )
