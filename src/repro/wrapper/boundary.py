"""Wrapper boundary register (WBR) cells.

Input cells sit between the SoC interconnect and a core input: in
INTEST they *drive* the core input from their update latch; in EXTEST
they *capture* the interconnect value.  Output cells mirror this for
core outputs.  Cells are shiftable so boundary contents travel on the
wrapper scan path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

#: Cell directions.
INPUT_CELL = "input"
OUTPUT_CELL = "output"


@dataclass
class BoundaryCell:
    """One WBC: a shift flop plus an update latch.

    Attributes:
        direction: ``"input"`` (drives a core input) or ``"output"``
            (observes a core output).
        shift_value: content of the shift flop.
        held_value: content of the update latch (what drives the core
            side in INTEST for input cells).
        stuck: optional injected defect -- a dead shift flop whose
            output is stuck at this value (see
            :mod:`repro.diagnose.inject`).  ``None`` = healthy.
    """

    direction: str
    shift_value: int = 0
    held_value: int = 0
    stuck: "int | None" = None

    def __post_init__(self) -> None:
        if self.direction not in (INPUT_CELL, OUTPUT_CELL):
            raise SimulationError(f"bad boundary direction {self.direction!r}")

    def load(self, bit: int) -> None:
        """Store a bit into the shift flop (a stuck flop ignores it)."""
        self.shift_value = bit if self.stuck is None else self.stuck


@dataclass
class BoundaryRegister:
    """An ordered chain of boundary cells (inputs first, then outputs)."""

    cells: list[BoundaryCell] = field(default_factory=list)

    @classmethod
    def for_core(cls, num_inputs: int, num_outputs: int) -> "BoundaryRegister":
        cells = [BoundaryCell(INPUT_CELL) for _ in range(num_inputs)]
        cells += [BoundaryCell(OUTPUT_CELL) for _ in range(num_outputs)]
        return cls(cells=cells)

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def input_cells(self) -> list[BoundaryCell]:
        return [c for c in self.cells if c.direction == INPUT_CELL]

    @property
    def output_cells(self) -> list[BoundaryCell]:
        return [c for c in self.cells if c.direction == OUTPUT_CELL]

    def shift(self, serial_in: int) -> int:
        """Shift the whole register by one bit; returns the bit out."""
        if serial_in not in (0, 1):
            raise SimulationError(f"boundary shift input {serial_in!r} not 0/1")
        if not self.cells:
            return serial_in
        out_bit = self.cells[-1].shift_value
        for index in range(len(self.cells) - 1, 0, -1):
            self.cells[index].load(self.cells[index - 1].shift_value)
        self.cells[0].load(serial_in)
        return out_bit

    def update_inputs(self) -> None:
        """Transfer input-cell shift flops into their update latches."""
        for cell in self.input_cells:
            cell.held_value = cell.shift_value

    def capture_outputs(self, values: list[int]) -> None:
        """Capture core outputs into output-cell shift flops."""
        outputs = self.output_cells
        if len(values) != len(outputs):
            raise SimulationError(
                f"capturing {len(values)} values into {len(outputs)} cells"
            )
        for cell, value in zip(outputs, values):
            cell.load(value)

    def driven_inputs(self) -> list[int]:
        """The values input cells present to the core in INTEST."""
        return [cell.held_value for cell in self.input_cells]

    def reset(self) -> None:
        for cell in self.cells:
            # A physical defect survives reset: a stuck flop resets to
            # its stuck level, not to 0.
            cell.load(0)
            cell.held_value = 0
