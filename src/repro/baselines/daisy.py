"""Daisy chain: every core's scan path concatenated on one serial wire
(boundary-scan / TestShell style without parallel access).

Minimal pins and hardware; test time is dominated by the total chain
length times the largest pattern count.  Registered in
:mod:`repro.api` as ``"daisy-chain"``.
"""

from __future__ import annotations

from typing import Sequence

from repro.soc.core import CoreTestParams
from repro.baselines.base import TamBaseline, TamReport
from repro.schedule.timing import scan_test_cycles


class DaisyChain(TamBaseline):
    name = "daisy-chain"
    key = "daisy-chain"

    def evaluate(
        self,
        cores: Sequence[CoreTestParams],
        bus_width: int,
    ) -> TamReport:
        total_length = sum(core.flops for core in cores)
        patterns = max((core.patterns for core in cores), default=0)
        test = scan_test_cycles(total_length, patterns)
        # Fixed-duration (BIST) cores overlap with the scan stream only
        # if longer; account for the worst.
        fixed = max((core.fixed_cycles or 0 for core in cores), default=0)
        test = max(test, fixed)
        area = self.wire_area_proxy(1, len(cores)) + 1.0 * len(cores)
        return TamReport(
            name=self.name,
            test_cycles=test,
            config_cycles=0,
            extra_pins=1,
            area_proxy=round(area, 1),
        )
