"""System-bus TAM: reuse the functional bus for test data (Harrod,
ITC'99 style).

No extra wires, but test data contends with bus protocol overhead and
cores serialise on the single shared resource.  Registered in
:mod:`repro.api` as ``"system-bus"``.
"""

from __future__ import annotations

from typing import Sequence

from repro.soc.core import CoreTestParams
from repro.baselines.base import TamBaseline, TamReport
from repro.schedule.timing import core_test_cycles


class SystemBusTam(TamBaseline):
    name = "system-bus"
    key = "system-bus"

    #: Functional bus width available for test payloads.
    BUS_WIDTH = 32
    #: Arbitration / protocol cycles charged per pattern transfer.
    OVERHEAD_PER_PATTERN = 2
    #: Cycles to set up bus-master access to one core.
    SETUP_CYCLES = 16

    def evaluate(
        self,
        cores: Sequence[CoreTestParams],
        bus_width: int,
    ) -> TamReport:
        test = 0
        for core in cores:
            base = core_test_cycles(core, min(core.max_wires,
                                              self.BUS_WIDTH))
            test += base + core.patterns * self.OVERHEAD_PER_PATTERN
        config = self.SETUP_CYCLES * len(cores)
        # Bus interface logic per core (address decode, test DMA).
        area = 60.0 * len(cores)
        return TamReport(
            name=self.name,
            test_cycles=test,
            config_cycles=config,
            extra_pins=0,
            area_proxy=round(area, 1),
        )
