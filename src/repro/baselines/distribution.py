"""Static distribution: the bus wires are partitioned among cores at
design time (Marinissen et al., ITC'98 TestRail flavour) and never
change.

Everything runs in parallel, but the partition is frozen: a core that
finishes early cannot donate its wires to the stragglers -- exactly
the rigidity the CAS-BUS's reconfigurability removes.  Registered in
:mod:`repro.api` as ``"static-distribution"``.
"""

from __future__ import annotations

from typing import Sequence

from repro.soc.core import CoreTestParams
from repro.baselines.base import TamBaseline, TamReport
from repro.schedule.reconfig import static_partition


class StaticDistribution(TamBaseline):
    name = "static-distribution"
    key = "static-distribution"

    def evaluate(
        self,
        cores: Sequence[CoreTestParams],
        bus_width: int,
    ) -> TamReport:
        plan = static_partition(cores, bus_width)
        area = self.wire_area_proxy(bus_width, len(cores))
        return TamReport(
            name=self.name,
            test_cycles=plan.total_cycles,
            config_cycles=0,
            extra_pins=bus_width,
            area_proxy=round(area, 1),
        )
