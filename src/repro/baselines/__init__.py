"""Baseline TAM architectures.

The paper positions CAS-BUS against TAMs "based on the use of the
system bus [3] or on a specific test bus [4], [5]" and against
direct-access designs.  These executable baselines share one timing
interface so the comparison experiment (C5) can run them all on the
same workloads:

* :class:`~repro.baselines.mux_bus.MultiplexedBus` -- full-width bus
  multiplexed to one core at a time (Varma/Bhatia-style test bus);
* :class:`~repro.baselines.daisy.DaisyChain` -- all cores on one serial
  chain (TestShell/Boundary-scan style);
* :class:`~repro.baselines.distribution.StaticDistribution` -- wires
  statically partitioned across cores (Marinissen-style TestRail,
  non-reconfigurable);
* :class:`~repro.baselines.direct.DirectAccess` -- dedicated pins per
  core, everything parallel (the pin-hungry upper baseline);
* :class:`~repro.baselines.sysbus.SystemBusTam` -- reuse of the
  functional system bus with per-pattern arbitration overhead;
* :class:`~repro.baselines.casbus.CasBusTam` -- the paper's
  architecture, delegating to the scheduler.
"""

from repro.baselines.base import TamBaseline, TamReport
from repro.baselines.mux_bus import MultiplexedBus
from repro.baselines.daisy import DaisyChain
from repro.baselines.distribution import StaticDistribution
from repro.baselines.direct import DirectAccess
from repro.baselines.sysbus import SystemBusTam
from repro.baselines.casbus import CasBusTam

__all__ = [
    "TamBaseline",
    "TamReport",
    "MultiplexedBus",
    "DaisyChain",
    "StaticDistribution",
    "DirectAccess",
    "SystemBusTam",
    "CasBusTam",
    "all_baselines",
]


def all_baselines() -> list[TamBaseline]:
    """One instance of every architecture, CAS-BUS last.

    A thin shim over the :mod:`repro.api` architecture registry (the
    canonical source): registering a new architecture there makes it
    appear in every comparison that calls this function.
    """
    from repro.api.architectures import registered_baselines

    return registered_baselines()
