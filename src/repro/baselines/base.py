"""Common interface for TAM architecture baselines."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro.soc.core import CoreTestParams


@dataclass(frozen=True)
class TamReport:
    """What one architecture costs on one workload.

    Attributes:
        name: architecture name.
        test_cycles: total test application time.
        config_cycles: configuration/steering overhead in cycles.
        extra_pins: dedicated test pins beyond a serial control port.
        area_proxy: relative silicon cost of the access hardware
            (NAND2-equivalent estimate; comparable across baselines,
            not against a foundry library).
    """

    name: str
    test_cycles: int
    config_cycles: int
    extra_pins: int
    area_proxy: float

    @property
    def total_cycles(self) -> int:
        return self.test_cycles + self.config_cycles


class TamBaseline(abc.ABC):
    """One test access architecture under the abstract timing model.

    Baselines are the timing models behind the pluggable
    :class:`repro.api.architectures.TamArchitecture` layer; ``key`` is
    the name each registers under in :mod:`repro.api.registry` (kept
    here so baseline and registry entry cannot drift apart).
    """

    name: str = "baseline"
    #: Registry key in :mod:`repro.api` (``get_architecture(key)``).
    key: str = "baseline"

    @abc.abstractmethod
    def evaluate(
        self,
        cores: Sequence[CoreTestParams],
        bus_width: int,
    ) -> TamReport:
        """Cost of testing ``cores`` with ``bus_width`` test wires.

        ``bus_width`` is the pin budget architectures that use a bus
        get; architectures that ignore it (daisy chain, direct access)
        report their own pin needs instead.
        """

    # -- shared cost helpers ------------------------------------------------

    @staticmethod
    def wire_area_proxy(wires: int, taps: int) -> float:
        """Routing cost proxy: wires times tap points, in GE."""
        return 2.0 * wires * taps
