"""Direct access: every core gets dedicated test pins at its full
parallelism.  The time lower bound among bus-style TAMs -- and a pin
count no real package offers.  Used as the reference point baselines
are judged against.  Registered in :mod:`repro.api` as
``"direct-access"``.
"""

from __future__ import annotations

from typing import Sequence

from repro.soc.core import CoreTestParams
from repro.baselines.base import TamBaseline, TamReport
from repro.schedule.timing import core_test_cycles


class DirectAccess(TamBaseline):
    name = "direct-access"
    key = "direct-access"

    def evaluate(
        self,
        cores: Sequence[CoreTestParams],
        bus_width: int,
    ) -> TamReport:
        test = max(
            (core_test_cycles(core, core.max_wires) for core in cores),
            default=0,
        )
        pins = sum(core.max_wires for core in cores)
        area = self.wire_area_proxy(pins, 1)
        return TamReport(
            name=self.name,
            test_cycles=test,
            config_cycles=0,
            extra_pins=pins,
            area_proxy=round(area, 1),
        )
