"""The CAS-BUS itself under the baseline interface.

Test time comes from the reconfigurable scheduler (with configuration
overhead charged), area from the actual CAS generator: one CAS per core
at the core's P, on an N-wire bus.

The scheme-enumeration policy is configurable: ``None`` (default)
applies the designer rule of
:func:`repro.core.instruction.practical_policy` per CAS -- the paper's
"other heuristics ... to limit the total number m" -- while a fixed
policy string keeps the rule constant across a sweep (used by the
bus-width trade-off experiment so area reflects width, not policy
switches).

The scheduling policy is pluggable too: any
:class:`repro.api.schedulers.SchedulerStrategy` (or duck-typed
equivalent) can replace the default greedy session packing, which is
how the experiment layer evaluates the CAS-BUS under ``preemptive`` or
``exhaustive`` scheduling.  Registered in :mod:`repro.api` as
``"casbus"``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from repro.soc.core import CoreTestParams
from repro.baselines.base import TamBaseline, TamReport
from repro.schedule.scheduler import schedule_greedy


@lru_cache(maxsize=512)
def _cas_area_ge(n: int, p: int, policy: str | None) -> float:
    """Generated CAS area (GE), cached: generation is not free."""
    from repro.core.generator import generate_cas
    from repro.core.instruction import practical_policy

    if policy is None:
        policy = practical_policy(n, p)
    return generate_cas(n, p, policy=policy).area.area_ge


class CasBusTam(TamBaseline):
    name = "cas-bus"
    key = "casbus"

    def __init__(self, policy: str | None = None,
                 scheduler=None) -> None:
        """``scheduler`` is any object with the
        :class:`repro.api.schedulers.SchedulerStrategy` interface;
        ``None`` keeps the historical greedy session packing."""
        self.policy = policy
        self.scheduler = scheduler

    def evaluate(
        self,
        cores: Sequence[CoreTestParams],
        bus_width: int,
    ) -> TamReport:
        if self.scheduler is None:
            schedule = schedule_greedy(cores, bus_width,
                                       charge_config=True,
                                       cas_policy=self.policy)
            test = schedule.test_cycles
            config = schedule.config_cycles_total
        else:
            outcome = self.scheduler.schedule(
                cores, bus_width, charge_config=True,
                cas_policy=self.policy,
            )
            test = outcome.test_cycles
            config = outcome.config_cycles
        area = self.wire_area_proxy(bus_width, len(cores))
        for core in cores:
            p = min(core.max_wires, bus_width)
            area += _cas_area_ge(bus_width, p, self.policy)
        return TamReport(
            name=self.name,
            test_cycles=test,
            config_cycles=config,
            extra_pins=bus_width,
            area_proxy=round(area, 1),
        )
