"""Multiplexed test bus: the full bus width is granted to one core at a
time (Varma & Bhatia, ITC'98 style).

Fast per core, but cores strictly serialise and every core's terminals
must mux onto the full-width bus.  Registered in :mod:`repro.api` as
``"mux-bus"``.
"""

from __future__ import annotations

from typing import Sequence

from repro.soc.core import CoreTestParams
from repro.baselines.base import TamBaseline, TamReport
from repro.schedule.timing import core_test_cycles


class MultiplexedBus(TamBaseline):
    name = "mux-bus"
    key = "mux-bus"

    #: Cycles to steer the mux to the next core.
    SWITCH_CYCLES = 4

    def evaluate(
        self,
        cores: Sequence[CoreTestParams],
        bus_width: int,
    ) -> TamReport:
        test = sum(core_test_cycles(core, bus_width) for core in cores)
        config = self.SWITCH_CYCLES * len(cores)
        # Every core taps the full bus; a wide mux at each tap.
        area = self.wire_area_proxy(bus_width, len(cores)) + \
            4.0 * bus_width * len(cores)
        return TamReport(
            name=self.name,
            test_cycles=test,
            config_cycles=config,
            extra_pins=bus_width,
            area_proxy=round(area, 1),
        )
