"""Scan-chain balancing (paper section 4: "the test programmer can
balance the length of the scan chains within the test programs, in
order to reduce the test time").

Two problems appear:

* **free balancing** -- the flip-flops can be re-chained arbitrarily:
  optimal is the ceil/floor split (:func:`balanced_lengths`);
* **grouping fixed chains onto wires** -- the multiprocessor-scheduling
  problem: LPT heuristic (:func:`partition_lpt`) with an exact
  branch-and-bound (:func:`partition_optimal`) for small instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ScheduleError


def balanced_lengths(total: int, wires: int) -> list[int]:
    """The optimal chain lengths when flip-flops re-chain freely."""
    if wires < 1:
        raise ScheduleError(f"wires must be >= 1, got {wires}")
    if total < 0:
        raise ScheduleError(f"negative flop count {total}")
    base, extra = divmod(total, wires)
    return [base + (1 if index < extra else 0) for index in range(wires)]


@dataclass(frozen=True)
class Partition:
    """Assignment of chains to wires.

    Attributes:
        groups: ``groups[w]`` lists the indices of chains on wire w.
        loads: total scan length per wire.
    """

    groups: tuple[tuple[int, ...], ...]
    loads: tuple[int, ...]

    @property
    def makespan(self) -> int:
        return max(self.loads) if self.loads else 0


def partition_lpt(lengths: Sequence[int], wires: int) -> Partition:
    """Longest-processing-time grouping of fixed chains onto wires.

    Classic 4/3-approximation for minimising the longest wire load.
    """
    if wires < 1:
        raise ScheduleError(f"wires must be >= 1, got {wires}")
    order = sorted(range(len(lengths)), key=lambda i: -lengths[i])
    groups: list[list[int]] = [[] for _ in range(wires)]
    loads = [0] * wires
    for index in order:
        target = loads.index(min(loads))
        groups[target].append(index)
        loads[target] += lengths[index]
    return Partition(
        groups=tuple(tuple(group) for group in groups),
        loads=tuple(loads),
    )


def partition_optimal(
    lengths: Sequence[int],
    wires: int,
    *,
    max_items: int = 16,
) -> Partition:
    """Exact minimum-makespan grouping via branch and bound.

    Exponential in the worst case; guarded by ``max_items``.  Used by
    tests to certify LPT quality and by the balancing experiment for
    small cores.
    """
    if len(lengths) > max_items:
        raise ScheduleError(
            f"{len(lengths)} chains exceed the exact-solver limit "
            f"{max_items}; use partition_lpt"
        )
    if wires < 1:
        raise ScheduleError(f"wires must be >= 1, got {wires}")
    order = sorted(range(len(lengths)), key=lambda i: -lengths[i])
    best = partition_lpt(lengths, wires)
    best_makespan = best.makespan
    assignment = [0] * len(lengths)
    loads = [0] * wires

    def descend(position: int) -> None:
        nonlocal best, best_makespan
        if position == len(order):
            makespan = max(loads)
            if makespan < best_makespan:
                best_makespan = makespan
                groups: list[list[int]] = [[] for _ in range(wires)]
                for rank, wire in enumerate(assignment):
                    groups[wire].append(order[rank])
                best = Partition(
                    groups=tuple(tuple(g) for g in groups),
                    loads=tuple(loads),
                )
            return
        item = order[position]
        seen_loads: set[int] = set()
        for wire in range(wires):
            if loads[wire] in seen_loads:
                continue  # symmetric branch
            seen_loads.add(loads[wire])
            if loads[wire] + lengths[item] >= best_makespan:
                continue  # bound
            loads[wire] += lengths[item]
            assignment[position] = wire
            descend(position + 1)
            loads[wire] -= lengths[item]

    descend(0)
    return best
