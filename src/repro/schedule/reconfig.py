"""Reconfiguration study (section 4: "the CAS-BUS architecture can be
easily modified, even during test sessions, in order to optimize test
performances" / section 5: "Different TAM architectures can be
addressed, in sequential order, within the same test program").

Compares, on the same workload and bus width:

* **reconfigured CAS-BUS** -- a fresh wire assignment every session
  (the scheduler's output), paying serial reconfiguration each time;
* **static TAM** -- one wire partition fixed for the whole program
  (what a non-reconfigurable distribution architecture offers): every
  core keeps its statically assigned wires; cores than share wires
  (when cores outnumber wires) serialise on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ScheduleError
from repro.soc.core import CoreTestParams
from repro.schedule.model import cost_model
from repro.schedule.preemptive import PreemptiveSchedule, schedule_preemptive
from repro.schedule.scheduler import Schedule, schedule_greedy
from repro.schedule.timing import core_test_cycles


@dataclass(frozen=True)
class StaticPlan:
    """A fixed wire partition: group index -> cores sharing it."""

    groups: tuple[tuple[CoreTestParams, ...], ...]
    wires_per_group: tuple[int, ...]

    @property
    def total_cycles(self) -> int:
        """Groups run in parallel; cores inside a group serialise."""
        return max(
            (
                sum(core_test_cycles(core, wires) for core in group)
                for group, wires in zip(self.groups, self.wires_per_group)
            ),
            default=0,
        )


@dataclass(frozen=True)
class ReconfigComparison:
    """Side-by-side of reconfigured vs static operation.

    Two reconfiguration granularities are built -- session-based
    (coarse) and preemptive (reallocate on every completion) -- and the
    better one represents the CAS-BUS, since the architecture supports
    both.
    """

    bus_width: int
    reconfigured: Schedule
    preemptive: PreemptiveSchedule
    static: StaticPlan
    cas_policy: "str | None" = "all"

    @property
    def reconfig_total(self) -> int:
        candidates = [self.reconfigured.total_cycles,
                      self.preemptive.total_cycles]
        copied = self.static_copy_total
        if copied is not None:
            candidates.append(copied)
        return min(candidates)

    @property
    def static_copy_total(self) -> int | None:
        """The CAS-BUS emulating the static plan with one configuration.

        Feasible when every static group holds one core (all cores run
        concurrently): one two-stage configuration pass, then the
        static makespan.  Proves the reconfigurable TAM subsumes the
        static design.
        """
        if any(len(group) != 1 for group in self.static.groups):
            return None
        cores = [group[0] for group in self.static.groups]
        model = cost_model(cores, self.bus_width, self.cas_policy)
        one_config = model.session_config_cycles(len(cores))
        return self.static.total_cycles + one_config

    @property
    def static_total(self) -> int:
        return self.static.total_cycles

    @property
    def speedup(self) -> float:
        if self.reconfig_total == 0:
            return 1.0
        return self.static_total / self.reconfig_total

    @property
    def config_overhead_fraction(self) -> float:
        best = (self.reconfigured
                if self.reconfigured.total_cycles
                <= self.preemptive.total_cycles
                else self.preemptive)
        if best.total_cycles == 0:
            return 0.0
        return best.config_cycles_total / best.total_cycles


def static_partition(
    cores: Sequence[CoreTestParams],
    bus_width: int,
) -> StaticPlan:
    """A sensible static design: balance total work across wire groups.

    Greedy: sort cores by single-wire work, assign each to the
    currently least-loaded group.  Groups get one wire each; leftover
    wires go to the heaviest groups.  This is what a designer would
    freeze at tape-out without reconfigurability.
    """
    if bus_width < 1:
        raise ScheduleError(f"bus width must be >= 1, got {bus_width}")
    num_groups = min(bus_width, len(cores))
    groups: list[list[CoreTestParams]] = [[] for _ in range(num_groups)]
    loads = [0] * num_groups
    for core in sorted(cores, key=lambda c: -core_test_cycles(c, 1)):
        target = loads.index(min(loads))
        groups[target].append(core)
        loads[target] += core_test_cycles(core, 1)
    wires = [1] * num_groups
    spare = bus_width - num_groups
    while spare > 0:
        # Give an extra wire to the group that currently dominates.
        def group_time(index: int) -> int:
            return sum(
                core_test_cycles(core, wires[index])
                for core in groups[index]
            )

        slowest = max(range(num_groups), key=group_time)
        wires[slowest] += 1
        spare -= 1
    return StaticPlan(
        groups=tuple(tuple(group) for group in groups),
        wires_per_group=tuple(wires),
    )


def compare_reconfiguration(
    cores: Sequence[CoreTestParams],
    bus_width: int,
    *,
    cas_policy: str | None = "all",
) -> ReconfigComparison:
    """Build both designs and report the section 4 comparison.

    ``cas_policy`` sets the instruction-register sizing rule charged
    for each reconfiguration (as in :func:`schedule_greedy`), so the
    comparison stays policy-consistent with the schedules it is
    compared against.
    """
    reconfigured = schedule_greedy(cores, bus_width, charge_config=True,
                                   cas_policy=cas_policy)
    preemptive = schedule_preemptive(cores, bus_width, charge_config=True,
                                     cas_policy=cas_policy)
    static = static_partition(cores, bus_width)
    return ReconfigComparison(
        bus_width=bus_width,
        reconfigured=reconfigured,
        preemptive=preemptive,
        static=static,
        cas_policy=cas_policy,
    )
