"""Session scheduling: pack core tests onto N bus wires over time.

This is the rectangle-packing view of TAM scheduling (cores are
rectangles: wires x time).  The CAS-BUS reconfigures between sessions,
so the scheduler's job is to choose session groups and per-core wire
counts minimising total time, configuration overhead included.

All cost accounting flows through the shared
:class:`~repro.schedule.model.CostModel` (the schedule IR lives in
:mod:`repro.schedule.model` too and is re-exported here), so the
greedy packer, the exhaustive enumerator and the optimisers in
:mod:`repro.schedule.optimize` can never drift on what a session
costs.

Algorithms:

* :func:`schedule_greedy` -- sort by single-wire test time, open a
  session around the biggest unscheduled core at its best useful
  width, fill leftover wires with the next cores, iterate.  Then a
  local improvement pass widens cores into idle wires.
* :func:`schedule_exhaustive` -- optimal over all session partitions
  for small instances (tests and ablations); wire splits per session
  come from the cost model's parametric optimum.
* :func:`lower_bound` -- max of the work-conservation bound and the
  widest-core bound; used to sanity-check schedule quality and to
  seed the branch-and-bound optimiser.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ScheduleError
from repro.soc.core import CoreTestParams
from repro.schedule.model import (
    CostModel,
    Schedule,
    ScheduledEntry,
    ScheduledSession,
    TamProblem,
    cost_model,
)

__all__ = [
    "Schedule",
    "ScheduledEntry",
    "ScheduledSession",
    "lower_bound",
    "schedule_exhaustive",
    "schedule_greedy",
    "session_config_cost",
]


def session_config_cost(
    all_cores: Sequence[CoreTestParams],
    bus_width: int,
    tested: Sequence[CoreTestParams],
    cas_policy: str | None = "all",
) -> int:
    """Config cost of one session in the abstract model.

    One stage-A pass (splice) and one stage-B pass with the tested
    cores' WIRs spliced -- matching the executor's protocol.  Thin
    shim over :meth:`repro.schedule.model.CostModel.session_config_cycles`
    for callers without a model at hand.
    """
    model = cost_model(all_cores, bus_width, cas_policy)
    return model.session_config_cycles(len(tested))


def schedule_greedy(
    cores: Sequence[CoreTestParams],
    bus_width: int,
    *,
    charge_config: bool = True,
    exact_wires: bool = False,
    cas_policy: str | None = "all",
) -> Schedule:
    """Greedy session packing with a widening improvement pass.

    ``exact_wires=True`` allocates every core exactly ``max_wires``
    (its P): a CAS in TEST mode always switches P wires, so executable
    plans are rigid; elastic allocation models design-time freedom in
    the chain count (trade-off experiments).  ``cas_policy`` sets the
    instruction-register sizing rule for configuration costs
    (``None`` = the designer rule of
    :func:`repro.core.instruction.practical_policy`).
    """
    model = cost_model(cores, bus_width, cas_policy)
    if exact_wires:
        for core in cores:
            if core.max_wires > bus_width:
                raise ScheduleError(
                    f"{core.name}: P={core.max_wires} exceeds bus "
                    f"width {bus_width}"
                )

    def allocation(params: CoreTestParams, available: int) -> int:
        if exact_wires:
            return params.max_wires
        return model.useful_wires(params, available)

    remaining = sorted(
        cores,
        key=lambda c: -model.core_cycles(c, 1),
    )
    schedule = Schedule(bus_width=bus_width)
    while remaining:
        available = bus_width
        entries: list[ScheduledEntry] = []
        # Anchor: the longest core, as wide as useful.
        anchor = remaining.pop(0)
        anchor_wires = allocation(anchor, available)
        entries.append(ScheduledEntry(params=anchor, wires=anchor_wires))
        available -= anchor_wires
        # Fill: next-longest cores that still fit.
        index = 0
        while index < len(remaining) and available > 0:
            candidate = remaining[index]
            wires = allocation(candidate, available)
            if wires <= available:
                entries.append(
                    ScheduledEntry(params=candidate, wires=wires)
                )
                available -= wires
                remaining.pop(index)
            else:
                index += 1
        if not exact_wires:
            entries = _widen(entries, bus_width)
        schedule.sessions.append(ScheduledSession(entries=tuple(entries)))
    return model.charge(schedule, charge_config)


def _widen(entries: list[ScheduledEntry],
           bus_width: int) -> list[ScheduledEntry]:
    """Give leftover wires to whichever core bounds the session."""
    current = list(entries)
    while True:
        used = sum(entry.wires for entry in current)
        spare = bus_width - used
        if spare <= 0:
            return current
        # The session is as long as its slowest entry; widening anyone
        # else is useless.
        slowest = max(range(len(current)), key=lambda i: current[i].cycles)
        entry = current[slowest]
        if (entry.wires >= entry.params.max_wires
                or entry.params.fixed_cycles is not None):
            return current
        improved = ScheduledEntry(params=entry.params, wires=entry.wires + 1)
        if improved.cycles >= entry.cycles:
            return current
        current[slowest] = improved


def schedule_exhaustive(
    cores: Sequence[CoreTestParams],
    bus_width: int,
    *,
    charge_config: bool = True,
    cas_policy: str | None = "all",
    max_cores: int = 6,
) -> Schedule:
    """Optimal schedule by partition enumeration (small instances only).

    Wire splits inside each candidate session come from
    :meth:`~repro.schedule.model.CostModel.optimal_session`, so only
    the set partitions are enumerated.
    """
    if len(cores) > max_cores:
        raise ScheduleError(
            f"{len(cores)} cores exceed the exhaustive limit {max_cores}"
        )
    model = cost_model(cores, bus_width, cas_policy)
    best: Schedule | None = None
    for partition in _set_partitions(list(cores)):
        candidate = model.schedule_from_groups(
            partition, charge_config=charge_config
        )
        if candidate is None:
            continue
        if best is None or candidate.total_cycles < best.total_cycles:
            best = candidate
    assert best is not None  # singleton partition is always feasible
    return best


def _set_partitions(items: list):
    """All partitions of a list into non-empty groups."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _set_partitions(rest):
        for index in range(len(partition)):
            yield (partition[:index]
                   + [[first] + partition[index]]
                   + partition[index + 1:])
        yield [[first]] + partition


def lower_bound(cores: Sequence[CoreTestParams], bus_width: int) -> int:
    """Test-cycle lower bound: work conservation vs widest core."""
    return CostModel(TamProblem.of(cores, bus_width)).lower_bound()
