"""Session scheduling: pack core tests onto N bus wires over time.

This is the rectangle-packing view of TAM scheduling (cores are
rectangles: wires x time).  The CAS-BUS reconfigures between sessions,
so the scheduler's job is to choose session groups and per-core wire
counts minimising total time, configuration overhead included.

Algorithms:

* :func:`schedule_greedy` -- sort by single-wire test time, open a
  session around the biggest unscheduled core at its best useful
  width, fill leftover wires with the next cores, iterate.  Then a
  local improvement pass widens cores into idle wires.
* :func:`schedule_exhaustive` -- optimal over all session partitions
  and wire splits for small instances (tests and ablations).
* :func:`lower_bound` -- max of the work-conservation bound and the
  widest-core bound; used to sanity-check schedule quality.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ScheduleError
from repro.soc.core import CoreTestParams
from repro.schedule.timing import (
    cas_config_bits,
    config_cycles,
    core_test_cycles,
)


@dataclass(frozen=True)
class ScheduledEntry:
    """One core inside one session."""

    params: CoreTestParams
    wires: int

    @property
    def cycles(self) -> int:
        return core_test_cycles(self.params, self.wires)


@dataclass(frozen=True)
class ScheduledSession:
    """A group of cores tested concurrently."""

    entries: tuple[ScheduledEntry, ...]

    @property
    def wires_used(self) -> int:
        return sum(entry.wires for entry in self.entries)

    @property
    def cycles(self) -> int:
        return max((entry.cycles for entry in self.entries), default=0)

    def names(self) -> list[str]:
        return [entry.params.name for entry in self.entries]


@dataclass
class Schedule:
    """A complete test program in the abstract timing model."""

    bus_width: int
    sessions: list[ScheduledSession] = field(default_factory=list)
    config_cycles_total: int = 0

    @property
    def test_cycles(self) -> int:
        return sum(session.cycles for session in self.sessions)

    @property
    def total_cycles(self) -> int:
        return self.test_cycles + self.config_cycles_total

    def describe(self) -> str:
        lines = [
            f"schedule on N={self.bus_width}: {len(self.sessions)} sessions, "
            f"{self.test_cycles} test + {self.config_cycles_total} config "
            f"cycles"
        ]
        for index, session in enumerate(self.sessions):
            entries = ", ".join(
                f"{e.params.name}(w={e.wires},t={e.cycles})"
                for e in session.entries
            )
            lines.append(
                f"  s{index}: [{entries}] -> {session.cycles} cycles"
            )
        return "\n".join(lines)


def _useful_wires(params: CoreTestParams, available: int) -> int:
    """Widest allocation that still helps (capped by the core's P)."""
    return max(1, min(available, params.max_wires))


def session_config_cost(
    all_cores: Sequence[CoreTestParams],
    bus_width: int,
    tested: Sequence[CoreTestParams],
    cas_policy: str | None = "all",
) -> int:
    """Config cost of one session in the abstract model.

    One stage-A pass (splice) and one stage-B pass with the tested
    cores' WIRs spliced -- matching the executor's protocol.  Shared
    by every strategy that charges per-session configuration (greedy,
    exhaustive, balanced-lpt), so the formula cannot drift between
    them.
    """
    cas_bits = sum(
        cas_config_bits(bus_width, min(core.max_wires, bus_width),
                        cas_policy)
        for core in all_cores
    )
    wir_bits = 3 * len(tested)
    return config_cycles(cas_bits) + config_cycles(cas_bits + wir_bits)


def schedule_greedy(
    cores: Sequence[CoreTestParams],
    bus_width: int,
    *,
    charge_config: bool = True,
    exact_wires: bool = False,
    cas_policy: str | None = "all",
) -> Schedule:
    """Greedy session packing with a widening improvement pass.

    ``exact_wires=True`` allocates every core exactly ``max_wires``
    (its P): a CAS in TEST mode always switches P wires, so executable
    plans are rigid; elastic allocation models design-time freedom in
    the chain count (trade-off experiments).  ``cas_policy`` sets the
    instruction-register sizing rule for configuration costs
    (``None`` = the designer rule of
    :func:`repro.core.instruction.practical_policy`).
    """
    if bus_width < 1:
        raise ScheduleError(f"bus width must be >= 1, got {bus_width}")
    if exact_wires:
        for core in cores:
            if core.max_wires > bus_width:
                raise ScheduleError(
                    f"{core.name}: P={core.max_wires} exceeds bus "
                    f"width {bus_width}"
                )

    def allocation(params: CoreTestParams, available: int) -> int:
        if exact_wires:
            return params.max_wires
        return _useful_wires(params, available)

    remaining = sorted(
        cores,
        key=lambda c: -core_test_cycles(c, 1),
    )
    schedule = Schedule(bus_width=bus_width)
    while remaining:
        available = bus_width
        entries: list[ScheduledEntry] = []
        # Anchor: the longest core, as wide as useful.
        anchor = remaining.pop(0)
        anchor_wires = allocation(anchor, available)
        entries.append(ScheduledEntry(params=anchor, wires=anchor_wires))
        available -= anchor_wires
        # Fill: next-longest cores that still fit.
        index = 0
        while index < len(remaining) and available > 0:
            candidate = remaining[index]
            wires = allocation(candidate, available)
            if wires <= available:
                entries.append(
                    ScheduledEntry(params=candidate, wires=wires)
                )
                available -= wires
                remaining.pop(index)
            else:
                index += 1
        if not exact_wires:
            entries = _widen(entries, bus_width)
        schedule.sessions.append(ScheduledSession(entries=tuple(entries)))
    if charge_config:
        schedule.config_cycles_total = sum(
            session_config_cost(cores, bus_width,
                                [e.params for e in session.entries],
                                cas_policy)
            for session in schedule.sessions
        )
    return schedule


def _widen(entries: list[ScheduledEntry],
           bus_width: int) -> list[ScheduledEntry]:
    """Give leftover wires to whichever core bounds the session."""
    current = list(entries)
    while True:
        used = sum(entry.wires for entry in current)
        spare = bus_width - used
        if spare <= 0:
            return current
        # The session is as long as its slowest entry; widening anyone
        # else is useless.
        slowest = max(range(len(current)), key=lambda i: current[i].cycles)
        entry = current[slowest]
        if (entry.wires >= entry.params.max_wires
                or entry.params.fixed_cycles is not None):
            return current
        improved = ScheduledEntry(params=entry.params, wires=entry.wires + 1)
        if improved.cycles >= entry.cycles:
            return current
        current[slowest] = improved


def schedule_exhaustive(
    cores: Sequence[CoreTestParams],
    bus_width: int,
    *,
    charge_config: bool = True,
    max_cores: int = 6,
) -> Schedule:
    """Optimal schedule by enumeration (small instances only)."""
    if len(cores) > max_cores:
        raise ScheduleError(
            f"{len(cores)} cores exceed the exhaustive limit {max_cores}"
        )
    best: Schedule | None = None
    for partition in _set_partitions(list(cores)):
        sessions: list[ScheduledSession] = []
        feasible = True
        for group in partition:
            session = _best_session(group, bus_width)
            if session is None:
                feasible = False
                break
            sessions.append(session)
        if not feasible:
            continue
        candidate = Schedule(bus_width=bus_width, sessions=sessions)
        if charge_config:
            candidate.config_cycles_total = sum(
                session_config_cost(cores, bus_width,
                                    [e.params for e in s.entries])
                for s in sessions
            )
        if best is None or candidate.total_cycles < best.total_cycles:
            best = candidate
    assert best is not None  # singleton partition is always feasible
    return best


def _best_session(group: list[CoreTestParams],
                  bus_width: int) -> ScheduledSession | None:
    """Optimal wire split for one concurrent group, or None if unfit."""
    if sum(1 for _ in group) > bus_width:
        return None
    options = [
        range(1, min(core.max_wires, bus_width) + 1) for core in group
    ]
    best: ScheduledSession | None = None
    for split in itertools.product(*options):
        if sum(split) > bus_width:
            continue
        entries = tuple(
            ScheduledEntry(params=core, wires=wires)
            for core, wires in zip(group, split)
        )
        session = ScheduledSession(entries=entries)
        if best is None or session.cycles < best.cycles:
            best = session
    return best


def _set_partitions(items: list):
    """All partitions of a list into non-empty groups."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _set_partitions(rest):
        for index in range(len(partition)):
            yield (partition[:index]
                   + [[first] + partition[index]]
                   + partition[index + 1:])
        yield [[first]] + partition


def lower_bound(cores: Sequence[CoreTestParams], bus_width: int) -> int:
    """Test-cycle lower bound: work conservation vs widest core."""
    work = 0
    widest = 0
    for core in cores:
        best_time = core_test_cycles(core, bus_width)
        widest = max(widest, best_time)
        wires = min(core.max_wires, bus_width)
        work += best_time * wires
    return max(widest, math.ceil(work / bus_width))
