"""Test scheduling over the CAS-BUS.

Quantifies the section 4 claims: test time as a function of bus width,
scan-chain balancing, session reconfiguration, and concurrent
(maintenance) test.  Works over abstract
:class:`~repro.soc.core.CoreTestParams` so it scales to ITC'02-sized
workloads, while the timing formulas are validated cycle-for-cycle
against the behavioural simulator on small SoCs.
"""

from repro.schedule.timing import (
    cas_config_bits,
    config_cycles,
    core_test_cycles,
    scan_test_cycles,
    session_config_cycles,
)
from repro.schedule.balance import (
    balanced_lengths,
    partition_lpt,
    partition_optimal,
)
from repro.schedule.assign import assign_wires
from repro.schedule.model import (
    CostModel,
    Schedule,
    ScheduledEntry,
    ScheduledSession,
    TamProblem,
    cost_model,
    two_stage_config_cycles,
)
from repro.schedule.scheduler import (
    lower_bound,
    schedule_exhaustive,
    schedule_greedy,
)
from repro.schedule.optimize import (
    OptimizeOutcome,
    ParetoPoint,
    candidate_widths,
    co_optimize,
    default_anneal_budget,
    optimize_anneal,
    optimize_bnb,
    pareto_front,
)
from repro.schedule.portfolio import PortfolioSpec, optimize_portfolio
from repro.schedule.seeds import SeedStream, as_seed_stream
from repro.schedule.reconfig import ReconfigComparison, compare_reconfiguration
from repro.schedule.concurrent import maintenance_session

__all__ = [
    "CostModel",
    "TamProblem",
    "cost_model",
    "two_stage_config_cycles",
    "OptimizeOutcome",
    "ParetoPoint",
    "PortfolioSpec",
    "SeedStream",
    "as_seed_stream",
    "candidate_widths",
    "co_optimize",
    "default_anneal_budget",
    "optimize_anneal",
    "optimize_bnb",
    "optimize_portfolio",
    "pareto_front",
    "cas_config_bits",
    "config_cycles",
    "core_test_cycles",
    "scan_test_cycles",
    "session_config_cycles",
    "balanced_lengths",
    "partition_lpt",
    "partition_optimal",
    "assign_wires",
    "Schedule",
    "ScheduledEntry",
    "ScheduledSession",
    "lower_bound",
    "schedule_exhaustive",
    "schedule_greedy",
    "ReconfigComparison",
    "compare_reconfiguration",
    "maintenance_session",
]
