"""Wire assignment: turning abstract wire *counts* into concrete bus
wire *indices* for one session.

The CAS supports every injective wire-to-port mapping, so any disjoint
index choice works; contiguous ranges are used for readability of
reports and traces.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ScheduleError
from repro.sim.plan import CoreAssignment, flat_assignment


def assign_wires(
    requests: Sequence[tuple[str, int]],
    bus_width: int,
) -> dict[str, tuple[int, ...]]:
    """Allocate disjoint wire index ranges for one session.

    Args:
        requests: ``(core_name, wire_count)`` pairs.
        bus_width: total wires available.

    Returns:
        core name -> tuple of wire indices (contiguous, ascending).
    """
    total = sum(count for _, count in requests)
    if total > bus_width:
        names = [name for name, _ in requests]
        raise ScheduleError(
            f"session needs {total} wires for {names} but the bus has "
            f"{bus_width}"
        )
    result: dict[str, tuple[int, ...]] = {}
    cursor = 0
    for name, count in requests:
        if count < 1:
            raise ScheduleError(f"{name}: wire count must be >= 1")
        result[name] = tuple(range(cursor, cursor + count))
        cursor += count
    return result


def session_assignments(
    wire_map: Mapping[str, tuple[int, ...]],
) -> list[CoreAssignment]:
    """Wrap an assign_wires result into executor-ready assignments
    (top-level cores only)."""
    return [
        flat_assignment(name, wires) for name, wires in wire_map.items()
    ]
