"""The scheduling problem IR and the one cost model.

Every scheduling policy in :mod:`repro.schedule` answers the same
question -- how long does it take to test these cores through an
N-wire CAS-BUS, reconfiguration included -- but historically each
algorithm kept its own copy of the cycle bookkeeping (wire
normalisation in the greedy packer, configuration-pass maths in the
preemptive scheduler, another copy in the reconfiguration study).
This module is the single source of truth they all migrated onto:

* :class:`TamProblem` -- the immutable problem statement: the cores,
  the pin budget N, and the CAS instruction-sizing policy;
* :class:`CostModel` -- test- and config-cycle accounting for one
  problem, memoised so optimisers can evaluate thousands of candidate
  schedules cheaply;
* the schedule IR (:class:`ScheduledEntry`, :class:`ScheduledSession`,
  :class:`Schedule`) every session-based policy emits.

The raw closed-form timing primitives stay in
:mod:`repro.schedule.timing`; this layer owns everything built from
them (session costs, schedule costs, bounds, optimal wire splits), so
the formula for, say, a two-stage configuration pass exists exactly
once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ScheduleError
from repro.obs.metrics import Counter
from repro.soc.core import CoreTestParams
from repro.schedule.timing import (
    cas_config_bits,
    config_cycles,
    core_test_cycles,
)

#: Wrapper instruction register width spliced per tested core (stage B).
WIR_WIDTH = 3


# -- schedule IR --------------------------------------------------------------


@dataclass(frozen=True)
class ScheduledEntry:
    """One core inside one session."""

    params: CoreTestParams
    wires: int

    @property
    def cycles(self) -> int:
        return core_test_cycles(self.params, self.wires)


@dataclass(frozen=True)
class ScheduledSession:
    """A group of cores tested concurrently."""

    entries: tuple[ScheduledEntry, ...]

    @property
    def wires_used(self) -> int:
        return sum(entry.wires for entry in self.entries)

    @property
    def cycles(self) -> int:
        return max((entry.cycles for entry in self.entries), default=0)

    def names(self) -> list[str]:
        return [entry.params.name for entry in self.entries]


@dataclass
class Schedule:
    """A complete test program in the abstract timing model."""

    bus_width: int
    sessions: list[ScheduledSession] = field(default_factory=list)
    config_cycles_total: int = 0

    @property
    def test_cycles(self) -> int:
        return sum(session.cycles for session in self.sessions)

    @property
    def total_cycles(self) -> int:
        return self.test_cycles + self.config_cycles_total

    def describe(self) -> str:
        lines = [
            f"schedule on N={self.bus_width}: {len(self.sessions)} sessions, "
            f"{self.test_cycles} test + {self.config_cycles_total} config "
            f"cycles"
        ]
        for index, session in enumerate(self.sessions):
            entries = ", ".join(
                f"{e.params.name}(w={e.wires},t={e.cycles})"
                for e in session.entries
            )
            lines.append(
                f"  s{index}: [{entries}] -> {session.cycles} cycles"
            )
        return "\n".join(lines)


# -- configuration-pass primitive ---------------------------------------------


def two_stage_config_cycles(
    cas_bits: int,
    num_wir_changes: int,
    *,
    wir_width: int = WIR_WIDTH,
    wir_bits: int | None = None,
    stage_a_always: bool = True,
) -> int:
    """Cycle cost of the executor's two-stage session configuration.

    Stage A (splice) is one chain pass over all CAS registers; stage B
    is another pass with ``num_wir_changes`` WIR registers spliced in
    (``wir_width`` bits each, or exactly ``wir_bits`` total when the
    caller knows the real register widths).  The abstract schedulers
    charge stage A unconditionally (every session re-splices); the
    behavioural executor skips it when no wrapper instruction changes
    -- ``stage_a_always=False`` models that.  This is the one copy of
    the formula; schedulers, the reconfiguration study and the
    simulator-side predictor all call it.
    """
    if wir_bits is None:
        wir_bits = num_wir_changes * wir_width
    total = 0
    if stage_a_always or num_wir_changes:
        total += config_cycles(cas_bits)
    total += config_cycles(cas_bits + wir_bits)
    return total


# -- problem IR ---------------------------------------------------------------


@dataclass(frozen=True)
class TamProblem:
    """One TAM scheduling problem: cores on an N-wire bus under a policy.

    Attributes:
        cores: the abstract core test parameters.
        bus_width: pin budget N.
        cas_policy: instruction-register sizing rule charged per CAS
            (``None`` = the designer rule of
            :func:`repro.core.instruction.practical_policy`).
    """

    cores: tuple[CoreTestParams, ...]
    bus_width: int
    cas_policy: str | None = "all"

    def __post_init__(self) -> None:
        if self.bus_width < 1:
            raise ScheduleError(
                f"bus width must be >= 1, got {self.bus_width}"
            )

    @classmethod
    def of(
        cls,
        cores: Sequence[CoreTestParams],
        bus_width: int,
        cas_policy: str | None = "all",
    ) -> "TamProblem":
        """Normalise any core sequence into a problem."""
        return cls(cores=tuple(cores), bus_width=bus_width,
                   cas_policy=cas_policy)

    def with_width(self, bus_width: int) -> "TamProblem":
        """The same cores and policy on a different pin budget."""
        return TamProblem(cores=self.cores, bus_width=bus_width,
                          cas_policy=self.cas_policy)


class CostModel:
    """Test- and config-cycle accounting for one :class:`TamProblem`.

    All costs are memoised: optimisers evaluate thousands of candidate
    sessions against one model, and the CAS register-bit total (which
    needs the instruction-count closed forms) is computed once instead
    of once per session.
    """

    def __init__(self, problem: TamProblem) -> None:
        self.problem = problem
        self._core_cycles: dict[tuple[CoreTestParams, int], int] = {}
        self._cas_bits: int | None = None
        # Instance-scoped obs counters, deliberately NOT registry-
        # routed: the reported stats must be a pure function of the
        # work *this* model did (the portfolio CI gate diffs them
        # across --jobs 1 vs --jobs 4), never of global obs state.
        self._hits = Counter()
        self._misses = Counter()

    # -- width normalisation (the one copy) --------------------------------

    @staticmethod
    def useful_wires(params: CoreTestParams, available: int) -> int:
        """Widest allocation that still helps (capped by the core's P)."""
        return max(1, min(available, params.max_wires))

    @staticmethod
    def effective_wires(params: CoreTestParams, wires: int) -> int:
        """The wires a core actually exploits from an allocation."""
        return max(1, min(wires, params.max_wires))

    def port_width(self, params: CoreTestParams) -> int:
        """The P of the core's CAS on this bus (never exceeds N)."""
        return min(params.max_wires, self.problem.bus_width)

    # -- test-cycle accounting ---------------------------------------------

    def core_cycles(self, params: CoreTestParams, wires: int) -> int:
        """Memoised :func:`repro.schedule.timing.core_test_cycles`."""
        key = (params, self.effective_wires(params, wires))
        cached = self._core_cycles.get(key)
        if cached is None:
            cached = core_test_cycles(params, key[1])
            self._core_cycles[key] = cached
            self._misses.inc()
        else:
            self._hits.inc()
        return cached

    def stats(self) -> dict:
        """Memoisation effectiveness counters (JSON-ready).

        A view over the model's :class:`repro.obs.metrics.Counter`
        instances: ``hits``/``misses`` count :meth:`core_cycles`
        lookups; ``entries`` is the resident cache size.  Surfaced by
        ``repro optimize --json`` so cache sharing is observable
        rather than assumed.
        """
        return {
            "hits": self._hits.value,
            "misses": self._misses.value,
            "entries": len(self._core_cycles),
        }

    def session_cycles(
        self, allocation: Iterable[tuple[CoreTestParams, int]]
    ) -> int:
        """Makespan of one concurrent group under a wire allocation."""
        return max(
            (self.core_cycles(params, wires)
             for params, wires in allocation),
            default=0,
        )

    # -- config-cycle accounting -------------------------------------------

    @property
    def cas_bits(self) -> int:
        """Total CAS instruction-register bits on the configuration
        chain (one CAS per core at its port width), computed once."""
        if self._cas_bits is None:
            self._cas_bits = sum(
                cas_config_bits(self.problem.bus_width,
                                self.port_width(core),
                                self.problem.cas_policy)
                for core in self.problem.cores
            )
        return self._cas_bits

    @property
    def config_bits(self) -> int:
        """The DfT configuration footprint (Pareto axis): CAS bits."""
        return self.cas_bits

    def session_config_cycles(self, num_tested: int) -> int:
        """Config cost of one session: stage A + stage B with
        ``num_tested`` wrapper instruction registers spliced."""
        return two_stage_config_cycles(self.cas_bits, num_tested)

    def boundary_config_cycles(self) -> int:
        """Per-boundary cost of a preemptive reconfiguration (at least
        the started/stopped core's wrapper is spliced)."""
        return self.session_config_cycles(1)

    def schedule_config_cycles(self, sessions) -> int:
        """Total config cost of a session list (charged per session)."""
        return sum(
            self.session_config_cycles(len(session.entries))
            for session in sessions
        )

    def charge(self, schedule: Schedule,
               charge_config: bool = True) -> Schedule:
        """Stamp the schedule's config total from this model."""
        schedule.config_cycles_total = (
            self.schedule_config_cycles(schedule.sessions)
            if charge_config else 0
        )
        return schedule

    # -- bounds -------------------------------------------------------------

    def lower_bound(self) -> int:
        """Test-cycle lower bound: work conservation vs widest core.

        The work term credits each core its *minimum* wires-times-time
        area over every legal allocation.  (Crediting full-width time
        times full width -- the seed formula -- over-counts the
        per-pattern capture cycle, which does not shrink with width:
        narrow allocations then legitimately beat the "bound".  The
        exact optimisers find exactly those allocations, so the bound
        must be sound.)
        """
        work = 0
        widest = 0
        for core in self.problem.cores:
            widest = max(
                widest, self.core_cycles(core, self.problem.bus_width)
            )
            work += min(
                wires * self.core_cycles(core, wires)
                for wires in range(1, self.port_width(core) + 1)
            )
        return max(widest, math.ceil(work / self.problem.bus_width))

    # -- optimal wire split of one concurrent group ------------------------

    def optimal_session(
        self, group: Sequence[CoreTestParams]
    ) -> ScheduledSession | None:
        """Minimum-makespan wire split for one group, or ``None``.

        Parametric search: makespans are drawn from the finite set of
        per-core cycle counts, feasibility (can every core reach the
        target makespan within N wires) is monotone in the target, so
        a binary search over the candidate values finds the optimum
        without enumerating wire splits.  Equivalent to -- and
        replaces -- exhaustive split enumeration.
        """
        width = self.problem.bus_width
        if len(group) > width:
            return None  # every core needs at least one wire
        if not group:
            return None
        # cycles_at[c][w-1]: cycles of core c on w wires (nonincreasing).
        cycles_at: list[list[int]] = []
        floors: list[int] = []
        for core in group:
            limit = self.port_width(core)
            row = [self.core_cycles(core, w) for w in range(1, limit + 1)]
            cycles_at.append(row)
            floors.append(row[-1])
        lowest = max(floors)  # no split beats every core's own floor

        def min_wires(target: int) -> int | None:
            """Fewest wires meeting ``target`` everywhere, or None."""
            total = 0
            for row in cycles_at:
                if row[-1] > target:
                    return None
                # First (narrowest) allocation achieving the target;
                # rows are short (<= N), linear scan beats bisect setup.
                for wires0, cycles in enumerate(row):
                    if cycles <= target:
                        total += wires0 + 1
                        break
            return total

        # Non-empty: the row owning the max floor contributes ``lowest``.
        candidates = sorted(
            {value for row in cycles_at for value in row if value >= lowest}
        )
        lo, hi = 0, len(candidates) - 1
        best_target: int | None = None
        while lo <= hi:
            mid = (lo + hi) // 2
            needed = min_wires(candidates[mid])
            if needed is not None and needed <= width:
                best_target = candidates[mid]
                hi = mid - 1
            else:
                lo = mid + 1
        if best_target is None:
            return None
        entries = []
        for core, row in zip(group, cycles_at):
            for wires0, cycles in enumerate(row):
                if cycles <= best_target:
                    entries.append(
                        ScheduledEntry(params=core, wires=wires0 + 1)
                    )
                    break
        return ScheduledSession(entries=tuple(entries))

    def schedule_from_groups(
        self,
        groups: Iterable[Sequence[CoreTestParams]],
        *,
        charge_config: bool = True,
    ) -> Schedule | None:
        """Build a schedule from a session partition (optimal splits).

        Returns ``None`` when any group cannot fit on the bus.
        """
        sessions = []
        for group in groups:
            session = self.optimal_session(group)
            if session is None:
                return None
            sessions.append(session)
        schedule = Schedule(bus_width=self.problem.bus_width,
                            sessions=sessions)
        return self.charge(schedule, charge_config)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CostModel(N={self.problem.bus_width}, "
                f"{len(self.problem.cores)} cores, "
                f"policy={self.problem.cas_policy!r})")


def cost_model(
    cores: Sequence[CoreTestParams],
    bus_width: int,
    cas_policy: str | None = "all",
) -> CostModel:
    """Convenience: a :class:`CostModel` straight from the arguments."""
    return CostModel(TamProblem.of(cores, bus_width, cas_policy))
