"""Deterministic seed streams for stochastic schedule searches.

Every randomised search in :mod:`repro.schedule` -- the annealer's
restarts, the portfolio's genetic and large-neighbourhood workers --
must be reproducible for a fixed root seed *and* independent of how
the work is distributed: the same ``(seed, strategy, width, restart)``
coordinates must yield the same random stream whether the unit runs
first on one worker or last on eight.  Deriving every stream from one
shared :class:`random.Random` breaks exactly that (the draw order
becomes the schedule), so this module is the one sanctioned way to
mint generators in the scheduling layer; project lint rule ``RL006``
flags any other ``random.Random`` construction under
``repro.schedule``.

A :class:`SeedStream` is an immutable root token.  :meth:`SeedStream.rng`
hashes the root plus a coordinate path into a fresh generator
(CPython seeds string arguments through SHA-512, so the mapping is
stable across processes, platforms and ``PYTHONHASHSEED``);
:meth:`SeedStream.child` prefixes a namespace so independent
subsystems drawing from one root cannot collide.
"""

from __future__ import annotations

import random


class SeedStream:
    """A splittable, order-independent stream of seeded generators."""

    def __init__(self, root: "int | str") -> None:
        self._root = str(root)

    @property
    def root(self) -> str:
        return self._root

    def token(self, *path: "int | str") -> str:
        """The canonical token of one coordinate path."""
        return "/".join((self._root, *(str(part) for part in path)))

    def rng(self, *path: "int | str") -> random.Random:
        """A fresh generator at ``path``, a pure function of
        ``(root, path)`` -- never of draw order or worker count."""
        # RL006: the one sanctioned construction site in repro.schedule.
        return random.Random(self.token(*path))

    def child(self, *path: "int | str") -> "SeedStream":
        """A namespaced sub-stream (independent coordinate space)."""
        return SeedStream(self.token(*path))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SeedStream) and other._root == self._root

    def __hash__(self) -> int:
        return hash((SeedStream, self._root))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedStream({self._root!r})"


def as_seed_stream(seed: "int | str | SeedStream") -> SeedStream:
    """Normalise a seed-or-stream argument (streams pass through)."""
    if isinstance(seed, SeedStream):
        return seed
    return SeedStream(seed)
