"""Preemptive (staircase) scheduling: reconfigure whenever a core
finishes.

Section 4: the CAS-BUS "can be easily modified, even during test
sessions".  Session-based schedules waste wires whenever a short core
shares a session with a long one; the preemptive schedule instead
reallocates a finished core's wires to waiting (or running) cores at
pattern granularity, paying one serial reconfiguration per boundary.

Scan tests are preemptible at pattern boundaries: a partially tested
core resumes with its remaining patterns, possibly on a different wire
count (the chains regroup onto the new wires).  BIST tests run to
completion once started (fixed duration, single wire).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ScheduleError
from repro.soc.core import CoreTestParams
from repro.schedule.model import CostModel, cost_model


@dataclass
class _Job:
    params: CoreTestParams
    remaining_patterns: int
    started: bool = False
    finished: bool = False
    #: Wire count of the previous segment (progress carries over while
    #: it stays constant -- chains hold state through a configuration).
    last_wires: int = 0
    #: Cycles already spent inside the current pattern.
    partial_cycles: int = 0
    #: Cycles left of the final unload once every pattern is loaded
    #: (``None`` = not in the tail phase yet).  A width change during
    #: the tail restarts the unload at the new width (chains regroup,
    #: partial unload progress is lost -- same rule as
    #: ``partial_cycles``), so the count never under-reports.
    tail_left: "int | None" = None

    def chain_length(self, wires: int) -> int:
        effective = CostModel.effective_wires(self.params, wires)
        if self.params.flops == 0:
            return 0
        return math.ceil(self.params.flops / effective)

    def remaining_cycles(self, wires: int) -> int:
        if self.params.fixed_cycles is not None:
            return self.params.fixed_cycles
        if self.tail_left is not None:
            if wires != self.last_wires:
                return self.chain_length(wires)  # unload restarts
            return self.tail_left
        length = self.chain_length(wires)
        tail = length if self.remaining_patterns else 0
        carry = self.partial_cycles if wires == self.last_wires else 0
        return max(
            0, (length + 1) * self.remaining_patterns + tail - carry
        )


@dataclass(frozen=True)
class Segment:
    """One constant-configuration stretch of the preemptive schedule."""

    duration: int
    allocations: tuple[tuple[str, int], ...]  # (core, wires)


@dataclass
class PreemptiveSchedule:
    """Outcome of :func:`schedule_preemptive`."""

    bus_width: int
    segments: list[Segment] = field(default_factory=list)
    config_cycles_total: int = 0

    @property
    def test_cycles(self) -> int:
        return sum(segment.duration for segment in self.segments)

    @property
    def total_cycles(self) -> int:
        return self.test_cycles + self.config_cycles_total

    def describe(self) -> str:
        lines = [
            f"preemptive schedule on N={self.bus_width}: "
            f"{len(self.segments)} segments, {self.test_cycles} test + "
            f"{self.config_cycles_total} config cycles"
        ]
        for index, segment in enumerate(self.segments):
            body = ", ".join(f"{name}(w={w})"
                             for name, w in segment.allocations)
            lines.append(f"  seg{index}: {segment.duration:>8} [{body}]")
        return "\n".join(lines)


def schedule_preemptive(
    cores: Sequence[CoreTestParams],
    bus_width: int,
    *,
    charge_config: bool = True,
    cas_policy: str | None = "all",
) -> PreemptiveSchedule:
    """Event-driven wire reallocation at completion boundaries."""
    model = cost_model(cores, bus_width, cas_policy)
    jobs = [_Job(params=core, remaining_patterns=core.patterns)
            for core in cores]
    for job in jobs:
        if (job.params.fixed_cycles is None
                and job.params.patterns == 0):
            job.finished = True  # nothing to do
    schedule = PreemptiveSchedule(bus_width=bus_width)
    reconfigurations = 0
    while any(not job.finished for job in jobs):
        allocation = _allocate(jobs, bus_width)
        if not allocation:
            raise ScheduleError("no allocatable job (all need > N wires?)")
        reconfigurations += 1
        # Segment runs until the earliest completion.
        duration = min(
            job.remaining_cycles(wires) for job, wires in allocation
        )
        segment = Segment(
            duration=duration,
            allocations=tuple(
                (job.params.name, wires) for job, wires in allocation
            ),
        )
        schedule.segments.append(segment)
        for job, wires in allocation:
            job.started = True
            if job.params.fixed_cycles is not None:
                if duration >= job.params.fixed_cycles:
                    job.finished = True
                else:
                    # BIST is not preemptible: it keeps running into the
                    # next segment with its remaining duration.
                    job.params = CoreTestParams(
                        name=job.params.name,
                        method=job.params.method,
                        flops=job.params.flops,
                        patterns=job.params.patterns,
                        max_wires=job.params.max_wires,
                        fixed_cycles=job.params.fixed_cycles - duration,
                    )
                continue
            if job.tail_left is not None:
                # Final-unload phase: pure cycle countdown; a width
                # change regroups the chains and restarts the unload.
                if wires != job.last_wires:
                    job.tail_left = job.chain_length(wires)
                    job.last_wires = wires
                job.tail_left -= duration
                if job.tail_left <= 0:
                    job.finished = True
                continue
            length = job.chain_length(wires)
            spent = duration
            if wires == job.last_wires:
                spent += job.partial_cycles
            job.last_wires = wires
            full = (length + 1) * job.remaining_patterns + length
            if spent >= full:
                # Every pattern loaded and the tail shifted out.
                job.remaining_patterns = 0
                job.finished = True
                continue
            done_patterns = spent // (length + 1)
            if done_patterns >= job.remaining_patterns:
                # All patterns loaded; the leftover cycles started the
                # final unload (``spent < full`` keeps this positive).
                job.tail_left = full - spent
                job.remaining_patterns = 0
                job.partial_cycles = 0
            else:
                job.partial_cycles = spent % (length + 1)
                job.remaining_patterns -= done_patterns
    if charge_config:
        # At least the started/stopped core's wrapper is spliced.
        schedule.config_cycles_total = (
            reconfigurations * model.boundary_config_cycles()
        )
    return schedule


def _allocate(jobs: list[_Job], bus_width: int) -> list[tuple[_Job, int]]:
    """Wire allocation for the next segment.

    Longest-remaining jobs get a wire first; spare wires then go to
    whichever allocated job currently bounds the segment (the same
    feed-the-bottleneck rule a static designer uses, so the first
    segment is never worse than the static partition).
    """
    pending = [job for job in jobs if not job.finished]
    pending.sort(key=lambda job: -job.remaining_cycles(1))
    allocation: list[tuple[_Job, int]] = [
        (job, 1) for job in pending[:bus_width]
    ]
    available = bus_width - len(allocation)
    while available > 0:
        candidates = [
            index for index, (job, wires) in enumerate(allocation)
            if job.params.fixed_cycles is None
            and wires < job.params.max_wires
        ]
        if not candidates:
            break
        slowest = max(
            candidates,
            key=lambda index: allocation[index][0].remaining_cycles(
                allocation[index][1]
            ),
        )
        job, wires = allocation[slowest]
        allocation[slowest] = (job, wires + 1)
        available -= 1
    return allocation
