"""Maintenance / concurrent test planning (section 4: "it is possible
to test some embedded cores while others are in normal functioning
mode.  This is very useful when, e.g., an embedded memory test is
periodically required").

Builds an executor-ready session that tests a target subset of cores
while every other core's wrapper stays in NORMAL mode, and returns the
paths whose state the executor should verify undisturbed.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ScheduleError
from repro.soc.core import TestMethod
from repro.soc.soc import SocSpec
from repro.sim.plan import SessionPlan, flat_assignment


def maintenance_session(
    soc: SocSpec,
    target_names: Sequence[str],
) -> tuple[SessionPlan, list[tuple[str, ...]]]:
    """Plan a maintenance test of ``target_names``.

    Returns the session plan plus the list of core paths that must
    remain undisturbed (every non-target, non-hierarchical core).

    Raises :class:`~repro.errors.ScheduleError` when the targets cannot
    run concurrently on the SoC's bus.
    """
    if not target_names:
        raise ScheduleError("maintenance test needs at least one target")
    targets = [soc.core_named(name) for name in target_names]
    for core in targets:
        if core.method == TestMethod.HIERARCHICAL:
            raise ScheduleError(
                f"{core.name}: address inner cores of hierarchical "
                f"cores individually"
            )
    needed = sum(core.p for core in targets)
    if needed > soc.bus_width:
        raise ScheduleError(
            f"targets need {needed} wires, bus has {soc.bus_width}; "
            f"split the maintenance test into phases"
        )
    assignments = []
    cursor = 0
    for core in targets:
        wires = tuple(range(cursor, cursor + core.p))
        assignments.append(flat_assignment(core.name, wires))
        cursor += core.p
    plan = SessionPlan(assignments=tuple(assignments), label="maintenance")
    undisturbed = [
        (core.name,)
        for core in soc.cores
        if core.name not in set(target_names)
        and core.method != TestMethod.HIERARCHICAL
    ]
    return plan, undisturbed
