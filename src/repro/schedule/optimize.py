"""Width/session co-optimisation over the CAS-BUS cost model.

The paper's central design argument is that a configurable CAS-BUS
lets the integrator *trade* test time against bus width and DfT area.
This module turns the repro from a calculator into a design-space
explorer: given a workload, it searches for good session partitions at
each candidate bus width and reports the Pareto front of
``(bus width, config bits, total cycles)`` points, so the integrator
reads off exactly what one more wire (and its instruction-register
bits) buys.

Two search engines share the :class:`~repro.schedule.model.CostModel`:

* :func:`optimize_bnb` -- exact branch and bound over session
  partitions, seeded by :func:`~repro.schedule.scheduler.lower_bound`
  and the greedy incumbent.  Provably matches
  :func:`~repro.schedule.scheduler.schedule_exhaustive` total cycles;
  for small SoCs (the partition space is Bell(n)).
* :func:`optimize_anneal` -- simulated annealing over partitions for
  ITC'02-scale workloads, starting from the greedy schedule (so it
  never returns anything worse) and exploring move/swap/merge
  neighbourhoods with exact intra-session wire splits.

Both return an :class:`OptimizeOutcome`: the best
:class:`~repro.schedule.model.Schedule` at the requested width plus
the Pareto front across all candidate widths.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ScheduleError
from repro.soc.core import CoreTestParams
from repro.schedule.model import CostModel, Schedule, TamProblem
from repro.schedule.scheduler import schedule_greedy
from repro.schedule.seeds import SeedStream, as_seed_stream

#: Largest core count the exact branch-and-bound search accepts.  The
#: min-area packing bound plus the config-marginal bound (see
#: :func:`_bnb_session_search`) keep the search tractable well past
#: the old 10-core limit; g1023-class 14-core tables certify in
#: seconds.
BNB_MAX_CORES = 14


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated design point of the co-optimisation.

    Attributes:
        bus_width: pin budget N of this design.
        config_bits: CAS instruction-register bits the design carries
            (the DfT configuration footprint).
        test_cycles: test application time of the best schedule found.
        config_cycles: configuration overhead of that schedule.
        sessions: session count of that schedule.
    """

    bus_width: int
    config_bits: int
    test_cycles: int
    config_cycles: int
    sessions: int

    @property
    def total_cycles(self) -> int:
        return self.test_cycles + self.config_cycles

    def to_dict(self) -> dict:
        """JSON-ready mapping (CLI output, campaign notes)."""
        return {
            "bus_width": self.bus_width,
            "config_bits": self.config_bits,
            "test_cycles": self.test_cycles,
            "config_cycles": self.config_cycles,
            "total_cycles": self.total_cycles,
            "sessions": self.sessions,
        }

    @classmethod
    def from_dict(cls, data) -> "ParetoPoint":
        """Rebuild a point serialized by :meth:`to_dict`.

        The derived ``total_cycles`` key is ignored (it re-derives
        from the stored test and config cycles).
        """
        return cls(
            bus_width=data["bus_width"],
            config_bits=data["config_bits"],
            test_cycles=data["test_cycles"],
            config_cycles=data["config_cycles"],
            sessions=data["sessions"],
        )


@dataclass
class OptimizeOutcome:
    """Result of one width/session co-optimisation run."""

    method: str
    problem: TamProblem
    schedule: Schedule
    pareto: tuple[ParetoPoint, ...]
    evaluations: int = 0
    #: Best schedule found at every candidate width (width -> Schedule).
    schedules: dict = field(default_factory=dict)
    #: Cache-effectiveness counters: ``cost_model`` aggregates
    #: :meth:`repro.schedule.model.CostModel.stats` over the width
    #: sweep; ``evaluations`` counts session-evaluation cache hits and
    #: misses (portfolio runs add the shared-cache ``shipped``/
    #: ``merged`` entry counts).  Purely observational -- identical for
    #: identical searches, whatever the worker count.
    cache_stats: dict = field(default_factory=dict)

    @property
    def test_cycles(self) -> int:
        return self.schedule.test_cycles

    @property
    def config_cycles(self) -> int:
        return self.schedule.config_cycles_total

    @property
    def total_cycles(self) -> int:
        return self.schedule.total_cycles

    def describe(self) -> str:
        lines = [
            f"{self.method} on N={self.problem.bus_width}: "
            f"{self.total_cycles} total cycles "
            f"({self.evaluations} session evaluations), "
            f"{len(self.pareto)}-point Pareto front"
        ]
        for point in self.pareto:
            marker = " *" if point.bus_width == self.problem.bus_width \
                else ""
            lines.append(
                f"  N={point.bus_width:>3}  config_bits="
                f"{point.config_bits:>4}  total={point.total_cycles:>8}"
                f"  ({point.sessions} sessions){marker}"
            )
        lines.append(self.schedule.describe())
        return "\n".join(lines)


def candidate_widths(bus_width: int) -> tuple[int, ...]:
    """Default width sweep: powers of two up to and including N."""
    if bus_width < 1:
        raise ScheduleError(f"bus width must be >= 1, got {bus_width}")
    widths = {bus_width}
    width = 1
    while width < bus_width:
        widths.add(width)
        width *= 2
    return tuple(sorted(widths))


def pareto_front(points: Sequence[ParetoPoint]) -> tuple[ParetoPoint, ...]:
    """The non-dominated subset, sorted by bus width.

    A point dominates another when it is no worse on every axis
    (bus width, config bits, total cycles) and strictly better on at
    least one.
    """

    def dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
        no_worse = (a.bus_width <= b.bus_width
                    and a.config_bits <= b.config_bits
                    and a.total_cycles <= b.total_cycles)
        better = (a.bus_width < b.bus_width
                  or a.config_bits < b.config_bits
                  or a.total_cycles < b.total_cycles)
        return no_worse and better

    front = [
        point for point in points
        if not any(dominates(other, point) for other in points)
    ]
    # Duplicate-coordinate survivors collapse to one representative.
    seen: set[tuple[int, int, int]] = set()
    unique = []
    for point in sorted(front, key=lambda p: (p.bus_width, p.total_cycles)):
        key = (point.bus_width, point.config_bits, point.total_cycles)
        if key not in seen:
            seen.add(key)
            unique.append(point)
    return tuple(unique)


# -- shared search plumbing ---------------------------------------------------


class _PartitionSearch:
    """Session-partition search state shared by every engine.

    Holds the memoised group -> optimal-session cache; groups are
    tuples of sorted core indices.  ``warm`` pre-seeds the cache from
    a snapshot (the portfolio ships the driver's merged cache to its
    workers at fork); entries computed locally accumulate in
    ``delta`` so workers can send just their news back.
    """

    def __init__(self, model: CostModel, charge_config: bool,
                 warm: "dict | None" = None) -> None:
        self.model = model
        self.charge_config = charge_config
        self.cores = model.problem.cores
        self.width = model.problem.bus_width
        self.evaluations = 0
        self.hits = 0
        self._session_cycles: dict[tuple[int, ...], int] = (
            dict(warm) if warm else {}
        )
        self.delta: dict[tuple[int, ...], int] = {}
        self._min_area: dict[int, int] = {}

    def group_cycles(self, key: tuple[int, ...]) -> int:
        """Makespan of one group under its optimal wire split."""
        cached = self._session_cycles.get(key)
        if cached is None:
            group = [self.cores[index] for index in key]
            session = self.model.optimal_session(group)
            assert session is not None  # callers keep |group| <= width
            cached = session.cycles
            self._session_cycles[key] = cached
            self.delta[key] = cached
            self.evaluations += 1
        else:
            self.hits += 1
        return cached

    def snapshot(self) -> "dict[tuple[int, ...], int]":
        """A picklable copy of the evaluation cache (warm start)."""
        return dict(self._session_cycles)

    def min_core_area(self, index: int) -> int:
        """Smallest wires-times-time area of one core (memoised).

        The admissible per-core work term of the packing bound: no
        legal allocation tests the core in less bus area.
        """
        cached = self._min_area.get(index)
        if cached is None:
            core = self.cores[index]
            limit = self.model.port_width(core)
            cached = min(
                wires * self.model.core_cycles(core, wires)
                for wires in range(1, limit + 1)
            )
            self._min_area[index] = cached
        return cached

    def config_of(self, group_sizes) -> int:
        if not self.charge_config:
            return 0
        return sum(
            self.model.session_config_cycles(size) for size in group_sizes
        )

    def partition_total(self, groups: Sequence[tuple[int, ...]]) -> int:
        test = sum(self.group_cycles(group) for group in groups)
        return test + self.config_of(len(group) for group in groups)

    def build_schedule(
        self, groups: Sequence[tuple[int, ...]]
    ) -> Schedule:
        schedule = self.model.schedule_from_groups(
            ([self.cores[index] for index in group] for group in groups),
            charge_config=self.charge_config,
        )
        assert schedule is not None
        return schedule

    def floor_total(self) -> int:
        """Admissible all-in lower bound used for early exit."""
        floor = self.model.lower_bound()
        if self.charge_config and self.cores:
            # At least one session configures every tested core once.
            floor += self.model.session_config_cycles(len(self.cores))
        return floor


# -- exact search -------------------------------------------------------------


#: Core count above which the exact search tightens its incumbent
#: with a short deterministic anneal before descending (pruning aid
#: only -- the optimum is unaffected).
_BNB_ANNEAL_INCUMBENT_ABOVE = 10


def _bnb_session_search(search: _PartitionSearch) -> Schedule:
    """Best-partition branch and bound at one width.

    Cores are assigned in descending single-wire-time order; each core
    either joins an existing group (canonical partition enumeration,
    no symmetric duplicates) or opens a new one.  A node is cut when
    no completion can beat the incumbent under two admissible bounds:

    * the **min-area packing bound**: the committed session makespans
      only grow, and whatever area of the remaining cores does not fit
      into the committed sessions' slack (``width x makespan`` minus
      the area already packed there) must be paid across the N wires;
      a remaining core taller than every committed session stretches
      the test time by at least the difference, whichever session it
      lands in;
    * the **config-marginal bound**: every unassigned core splices at
      least the cheapest stage-B increment into some session's
      configuration pass (opening a new session costs strictly more).

    The incumbent starts at greedy; above
    :data:`_BNB_ANNEAL_INCUMBENT_ABOVE` cores a short fixed-seed
    anneal tightens it first, which prunes most of the exponential
    tail on g1023-class tables.  Together these push exact reach from
    ~10 to ~14-16 cores.
    """
    model = search.model
    cores = search.cores
    width = search.width
    if not cores:
        return Schedule(bus_width=width)
    incumbent = schedule_greedy(
        cores, width,
        charge_config=search.charge_config,
        cas_policy=model.problem.cas_policy,
    )
    best_total = incumbent.total_cycles
    best_groups: list[tuple[int, ...]] | None = None
    if len(cores) > _BNB_ANNEAL_INCUMBENT_ABOVE:
        rng = SeedStream("bnb-incumbent").rng(width)
        annealed_total, annealed_groups = _anneal_from(
            search, rng, 400 + 80 * len(cores), _greedy_groups(search)
        )
        if annealed_total < best_total:
            best_total = annealed_total
            best_groups = list(annealed_groups)
    floor = search.floor_total()
    if best_total <= floor:
        if best_groups is None:
            return incumbent  # greedy already meets the lower bound
        return search.build_schedule(best_groups)
    order = sorted(
        range(len(cores)), key=lambda i: -model.core_cycles(cores[i], 1)
    )
    count = len(order)
    # Suffix sums/maxima over the not-yet-assigned tail, by position.
    remaining_area = [0] * (count + 1)
    tallest_remaining = [0] * (count + 1)
    for position in range(count - 1, -1, -1):
        index = order[position]
        remaining_area[position] = (
            remaining_area[position + 1] + search.min_core_area(index)
        )
        tallest_remaining[position] = max(
            tallest_remaining[position + 1],
            model.core_cycles(cores[index], width),
        )
    if search.charge_config:
        scc = model.session_config_cycles
        config_marginal = min(
            [scc(1)]
            + [scc(size + 1) - scc(size) for size in range(1, count)]
        )
        config_marginal = max(0, config_marginal)
    else:
        config_marginal = 0
    groups: list[list[int]] = []

    def descend(position: int, partial_test: int,
                assigned_area: int, tallest: int) -> None:
        nonlocal best_total, best_groups
        config_now = search.config_of(len(group) for group in groups)
        if position == count:
            total = partial_test + config_now
            if total < best_total:
                best_total = total
                best_groups = [tuple(sorted(group)) for group in groups]
            return
        # Admissible completion bound (see docstring).
        slack = width * partial_test - assigned_area
        overflow = remaining_area[position] - slack
        packed = partial_test + (
            -(-overflow // width) if overflow > 0 else 0
        )
        stretch = partial_test + max(
            0, tallest_remaining[position] - tallest
        )
        bound = max(packed, stretch) + config_now \
            + (count - position) * config_marginal
        if bound >= best_total:
            return
        core = order[position]
        area = search.min_core_area(core)
        for group in groups:
            if len(group) >= width:
                continue
            before = search.group_cycles(tuple(sorted(group)))
            group.append(core)
            after = search.group_cycles(tuple(sorted(group)))
            descend(
                position + 1,
                partial_test - before + after,
                assigned_area + area,
                max(tallest, after),
            )
            group.pop()
        groups.append([core])
        solo = search.group_cycles((core,))
        descend(
            position + 1,
            partial_test + solo,
            assigned_area + area,
            max(tallest, solo),
        )
        groups.pop()

    descend(0, 0, 0, 0)
    if best_groups is None:
        return incumbent  # greedy was already optimal
    return search.build_schedule(best_groups)


def optimize_bnb(
    cores: Sequence[CoreTestParams],
    bus_width: int,
    *,
    widths: "Sequence[int] | None" = None,
    charge_config: bool = True,
    cas_policy: str | None = "all",
    max_cores: int = BNB_MAX_CORES,
) -> OptimizeOutcome:
    """Exact width/session co-optimisation (small SoCs).

    Runs the branch-and-bound session search at every candidate width
    and assembles the Pareto front.  Raises
    :class:`~repro.errors.ScheduleError` beyond ``max_cores`` -- use
    :func:`optimize_anneal` there.
    """
    if len(cores) > max_cores:
        raise ScheduleError(
            f"{len(cores)} cores exceed the branch-and-bound limit "
            f"{max_cores}; use optimize-anneal for large SoCs"
        )
    return _co_optimize(
        "optimize-bnb",
        cores,
        bus_width,
        widths=widths,
        charge_config=charge_config,
        cas_policy=cas_policy,
        engine=_bnb_session_search,
    )


# -- annealed search ----------------------------------------------------------


def _greedy_groups(search: _PartitionSearch) -> list[list[int]]:
    """The greedy schedule's session partition as core-index groups.

    The common start of every local search: beginning from greedy (and
    only ever keeping the best partition seen) makes every engine
    never-worse-than-greedy by construction.
    """
    cores = search.cores
    greedy = schedule_greedy(
        cores, search.width,
        charge_config=search.charge_config,
        cas_policy=search.model.problem.cas_policy,
    )
    index_of = {id(core): index for index, core in enumerate(cores)}
    return [
        [index_of[id(entry.params)] for entry in session.entries]
        for session in greedy.sessions
    ]


def _anneal_from(
    search: _PartitionSearch,
    rng: random.Random,
    iterations: int,
    start_groups: Sequence[Sequence[int]],
    *,
    temperature_scale: float = 1.0,
) -> "tuple[int, list[tuple[int, ...]]]":
    """Simulated annealing over session partitions at one width.

    Starts from ``start_groups`` (the greedy partition for plain
    restarts, a previous round's best for portfolio continuations) and
    explores move/swap neighbourhoods with Metropolis acceptance,
    returning ``(best_total, best_groups)`` -- never worse than the
    start.  ``temperature_scale`` diversifies portfolio restarts: hot
    schedules roam, cold ones polish.
    """
    model = search.model
    groups: list[list[int]] = [list(group) for group in start_groups]
    current = search.partition_total(
        [tuple(sorted(group)) for group in groups]
    )
    best_total = current
    best_groups = [tuple(sorted(group)) for group in groups]
    floor = search.floor_total()
    if best_total <= floor:
        return best_total, best_groups
    temperature = max(1.0, 0.05 * current * temperature_scale)
    cooling = (0.01 / temperature) ** (1.0 / max(1, iterations)) \
        if temperature > 0.01 else 1.0

    def group_total(group: list[int]) -> int:
        key = tuple(sorted(group))
        total = search.group_cycles(key)
        if search.charge_config:
            total += model.session_config_cycles(len(key))
        return total

    for _ in range(iterations):
        temperature *= cooling
        if len(groups) == 1 and len(groups[0]) == 1:
            break  # nothing left to move
        move_swap = rng.random() < 0.3 and len(groups) >= 2
        if move_swap:
            a, b = rng.sample(range(len(groups)), 2)
            ia = rng.randrange(len(groups[a]))
            ib = rng.randrange(len(groups[b]))
            before = group_total(groups[a]) + group_total(groups[b])
            groups[a][ia], groups[b][ib] = groups[b][ib], groups[a][ia]
            after = group_total(groups[a]) + group_total(groups[b])
            delta = after - before
            if delta > 0 and (temperature <= 0
                              or rng.random() >= math.exp(
                                  -delta / temperature)):
                groups[a][ia], groups[b][ib] = (
                    groups[b][ib], groups[a][ia]
                )  # revert
                continue
            current += delta
        else:
            source = rng.randrange(len(groups))
            item = rng.randrange(len(groups[source]))
            # Target: another group with a free wire, or a new session.
            open_targets = [
                index for index, group in enumerate(groups)
                if index != source and len(group) < search.width
            ]
            new_session = (not open_targets) or rng.random() < 0.25
            before = group_total(groups[source])
            core = groups[source].pop(item)
            emptied = not groups[source]
            if new_session:
                after = (0 if emptied else group_total(groups[source])) \
                    + group_total([core])
                delta = after - before
                accept = delta <= 0 or (
                    temperature > 0
                    and rng.random() < math.exp(-delta / temperature)
                )
                if not accept:
                    groups[source].insert(item, core)
                    continue
                if emptied:
                    del groups[source]
                groups.append([core])
                current += delta
            else:
                target = rng.choice(open_targets)
                before += group_total(groups[target])
                groups[target].append(core)
                after = (0 if emptied else group_total(groups[source])) \
                    + group_total(groups[target])
                delta = after - before
                accept = delta <= 0 or (
                    temperature > 0
                    and rng.random() < math.exp(-delta / temperature)
                )
                if not accept:
                    groups[target].pop()
                    groups[source].insert(item, core)
                    continue
                if emptied:
                    del groups[source]
                current += delta
        if current < best_total:
            best_total = current
            best_groups = [tuple(sorted(group)) for group in groups]
            if best_total <= floor:
                break
    return best_total, best_groups


def default_anneal_budget(num_cores: int) -> int:
    """The per-width move budget one anneal start gets by default."""
    return 600 + 200 * num_cores


def optimize_anneal(
    cores: Sequence[CoreTestParams],
    bus_width: int,
    *,
    widths: "Sequence[int] | None" = None,
    charge_config: bool = True,
    cas_policy: str | None = "all",
    seed: int = 0,
    iterations: "int | None" = None,
    restarts: int = 1,
    seeds: "SeedStream | None" = None,
) -> OptimizeOutcome:
    """Annealed width/session co-optimisation (ITC'02 scale).

    Every random choice flows from an explicit
    :class:`~repro.schedule.seeds.SeedStream` (``seeds``, defaulting
    to ``SeedStream(seed)``): restart ``r`` at width ``w`` draws its
    generator at the fixed coordinates ``("anneal", w, r)``, so the
    result is a pure function of ``(seed, restarts)`` -- identical
    however the restarts are distributed over workers, which is what
    makes portfolio runs reproducible across ``--jobs`` values.
    ``restarts`` keeps the best of that many independent anneals per
    width; ``iterations=None`` scales each restart's move budget with
    the core count.
    """
    if restarts < 1:
        raise ScheduleError(f"restarts must be >= 1, got {restarts}")
    budget = iterations if iterations is not None \
        else default_anneal_budget(len(cores))
    stream = seeds if seeds is not None else as_seed_stream(seed)

    def engine(search: _PartitionSearch) -> Schedule:
        if not search.cores:
            return Schedule(bus_width=search.width)
        start = _greedy_groups(search)
        best: "tuple[int, list[tuple[int, ...]]] | None" = None
        for restart in range(restarts):
            rng = stream.rng("anneal", search.width, restart)
            result = _anneal_from(search, rng, budget, start)
            if best is None or result[0] < best[0]:
                best = result
        assert best is not None
        return search.build_schedule(best[1])

    return _co_optimize(
        "optimize-anneal",
        cores,
        bus_width,
        widths=widths,
        charge_config=charge_config,
        cas_policy=cas_policy,
        engine=engine,
    )


def co_optimize(
    cores: Sequence[CoreTestParams],
    bus_width: int,
    *,
    method: str = "auto",
    widths: "Sequence[int] | None" = None,
    charge_config: bool = True,
    cas_policy: str | None = "all",
    seed: int = 0,
    iterations: "int | None" = None,
    restarts: int = 1,
    seeds: "SeedStream | None" = None,
    portfolio: object = None,
    jobs: int = 1,
    budget: "int | None" = None,
    progress: "Callable | None" = None,
) -> OptimizeOutcome:
    """Dispatch to the right engine: exact when feasible, annealed
    beyond :data:`BNB_MAX_CORES` (``method="auto"``), or the parallel
    multi-start portfolio (``method="portfolio"``, or any ``portfolio``
    spec / ``jobs > 1``).

    ``portfolio`` accepts a
    :class:`~repro.schedule.portfolio.PortfolioSpec`, a sequence of
    strategy names, or ``True`` for the default spec; ``jobs`` fans
    the portfolio's search units over that many worker processes
    (never changing the result), and ``budget`` caps its total
    per-width move budget.
    """
    if method == "auto":
        if portfolio is not None or jobs > 1:
            method = "portfolio"
        else:
            method = "bnb" if len(cores) <= BNB_MAX_CORES else "anneal"
    if method in ("bnb", "optimize-bnb"):
        return optimize_bnb(
            cores, bus_width, widths=widths,
            charge_config=charge_config, cas_policy=cas_policy,
        )
    if method in ("anneal", "optimize-anneal"):
        return optimize_anneal(
            cores, bus_width, widths=widths,
            charge_config=charge_config, cas_policy=cas_policy,
            seed=seed, iterations=iterations,
            restarts=restarts, seeds=seeds,
        )
    if method in ("portfolio", "optimize-portfolio"):
        from repro.schedule.portfolio import (
            PortfolioSpec,
            optimize_portfolio,
        )

        spec = portfolio
        if spec is None or spec is True:
            spec = PortfolioSpec()
        elif not isinstance(spec, PortfolioSpec):
            spec = PortfolioSpec.of(spec)
        return optimize_portfolio(
            cores, bus_width, widths=widths,
            charge_config=charge_config, cas_policy=cas_policy,
            seed=seed, seeds=seeds, spec=spec,
            jobs=jobs, budget=budget, progress=progress,
        )
    raise ScheduleError(
        f"unknown optimisation method {method!r}; "
        f"known: auto, bnb, anneal, portfolio"
    )


def _co_optimize(
    method: str,
    cores: Sequence[CoreTestParams],
    bus_width: int,
    *,
    widths: "Sequence[int] | None",
    charge_config: bool,
    cas_policy: str | None,
    engine: Callable[[_PartitionSearch], Schedule],
) -> OptimizeOutcome:
    """Run ``engine`` at every candidate width, assemble the front."""
    problem = TamProblem.of(cores, bus_width, cas_policy)
    sweep = set(widths) if widths else set(candidate_widths(bus_width))
    sweep.add(bus_width)
    for width in sweep:
        if width < 1:
            raise ScheduleError(f"bus width must be >= 1, got {width}")
    points: list[ParetoPoint] = []
    schedules: dict[int, Schedule] = {}
    evaluations = 0
    model_stats = {"hits": 0, "misses": 0, "entries": 0}
    search_stats = {"hits": 0, "misses": 0}
    for width in sorted(sweep):
        model = CostModel(problem.with_width(width))
        search = _PartitionSearch(model, charge_config)
        schedule = engine(search)
        evaluations += search.evaluations
        search_stats["hits"] += search.hits
        search_stats["misses"] += search.evaluations
        for key, value in model.stats().items():
            model_stats[key] = model_stats.get(key, 0) + value
        schedules[width] = schedule
        points.append(ParetoPoint(
            bus_width=width,
            config_bits=model.config_bits,
            test_cycles=schedule.test_cycles,
            config_cycles=schedule.config_cycles_total,
            sessions=len(schedule.sessions),
        ))
    return OptimizeOutcome(
        method=method,
        problem=problem,
        schedule=schedules[bus_width],
        pareto=pareto_front(points),
        evaluations=evaluations,
        schedules=schedules,
        cache_stats={
            "cost_model": model_stats,
            "evaluations": search_stats,
        },
    )
