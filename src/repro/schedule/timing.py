"""Test-time formulas.

The classic scan-test timing (load/unload pipelined across patterns):

    T = (L + 1) * V + L      cycles

with ``L`` the longest chain among the wires used and ``V`` the pattern
count -- exactly what the behavioural session executor measures, which
the integration tests assert.

Configuration cost: one serial chain reload is ``(sum of register
widths) + 1`` cycles.  Per the paper this "does not affect the test
time, since the ... configuration will only occur once at the beginning
of a SoC testing session" -- but every *re*-configuration pays it again,
so the reconfiguration experiment charges it explicitly.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import ScheduleError
from repro.core.instruction import instruction_count, register_width
from repro.soc.core import CoreTestParams


def scan_test_cycles(max_chain_length: int, patterns: int) -> int:
    """Pipelined scan time: ``(L + 1) * V + L``."""
    if max_chain_length < 0 or patterns < 0:
        raise ScheduleError("negative scan parameters")
    if patterns == 0:
        return 0
    return (max_chain_length + 1) * patterns + max_chain_length


def core_test_cycles(params: CoreTestParams, wires: int) -> int:
    """Test time of one core given a wire allocation.

    Scan cores rebalance their ``flops`` across ``min(wires,
    max_wires)`` chains (the paper's "the test programmer can balance
    the length of the scan chains"); BIST cores take their fixed
    duration regardless of wires.
    """
    if wires < 1:
        raise ScheduleError(f"{params.name}: needs at least one wire")
    if params.fixed_cycles is not None:
        return params.fixed_cycles
    effective = min(wires, params.max_wires)
    if effective < 1:
        raise ScheduleError(f"{params.name}: max_wires must be >= 1")
    longest = math.ceil(params.flops / effective) if params.flops else 0
    return scan_test_cycles(longest, params.patterns)


def core_test_cycles_fixed_chains(
    chain_lengths: Sequence[int],
    wires: int,
    patterns: int,
) -> int:
    """Test time when chains are frozen (no rebalancing).

    Chains are grouped onto ``wires`` bus wires (longest-processing-time
    heuristic); the longest wire-load dominates.  This is the
    "unbalanced" side of experiment C2.
    """
    from repro.schedule.balance import partition_lpt

    if not chain_lengths:
        return 0
    wires = min(wires, len(chain_lengths))
    loads = partition_lpt(chain_lengths, wires).loads
    return scan_test_cycles(max(loads), patterns)


def cas_config_bits(n: int, p: int, policy: str | None = "all") -> int:
    """Instruction register width k of one (N, P) CAS (closed form).

    ``policy=None`` applies the designer rule
    :func:`repro.core.instruction.practical_policy`.
    """
    from repro.core.instruction import practical_policy

    if policy is None:
        policy = practical_policy(n, p)
    return register_width(instruction_count(n, p, policy))


def config_cycles(total_register_bits: int) -> int:
    """One serial configuration pass: shift everything + update."""
    if total_register_bits < 0:
        raise ScheduleError("negative register bits")
    return total_register_bits + 1


def session_config_cycles(
    all_cas_np: Iterable[tuple[int, int]],
    num_mode_changes: int,
    wir_width: int = 3,
) -> int:
    """Cycle cost of the executor's two-stage session configuration.

    Args:
        all_cas_np: ``(bus_width, p)`` of every CAS on the chain,
            including hierarchical inner CASes (whose bus width is the
            inner one).
        num_mode_changes: wrappers whose instruction changes this
            session (spliced in stage B).
        wir_width: wrapper instruction register width.

    Stage A (splice): one chain pass over all CAS registers -- only
    needed when any wrapper instruction changes.  Stage B: another pass
    with ``num_mode_changes`` WIR registers spliced in.

    Mirrors :class:`repro.sim.session.SessionExecutor`; the integration
    suite asserts exact agreement on simulated SoCs.  The two-stage
    formula itself lives in
    :func:`repro.schedule.model.two_stage_config_cycles` (shared with
    every scheduler and the simulator-side predictor).
    """
    from repro.schedule.model import two_stage_config_cycles

    cas_bits = sum(cas_config_bits(n, p) for n, p in all_cas_np)
    return two_stage_config_cycles(
        cas_bits, num_mode_changes,
        wir_width=wir_width, stage_a_always=False,
    )
