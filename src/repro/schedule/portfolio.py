"""Parallel multi-start optimizer portfolio over a shared cost cache.

:func:`~repro.schedule.optimize.optimize_anneal` is a single-start
local search: good on ITC'02-scale tables, but one trajectory through
an exponential partition space.  This module runs a *portfolio* of
seeded search units -- anneal restarts on a ladder of temperature
schedules, a genetic/crossover search over session partitions, and a
large-neighbourhood destroy-and-repair strategy -- and fans them over
a process pool, all sharing one memoised evaluation cache:

* the driver keeps a per-width ``group -> optimal-session-makespan``
  cache in a :class:`repro.sim.cache.BoundedCache`;
* at each round it ships a warm snapshot to every worker (so no worker
  re-evaluates what any earlier unit already priced);
* workers accumulate only their *new* entries
  (:attr:`~repro.schedule.optimize._PartitionSearch.delta`) and the
  driver merges the deltas back between rounds, in sorted unit order.

Determinism is the design invariant, not an afterthought: every unit
draws its generator from fixed :class:`~repro.schedule.seeds.SeedStream`
coordinates ``(strategy, width, variant, round)``, units are merged at
a round barrier in a fixed order, and ``jobs=1`` runs the *identical*
:func:`_run_unit` code path -- so the
:class:`~repro.schedule.optimize.OptimizeOutcome` is a pure function
of ``(problem, spec, seed, budget)``, byte-identical for any ``jobs``.
The cache only ever changes how fast an answer arrives, never which
answer arrives (group makespans are pure functions of the group).

Small problems stay *certified*: when the core count is within
:attr:`PortfolioSpec.exact_limit`, the spec automatically adds one
exact branch-and-bound unit per width, so the portfolio provably
matches :func:`~repro.schedule.optimize.optimize_bnb` there.  Every
stochastic unit starts from (or continues) a never-worse-than-greedy
partition, so the portfolio inherits the greedy floor everywhere.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ScheduleError
from repro.obs.metrics import gauge as obs_gauge
from repro.obs.metrics import histogram as obs_histogram
from repro.obs.spans import span as obs_span
from repro.sim.cache import BoundedCache
from repro.soc.core import CoreTestParams
from repro.schedule.model import CostModel, Schedule, TamProblem
from repro.schedule.optimize import (
    OptimizeOutcome,
    ParetoPoint,
    _PartitionSearch,
    _anneal_from,
    _bnb_session_search,
    _greedy_groups,
    candidate_widths,
    default_anneal_budget,
    pareto_front,
)
from repro.schedule.seeds import SeedStream, as_seed_stream

#: Strategy names a :class:`PortfolioSpec` accepts.
STRATEGY_NAMES = ("anneal", "genetic", "lns")

#: Temperature scales cycled over anneal variants: unit 0 polishes at
#: the stock schedule, later variants roam hotter or quench colder.
_TEMPERATURE_LADDER = (1.0, 0.3, 2.5, 5.0, 0.6, 1.5)

#: Reserved strategy key of the auto-added exact unit (not user-
#: selectable; present only when the problem is within exact reach).
_EXACT = "bnb"


@dataclass(frozen=True)
class PortfolioSpec:
    """Shape of one portfolio run (what searches, how many, how long).

    Attributes:
        strategies: stochastic strategy mix, drawn from
            :data:`STRATEGY_NAMES`.
        starts: independent variants per strategy per width (variant
            ``v`` seeds at coordinate ``v`` and, for anneal, picks its
            temperature scale from the ladder).
        rounds: synchronisation rounds; each round restarts every unit
            from the portfolio-wide best partition found so far, with
            the merged evaluation cache shipped warm.
        exact_limit: largest core count at which one exact
            branch-and-bound unit per width is added automatically,
            certifying optimality.
        iterations: per-unit move budget override (``None`` scales
            with the core count via
            :func:`~repro.schedule.optimize.default_anneal_budget`).
        cache_entries: capacity of each per-width shared evaluation
            cache (an LRU bound, purely a memory cap -- eviction can
            never change results, only recomputation cost).
    """

    strategies: tuple = STRATEGY_NAMES
    starts: int = 2
    rounds: int = 2
    exact_limit: int = 10
    iterations: "int | None" = None
    cache_entries: int = 65536

    def __post_init__(self) -> None:
        object.__setattr__(self, "strategies", tuple(self.strategies))
        unknown = [
            name for name in self.strategies if name not in STRATEGY_NAMES
        ]
        if unknown or not self.strategies:
            raise ScheduleError(
                f"unknown portfolio strategies {unknown!r}; "
                f"known: {', '.join(STRATEGY_NAMES)}"
            )
        if self.starts < 1:
            raise ScheduleError(f"starts must be >= 1, got {self.starts}")
        if self.rounds < 1:
            raise ScheduleError(f"rounds must be >= 1, got {self.rounds}")
        if self.iterations is not None and self.iterations < 1:
            raise ScheduleError(
                f"iterations must be >= 1, got {self.iterations}"
            )

    @classmethod
    def of(cls, value: object) -> "PortfolioSpec":
        """Normalise a spec-ish value: a spec passes through, a string
        or sequence of strategy names selects that mix."""
        if isinstance(value, PortfolioSpec):
            return value
        if isinstance(value, str):
            names = tuple(
                part.strip() for part in value.split(",") if part.strip()
            )
            return cls(strategies=names)
        if isinstance(value, (list, tuple)):
            return cls(strategies=tuple(value))
        raise ScheduleError(
            f"cannot build a PortfolioSpec from {value!r}; pass a "
            f"PortfolioSpec, a strategy name string, or a sequence"
        )

    def units(self, num_cores: int) -> "list[tuple[str, int]]":
        """The per-width unit grid as ``(strategy, variant)`` pairs.

        The exact unit, when the problem is within reach, leads the
        list so its certificate is merged first every round.
        """
        if num_cores < 1:
            return []  # nothing to search
        grid: "list[tuple[str, int]]" = []
        if num_cores <= self.exact_limit:
            grid.append((_EXACT, 0))
        for strategy in self.strategies:
            for variant in range(self.starts):
                grid.append((strategy, variant))
        return grid


# -- partition utilities shared by the stochastic strategies ------------------


def _canon(groups: Sequence[Sequence[int]]) -> "tuple[tuple[int, ...], ...]":
    """Canonical (order-free, hashable, picklable) partition form."""
    return tuple(sorted(tuple(sorted(group)) for group in groups))


def _schedule_groups(
    search: _PartitionSearch, schedule: Schedule
) -> "tuple[tuple[int, ...], ...]":
    """A schedule's session partition as canonical core-index groups."""
    index_of = {id(core): i for i, core in enumerate(search.cores)}
    return _canon([
        [index_of[id(entry.params)] for entry in session.entries]
        for session in schedule.sessions
    ])


def _repair(
    search: _PartitionSearch,
    groups: "list[list[int]]",
    leftovers: Sequence[int],
) -> "list[list[int]]":
    """Greedy best-insertion repair: place each leftover core where it
    raises the partition total least (or open a new session)."""
    model = search.model
    charge = search.charge_config

    def config(size: int) -> int:
        return model.session_config_cycles(size) if charge else 0

    for core in leftovers:
        best_delta = search.group_cycles((core,)) + config(1)
        best_index = -1
        for index, group in enumerate(groups):
            if len(group) >= search.width:
                continue
            key = tuple(sorted(group))
            before = search.group_cycles(key) + config(len(group))
            grown = tuple(sorted(group + [core]))
            after = search.group_cycles(grown) + config(len(grown))
            if after - before < best_delta:
                best_delta = after - before
                best_index = index
        if best_index < 0:
            groups.append([core])
        else:
            groups[best_index].append(core)
    return groups


def _mutate(
    search: _PartitionSearch,
    rng: random.Random,
    groups: "list[list[int]]",
) -> "list[list[int]]":
    """One random partition move: relocate a core (or isolate it)."""
    if not groups or (len(groups) == 1 and len(groups[0]) == 1):
        return groups
    source = rng.randrange(len(groups))
    item = rng.randrange(len(groups[source]))
    core = groups[source].pop(item)
    if not groups[source]:
        del groups[source]
    targets = [
        index for index, group in enumerate(groups)
        if len(group) < search.width
    ]
    if targets and rng.random() < 0.75:
        groups[rng.choice(targets)].append(core)
    else:
        groups.append([core])
    return groups


# -- the stochastic strategies ------------------------------------------------


def _strategy_anneal(
    search: _PartitionSearch,
    rng: random.Random,
    budget: int,
    start_groups: "list[list[int]]",
    variant: int,
) -> "tuple[int, tuple[tuple[int, ...], ...]]":
    """Anneal restart at this variant's rung of the temperature ladder."""
    scale = _TEMPERATURE_LADDER[variant % len(_TEMPERATURE_LADDER)]
    total, groups = _anneal_from(
        search, rng, budget, start_groups, temperature_scale=scale
    )
    return total, _canon(groups)


def _strategy_genetic(
    search: _PartitionSearch,
    rng: random.Random,
    budget: int,
    start_groups: "list[list[int]]",
    variant: int,
) -> "tuple[int, tuple[tuple[int, ...], ...]]":
    """Steady-state genetic search over session partitions.

    Individuals are canonical partitions; crossover keeps intact,
    non-overlapping sessions from both parents and greedily repairs
    the rest, so children inherit whole co-scheduling decisions rather
    than scrambled assignments.
    """
    base = _canon(start_groups)
    population: "list[tuple[int, tuple[tuple[int, ...], ...]]]" = [
        (search.partition_total(base), base)
    ]
    pop_size = 6
    for _ in range(pop_size - 1):
        mutant = _canon(_mutate(
            search, rng, [list(group) for group in base]
        ))
        population.append((search.partition_total(mutant), mutant))
    best = min(population)
    sessions = max(1, len(base))
    children = max(8, budget // sessions)
    for _ in range(children):
        if len(population) >= 2:
            first, second = rng.sample(range(len(population)), 2)
        else:
            first = second = 0
        pool = (
            [list(group) for group in population[first][1]]
            + [list(group) for group in population[second][1]]
        )
        rng.shuffle(pool)
        taken: "set[int]" = set()
        child: "list[list[int]]" = []
        for group in pool:
            if len(group) <= search.width and taken.isdisjoint(group):
                child.append(list(group))
                taken.update(group)
        leftovers = [
            index for index in range(len(search.cores))
            if index not in taken
        ]
        rng.shuffle(leftovers)
        child = _repair(search, child, leftovers)
        if rng.random() < 0.5:
            child = _mutate(search, rng, child)
        entry = (search.partition_total(_canon(child)), _canon(child))
        worst = max(range(len(population)),
                    key=lambda i: population[i][0])
        if entry[0] < population[worst][0]:
            population[worst] = entry
        if entry < best:
            best = entry
    return best


def _strategy_lns(
    search: _PartitionSearch,
    rng: random.Random,
    budget: int,
    start_groups: "list[list[int]]",
    variant: int,
) -> "tuple[int, tuple[tuple[int, ...], ...]]":
    """Large-neighbourhood search: destroy a random core subset, repair
    by greedy best-insertion (tallest victims first), accept sideways
    moves, occasionally accept uphill to escape basins."""
    num_cores = len(search.cores)
    current = [list(group) for group in start_groups]
    current_total = search.partition_total(_canon(current))
    best = (current_total, _canon(current))
    destroy = max(2, min(8, num_cores // 4 + variant))
    destroy = min(destroy, num_cores)
    rounds = max(4, budget // max(1, 3 * destroy))
    for _ in range(rounds):
        victims = rng.sample(range(num_cores), destroy)
        victim_set = set(victims)
        stripped = []
        for group in current:
            kept = [core for core in group if core not in victim_set]
            if kept:
                stripped.append(kept)
        victims.sort(key=lambda index: -search.min_core_area(index))
        candidate = _repair(search, stripped, victims)
        total = search.partition_total(_canon(candidate))
        if total <= current_total or rng.random() < 0.1:
            current = candidate
            current_total = total
            entry = (total, _canon(candidate))
            if entry < best:
                best = entry
    return best


_STRATEGIES: "dict[str, Callable]" = {
    "anneal": _strategy_anneal,
    "genetic": _strategy_genetic,
    "lns": _strategy_lns,
}


# -- the worker ---------------------------------------------------------------


def _run_unit(payload: dict) -> dict:
    """Run one search unit (module-level so process pools can pickle).

    The payload is self-contained -- cores, width, warm cache
    snapshot, seed token, start partition, budget -- so the unit
    computes the same answer in-process (``jobs=1``) or in a forked
    worker, first or last, on any machine.
    """
    problem = TamProblem.of(
        payload["cores"], payload["width"], payload["cas_policy"]
    )
    model = CostModel(problem)
    search = _PartitionSearch(
        model, payload["charge_config"], warm=payload["warm"]
    )
    start = payload["start"]
    start_groups = (
        _greedy_groups(search) if start is None
        else [list(group) for group in start]
    )
    strategy = payload["strategy"]
    if strategy == _EXACT:
        groups = _schedule_groups(search, _bnb_session_search(search))
        result = (search.partition_total(groups), groups)
    else:
        rng = SeedStream(payload["seed_token"]).rng(payload["round"])
        result = _STRATEGIES[strategy](
            search, rng, payload["budget"], start_groups,
            payload["variant"],
        )
        baseline = (search.partition_total(_canon(start_groups)),
                    _canon(start_groups))
        if baseline < result:  # floor: never worse than the start
            result = baseline
    return {
        "total": result[0],
        "groups": result[1],
        "delta": search.delta,
        "hits": search.hits,
        "misses": search.evaluations,
        "model_stats": model.stats(),
    }


# -- the driver ---------------------------------------------------------------


def optimize_portfolio(
    cores: Sequence[CoreTestParams],
    bus_width: int,
    *,
    widths: "Sequence[int] | None" = None,
    charge_config: bool = True,
    cas_policy: "str | None" = "all",
    seed: int = 0,
    seeds: "SeedStream | None" = None,
    spec: "PortfolioSpec | None" = None,
    jobs: int = 1,
    budget: "int | None" = None,
    progress: "Callable | None" = None,
) -> OptimizeOutcome:
    """Multi-start portfolio co-optimisation (the parallel engine).

    Runs :meth:`PortfolioSpec.units` seeded search units per candidate
    width for :attr:`PortfolioSpec.rounds` rounds, fanning each
    round's units over ``jobs`` worker processes and merging their
    evaluation-cache deltas at the round barrier.  ``budget`` caps the
    *total* per-width move budget (split evenly across stochastic
    units and rounds); ``progress`` receives one JSON-ready dict per
    completed unit, in deterministic order.

    The outcome is a pure function of
    ``(cores, widths, spec, seed, budget)`` -- ``jobs`` only changes
    wall-clock time, never the result (see the module docstring for
    why), which is what lets CI diff ``--jobs 1`` against
    ``--jobs 4`` byte for byte.
    """
    if jobs < 1:
        raise ScheduleError(f"jobs must be >= 1, got {jobs}")
    if budget is not None and budget < 1:
        raise ScheduleError(f"budget must be >= 1, got {budget}")
    spec = spec if spec is not None else PortfolioSpec()
    problem = TamProblem.of(cores, bus_width, cas_policy)
    cores = problem.cores
    sweep = set(widths) if widths else set(candidate_widths(bus_width))
    sweep.add(bus_width)
    for width in sweep:
        if width < 1:
            raise ScheduleError(f"bus width must be >= 1, got {width}")
    sweep = sorted(sweep)
    stream = (seeds if seeds is not None
              else as_seed_stream(seed)).child("portfolio")
    grid = spec.units(len(cores))
    stochastic = sum(1 for strategy, _ in grid if strategy != _EXACT)
    per_unit = (spec.iterations if spec.iterations is not None
                else default_anneal_budget(len(cores)))
    if budget is not None:
        per_unit = max(1, budget // max(1, stochastic * spec.rounds))
    caches: "dict[int, BoundedCache]" = {
        width: BoundedCache(spec.cache_entries, name=f"portfolio_w{width}")
        for width in sweep
    }
    best: "dict[int, tuple[int, tuple[tuple[int, ...], ...]]]" = {}
    shipped = merged = hits = misses = 0
    model_stats = {"hits": 0, "misses": 0, "entries": 0}
    rounds = spec.rounds if cores else 0
    for round_index in range(rounds):
        payloads = []
        for width in sweep:
            warm = dict(caches[width].items())
            start = best[width][1] if width in best else None
            for strategy, variant in grid:
                if strategy == _EXACT and round_index > 0:
                    continue  # the certificate does not improve
                payloads.append({
                    "cores": cores,
                    "width": width,
                    "cas_policy": cas_policy,
                    "charge_config": charge_config,
                    "warm": warm,
                    "start": start,
                    "strategy": strategy,
                    "variant": variant,
                    "round": round_index,
                    "budget": per_unit,
                    "seed_token": stream.token(strategy, width, variant),
                })
        shipped += sum(len(payload["warm"]) for payload in payloads)
        with obs_span(
            "portfolio.round",
            round=round_index,
            units=len(payloads),
            workers=min(jobs, max(len(payloads), 1)),
        ) as round_span:
            if jobs == 1 or len(payloads) == 1:
                results = [_run_unit(payload) for payload in payloads]
            else:
                workers = min(jobs, len(payloads))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    results = list(pool.map(_run_unit, payloads))
            # Round barrier: merge every unit's news in payload order
            # (fixed, jobs-independent), then update the incumbents.
            with obs_span("portfolio.merge") as merge_span:
                round_merged = 0
                for payload, result in zip(payloads, results):
                    width = payload["width"]
                    cache = caches[width]
                    for key in sorted(result["delta"]):
                        if key not in cache:
                            merged += 1
                            round_merged += 1
                        cache.put(key, result["delta"][key])
                    hits += result["hits"]
                    misses += result["misses"]
                    for name, value in result["model_stats"].items():
                        model_stats[name] = model_stats.get(name, 0) + value
                    obs_histogram("portfolio.unit_evaluations").observe(
                        result["misses"]
                    )
                    candidate = (result["total"], result["groups"])
                    if width not in best or candidate < best[width]:
                        best[width] = candidate
                    if progress is not None:
                        progress({
                            "round": round_index,
                            "width": width,
                            "strategy": payload["strategy"],
                            "variant": payload["variant"],
                            "total": result["total"],
                            "best": best[width][0],
                            "evaluations": result["misses"],
                        })
                merge_span.set(entries=round_merged)
            round_span.set(shipped=shipped, merged=merged)
            for width in sweep:
                if width in best:
                    obs_gauge(f"portfolio.best_w{width}").set(
                        best[width][0]
                    )
    points: "list[ParetoPoint]" = []
    schedules: "dict[int, Schedule]" = {}
    for width in sweep:
        model = CostModel(problem.with_width(width))
        if cores:
            search = _PartitionSearch(
                model, charge_config, warm=dict(caches[width].items())
            )
            schedule = search.build_schedule(best[width][1])
        else:
            schedule = Schedule(bus_width=width)
        schedules[width] = schedule
        points.append(ParetoPoint(
            bus_width=width,
            config_bits=model.config_bits,
            test_cycles=schedule.test_cycles,
            config_cycles=schedule.config_cycles_total,
            sessions=len(schedule.sessions),
        ))
    certified = (
        list(sweep) if cores and len(cores) <= spec.exact_limit else []
    )
    return OptimizeOutcome(
        method="optimize-portfolio",
        problem=problem,
        schedule=schedules[bus_width],
        pareto=pareto_front(points),
        evaluations=misses,
        schedules=schedules,
        cache_stats={
            "cost_model": model_stats,
            "evaluations": {"hits": hits, "misses": misses},
            "shared_cache": {"shipped": shipped, "merged": merged},
            "certified_widths": certified,
        },
    )
