"""Equivalence checking between a netlist and a Python reference model.

The CAS generator is trusted only because every generated netlist can be
checked against the behavioural CAS: for small input spaces the check is
exhaustive, otherwise it uses seeded random two-valued stimulation.  Both
paths go through the same comparison, and a mismatch raises
:class:`~repro.errors.VerificationError` carrying the offending stimulus
so failures reproduce.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Sequence

from repro import values as lv
from repro.errors import VerificationError
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import NetlistSimulator

#: Exhaustive enumeration is used up to this many binary input patterns.
EXHAUSTIVE_PATTERN_LIMIT = 4096


def check_combinational_equivalence(
    netlist: Netlist,
    reference: Callable[[dict[str, int]], dict[str, int]],
    input_nets: Sequence[str],
    output_nets: Sequence[str],
    *,
    state: dict[str, int] | None = None,
    samples: int = 512,
    seed: int = 2000,
) -> int:
    """Compare a combinational netlist against a reference function.

    Args:
        netlist: design under verification (must be purely combinational
            with respect to the listed ports; state elements may exist but
            are not clocked during the check).
        reference: maps an input assignment to the expected outputs.
            Expected values may include ``Z``/``X``; comparison is exact.
        input_nets: the primary inputs to stimulate.
        output_nets: the outputs to compare.
        state: optional sequential-cell contents to load first (e.g. the
            active instruction held in a CAS update stage).
        samples: random patterns when the space is too large to enumerate.
        seed: RNG seed for the random path.

    Returns:
        The number of patterns checked.

    Raises:
        VerificationError: on the first mismatching pattern.
    """
    sim = NetlistSimulator(netlist)
    if state:
        sim.load_state(state)
    width = len(input_nets)
    total = 1 << width
    if total <= EXHAUSTIVE_PATTERN_LIMIT:
        patterns = itertools.product((lv.ZERO, lv.ONE), repeat=width)
        count = total
    else:
        rng = random.Random(seed)
        patterns = (
            tuple(rng.choice((lv.ZERO, lv.ONE)) for _ in range(width))
            for _ in range(samples)
        )
        count = samples
    checked = 0
    for pattern in patterns:
        assignment = dict(zip(input_nets, pattern))
        sim.set_inputs(assignment)
        expected = reference(assignment)
        for net in output_nets:
            got = sim.read(net)
            want = expected[net]
            if got != want:
                stimulus = lv.to_string(pattern)
                raise VerificationError(
                    f"{netlist.name}: output {net!r} = {lv.to_char(got)}, "
                    f"expected {lv.to_char(want)} for inputs "
                    f"{list(input_nets)} = {stimulus}"
                )
        checked += 1
    return checked
