"""Gate-level netlist substrate.

The CAS generator emits structural netlists in this IR (the reproduction's
stand-in for the paper's synthesised VHDL).  The package provides:

* a small standard-cell library with four-valued evaluation semantics
  (:mod:`repro.netlist.cells`),
* the netlist container (:mod:`repro.netlist.netlist`),
* an event-driven four-valued simulator with tri-state resolution
  (:mod:`repro.netlist.simulate`),
* a technology-mapping area model reporting cell counts and
  NAND2-equivalents (:mod:`repro.netlist.area`),
* equivalence checking of a netlist against a Python reference model
  (:mod:`repro.netlist.verify`).
"""

from repro.netlist.cells import CELL_LIBRARY, CellSpec
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.simulate import NetlistSimulator
from repro.netlist.area import AreaReport, area_report
from repro.netlist.verify import check_combinational_equivalence

__all__ = [
    "CELL_LIBRARY",
    "CellSpec",
    "Gate",
    "Netlist",
    "NetlistSimulator",
    "AreaReport",
    "area_report",
    "check_combinational_equivalence",
]
