"""Netlist container: named nets, gates, ports.

Rules enforced at construction time:

* every gate output drives exactly one net;
* a net may have multiple drivers only when *all* of them are tri-state
  cells (the CAS switch relies on this for its ``o`` terminals);
* pin counts must match the cell library;
* primary inputs cannot also be driven by a gate.

The container is deliberately dumb -- evaluation lives in
:mod:`repro.netlist.simulate`, area in :mod:`repro.netlist.area`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import SynthesisError
from repro.netlist.cells import SEQUENTIAL_KINDS, TRISTATE_KINDS, cell_spec


@dataclass(frozen=True)
class Gate:
    """One cell instance.

    Attributes:
        kind: cell kind name from :data:`repro.netlist.cells.CELL_LIBRARY`.
        inputs: input net names, in pin order.
        output: the single output net name.
        name: instance name, unique within the netlist.
    """

    kind: str
    inputs: tuple[str, ...]
    output: str
    name: str


@dataclass
class Netlist:
    """A flat structural netlist."""

    name: str
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    gates: list[Gate] = field(default_factory=list)
    _drivers: dict[str, list[Gate]] = field(default_factory=lambda: defaultdict(list))
    _instance_names: set[str] = field(default_factory=set)
    _counter: int = 0

    # -- construction -----------------------------------------------------

    def add_input(self, net: str) -> str:
        """Declare a primary input net."""
        if net in self._drivers and self._drivers[net]:
            raise SynthesisError(f"net {net!r} already driven by a gate")
        if net in self.inputs:
            raise SynthesisError(f"duplicate primary input {net!r}")
        self.inputs.append(net)
        return net

    def add_output(self, net: str) -> str:
        """Declare a primary output net (must eventually be driven)."""
        if net in self.outputs:
            raise SynthesisError(f"duplicate primary output {net!r}")
        self.outputs.append(net)
        return net

    def add_gate(
        self,
        kind: str,
        inputs: tuple[str, ...] | list[str],
        output: str,
        name: str | None = None,
    ) -> Gate:
        """Instantiate a cell; returns the created :class:`Gate`."""
        spec = cell_spec(kind)
        inputs = tuple(inputs)
        if spec.num_inputs is not None and len(inputs) != spec.num_inputs:
            raise SynthesisError(
                f"{kind} needs {spec.num_inputs} inputs, got {len(inputs)}"
            )
        if spec.num_inputs is None and len(inputs) < 1:
            raise SynthesisError(f"variadic cell {kind} needs at least one input")
        if output in self.inputs:
            raise SynthesisError(f"gate may not drive primary input {output!r}")
        existing = self._drivers[output]
        if existing:
            all_tristate = kind in TRISTATE_KINDS and all(
                g.kind in TRISTATE_KINDS for g in existing
            )
            if not all_tristate:
                raise SynthesisError(
                    f"net {output!r} would have multiple non-tristate drivers"
                )
        if name is None:
            self._counter += 1
            name = f"{kind.lower()}_{self._counter}"
        if name in self._instance_names:
            raise SynthesisError(f"duplicate instance name {name!r}")
        gate = Gate(kind=kind, inputs=inputs, output=output, name=name)
        self.gates.append(gate)
        self._drivers[output].append(gate)
        self._instance_names.add(name)
        return gate

    def fresh_net(self, prefix: str = "n") -> str:
        """Return a new unique internal net name."""
        self._counter += 1
        return f"{prefix}_{self._counter}"

    # -- queries -----------------------------------------------------------

    def drivers_of(self, net: str) -> list[Gate]:
        """All gates driving ``net`` (empty for inputs/floating nets)."""
        return list(self._drivers.get(net, ()))

    def nets(self) -> set[str]:
        """All net names referenced anywhere in the design."""
        result = set(self.inputs) | set(self.outputs)
        for gate in self.gates:
            result.add(gate.output)
            result.update(gate.inputs)
        return result

    def sequential_gates(self) -> list[Gate]:
        """All state elements, in instantiation order."""
        return [g for g in self.gates if g.kind in SEQUENTIAL_KINDS]

    def combinational_gates(self) -> list[Gate]:
        """All non-state cells, in instantiation order."""
        return [g for g in self.gates if g.kind not in SEQUENTIAL_KINDS]

    def cell_counts(self) -> dict[str, int]:
        """Histogram of cell kinds."""
        counts: dict[str, int] = defaultdict(int)
        for gate in self.gates:
            counts[gate.kind] += 1
        return dict(counts)

    def validate(self) -> None:
        """Structural sanity: outputs driven, no combinational cycles.

        Raises :class:`~repro.errors.SynthesisError` on violation.
        """
        for net in self.outputs:
            if net not in self._drivers and net not in self.inputs:
                raise SynthesisError(f"primary output {net!r} is undriven")
        self._check_no_combinational_cycles()

    def _check_no_combinational_cycles(self) -> None:
        # Sequential cell outputs break cycles: only walk comb. gates.
        comb_driver: dict[str, list[Gate]] = defaultdict(list)
        for gate in self.combinational_gates():
            comb_driver[gate.output].append(gate)
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[str, int] = defaultdict(int)

        def visit(net: str, stack: list[str]) -> None:
            if colour[net] == BLACK:
                return
            if colour[net] == GREY:
                cycle = " -> ".join(stack[stack.index(net):] + [net])
                raise SynthesisError(f"combinational cycle: {cycle}")
            colour[net] = GREY
            stack.append(net)
            for gate in comb_driver.get(net, ()):
                for source in gate.inputs:
                    visit(source, stack)
            stack.pop()
            colour[net] = BLACK

        for net in list(comb_driver):
            visit(net, [])

    def stats(self) -> dict[str, int]:
        """Quick size summary used by reports and tests."""
        return {
            "gates": len(self.gates),
            "sequential": len(self.sequential_gates()),
            "combinational": len(self.combinational_gates()),
            "nets": len(self.nets()),
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
        }
