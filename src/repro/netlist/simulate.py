"""Event-driven four-valued simulation of netlists.

Combinational settling is computed to a fixpoint after every input change;
state elements advance on explicit :meth:`NetlistSimulator.clock` calls
(single global clock domain, which is all the CAS needs -- the paper's
``tck``).  Multi-driver nets are resolved with
:func:`repro.values.resolve_all`, so tri-stated CAS terminals behave like
real buses: undriven nets float to ``Z`` and contention yields ``X``.
"""

from __future__ import annotations

from collections import defaultdict

from repro import values as lv
from repro.errors import SimulationError
from repro.netlist.cells import cell_spec
from repro.netlist.netlist import Gate, Netlist

#: Settle-iteration budget; exceeding it means the netlist oscillates.
_MAX_SETTLE_PASSES = 10_000


class NetlistSimulator:
    """Simulate one :class:`~repro.netlist.netlist.Netlist` instance.

    Typical use::

        sim = NetlistSimulator(netlist)
        sim.set_inputs({"config": ONE, "e0": ZERO})
        sim.clock()                  # rising edge of tck
        value = sim.read("s0")
    """

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.netlist = netlist
        self._values: dict[str, int] = {net: lv.X for net in netlist.nets()}
        # Per-gate output value, pre-resolution (tri-states may emit Z).
        self._gate_out: dict[str, int] = {g.name: lv.X for g in netlist.gates}
        self._state: dict[str, int] = {
            g.name: lv.X for g in netlist.sequential_gates()
        }
        self._fanout: dict[str, list[Gate]] = defaultdict(list)
        for gate in netlist.combinational_gates():
            for source in gate.inputs:
                self._fanout[source].append(gate)
        self._drivers: dict[str, list[Gate]] = defaultdict(list)
        for gate in netlist.gates:
            self._drivers[gate.output].append(gate)
        # Undriven, non-input nets float.
        for net in netlist.nets():
            if net not in self._drivers and net not in netlist.inputs:
                self._values[net] = lv.Z
        # Sequential outputs reflect their (unknown) state.
        for gate in netlist.sequential_gates():
            self._gate_out[gate.name] = lv.X
        # Evaluate every combinational gate once so zero-input cells
        # (CONST0/CONST1) and the initial X state propagate, then settle.
        for gate in netlist.combinational_gates():
            spec = cell_spec(gate.kind)
            inputs = [self._values[src] for src in gate.inputs]
            self._gate_out[gate.name] = spec.evaluate(inputs)
        for gate in netlist.gates:
            self._refresh_net(gate.output)
        self._settle(set(netlist.nets()))

    # -- driving and reading ------------------------------------------------

    def set_input(self, net: str, value: int) -> None:
        """Drive one primary input and settle the combinational logic."""
        self.set_inputs({net: value})

    def set_inputs(self, assignments: dict[str, int]) -> None:
        """Drive several primary inputs at once, then settle."""
        dirty: set[str] = set()
        for net, value in assignments.items():
            if net not in self.netlist.inputs:
                raise SimulationError(f"{net!r} is not a primary input")
            if value not in lv.VALUES:
                raise SimulationError(f"bad logic value {value!r} for {net!r}")
            if self._values[net] != value:
                self._values[net] = value
                dirty.add(net)
        if dirty:
            self._settle(dirty)

    def read(self, net: str) -> int:
        """Current resolved value of any net."""
        try:
            return self._values[net]
        except KeyError:
            raise SimulationError(f"no such net: {net!r}") from None

    def read_vector(self, nets: list[str]) -> tuple[int, ...]:
        """Read several nets at once, in the given order."""
        return tuple(self.read(net) for net in nets)

    def state_of(self, instance_name: str) -> int:
        """Current stored value of a sequential cell."""
        try:
            return self._state[instance_name]
        except KeyError:
            raise SimulationError(
                f"no sequential cell named {instance_name!r}"
            ) from None

    def load_state(self, assignments: dict[str, int]) -> None:
        """Force sequential-cell contents (test setup / reset modelling)."""
        dirty: set[str] = set()
        for name, value in assignments.items():
            if name not in self._state:
                raise SimulationError(f"no sequential cell named {name!r}")
            self._state[name] = value
        for gate in self.netlist.sequential_gates():
            if gate.name in assignments:
                self._gate_out[gate.name] = self._state[gate.name]
                dirty.add(gate.output)
        if dirty:
            for net in dirty:
                self._refresh_net(net)
            self._settle(dirty)

    # -- time ----------------------------------------------------------------

    def clock(self, cycles: int = 1) -> None:
        """Advance the single clock domain by ``cycles`` rising edges."""
        for _ in range(cycles):
            sampled: dict[str, int] = {}
            for gate in self.netlist.sequential_gates():
                if gate.kind == "DFF":
                    sampled[gate.name] = self._values[gate.inputs[0]]
                else:  # DFFE: (d, enable)
                    d_value = self._values[gate.inputs[0]]
                    enable = self._values[gate.inputs[1]]
                    if enable == lv.ONE:
                        sampled[gate.name] = d_value
                    elif enable == lv.ZERO:
                        sampled[gate.name] = self._state[gate.name]
                    else:
                        sampled[gate.name] = lv.X
            dirty: set[str] = set()
            for gate in self.netlist.sequential_gates():
                new_value = sampled[gate.name]
                self._state[gate.name] = new_value
                if self._gate_out[gate.name] != new_value:
                    self._gate_out[gate.name] = new_value
                    dirty.add(gate.output)
            for net in dirty:
                self._refresh_net(net)
            if dirty:
                self._settle(dirty)

    # -- internals -------------------------------------------------------------

    def _refresh_net(self, net: str) -> int:
        """Recompute a net's resolved value from all of its drivers."""
        drivers = self._drivers.get(net)
        if not drivers:
            value = self._values[net] if net in self.netlist.inputs else lv.Z
        else:
            value = lv.resolve_all(self._gate_out[g.name] for g in drivers)
        self._values[net] = value
        return value

    def _settle(self, initially_dirty: set[str]) -> None:
        """Propagate changes through combinational logic to a fixpoint."""
        queue = list(initially_dirty)
        passes = 0
        while queue:
            passes += 1
            if passes > _MAX_SETTLE_PASSES:
                raise SimulationError(
                    f"netlist {self.netlist.name!r} failed to settle "
                    f"(combinational oscillation?)"
                )
            net = queue.pop()
            for gate in self._fanout.get(net, ()):
                spec = cell_spec(gate.kind)
                inputs = [self._values[src] for src in gate.inputs]
                new_out = spec.evaluate(inputs)
                if new_out != self._gate_out[gate.name]:
                    self._gate_out[gate.name] = new_out
                    old = self._values[gate.output]
                    if self._refresh_net(gate.output) != old:
                        queue.append(gate.output)
