"""Area model: technology-map a netlist and report its size.

Two figures are reported, mirroring how synthesis results are usually
quoted:

* **mapped cell count** -- variadic AND/OR/... gates are decomposed into
  trees of 2-input cells first, the way a mapper would;  this is the
  number comparable to the paper's Table 1 "# of gates" column (cell
  counts from Synopsys Design Analyzer);
* **NAND2-equivalent area (GE)** -- the weighted figure used for the
  bus-width trade-off experiment (C1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.netlist.cells import cell_spec
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class AreaReport:
    """Size summary of one netlist after technology mapping.

    Attributes:
        name: netlist name.
        cell_count: number of mapped (2-input) library cells.
        area_ge: NAND2-equivalent area.
        by_kind: mapped cell count per cell kind.
    """

    name: str
    cell_count: int
    area_ge: float
    by_kind: dict[str, int] = field(default_factory=dict)

    def __str__(self) -> str:
        kinds = ", ".join(f"{k}:{v}" for k, v in sorted(self.by_kind.items()))
        return (
            f"AreaReport({self.name}: {self.cell_count} cells, "
            f"{self.area_ge:.1f} GE; {kinds})"
        )


def mapped_cell_units(kind: str, fanin: int) -> int:
    """How many 2-input library cells one IR gate maps to.

    A variadic f-input AND/OR/NAND/NOR/XOR/XNOR maps to a balanced tree
    of ``f - 1`` two-input cells; fixed-arity cells map to themselves.
    Degenerate one-input variadic gates map to a buffer (1 cell).
    """
    spec = cell_spec(kind)
    if spec.num_inputs is not None:
        return 1
    return max(1, fanin - 1)


def area_report(netlist: Netlist) -> AreaReport:
    """Compute the mapped cell count and GE area of a netlist."""
    by_kind: dict[str, int] = defaultdict(int)
    total_cells = 0
    total_ge = 0.0
    for gate in netlist.gates:
        spec = cell_spec(gate.kind)
        units = mapped_cell_units(gate.kind, len(gate.inputs))
        by_kind[gate.kind] += units
        total_cells += units
        total_ge += units * spec.area_ge
    return AreaReport(
        name=netlist.name,
        cell_count=total_cells,
        area_ge=round(total_ge, 2),
        by_kind=dict(by_kind),
    )
