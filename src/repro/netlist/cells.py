"""Standard-cell library for generated CAS netlists.

Each cell kind carries its evaluation function over four-valued logic and
an area in NAND2 gate equivalents (GE).  Variadic kinds (AND/OR/...) are
stored as single gates in the IR; the area model decomposes them into
two-input trees, which matches how a synthesiser would map them.

The GE figures are the usual textbook values for a 1990s-era standard
cell library; absolute numbers only need to be *consistent*, since the
reproduction compares shapes against Table 1, not a silicon library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro import values as lv


@dataclass(frozen=True)
class CellSpec:
    """Static description of one library cell kind.

    Attributes:
        name: cell kind identifier used by :class:`~repro.netlist.netlist.Gate`.
        num_inputs: fixed pin count, or ``None`` for variadic kinds.
        area_ge: NAND2-equivalent area of the 2-input / base form.
        sequential: True for state elements (evaluated on clock edges).
        tristate: True when the cell may emit ``Z``.
        evaluate: four-valued evaluation ``inputs -> output`` for
            combinational cells; sequential cells are handled by the
            simulator directly.
    """

    name: str
    num_inputs: int | None
    area_ge: float
    sequential: bool = False
    tristate: bool = False
    evaluate: Callable[[Sequence[int]], int] | None = None


def _eval_const0(_: Sequence[int]) -> int:
    return lv.ZERO


def _eval_const1(_: Sequence[int]) -> int:
    return lv.ONE


def _eval_buf(inputs: Sequence[int]) -> int:
    return lv.v_buf(inputs[0])


def _eval_inv(inputs: Sequence[int]) -> int:
    return lv.v_not(inputs[0])


def _eval_and(inputs: Sequence[int]) -> int:
    return lv.v_and(inputs)


def _eval_or(inputs: Sequence[int]) -> int:
    return lv.v_or(inputs)


def _eval_nand(inputs: Sequence[int]) -> int:
    return lv.v_not(lv.v_and(inputs))


def _eval_nor(inputs: Sequence[int]) -> int:
    return lv.v_not(lv.v_or(inputs))


def _eval_xor(inputs: Sequence[int]) -> int:
    return lv.v_xor(inputs)


def _eval_xnor(inputs: Sequence[int]) -> int:
    return lv.v_not(lv.v_xor(inputs))


def _eval_mux2(inputs: Sequence[int]) -> int:
    d0, d1, sel = inputs
    return lv.v_mux(d0, d1, sel)


def _eval_tribuf(inputs: Sequence[int]) -> int:
    data, enable = inputs
    return lv.v_tristate(data, enable)


#: The library, keyed by cell kind name.
CELL_LIBRARY: dict[str, CellSpec] = {
    spec.name: spec
    for spec in (
        CellSpec("CONST0", 0, 0.0, evaluate=_eval_const0),
        CellSpec("CONST1", 0, 0.0, evaluate=_eval_const1),
        CellSpec("BUF", 1, 0.75, evaluate=_eval_buf),
        CellSpec("INV", 1, 0.5, evaluate=_eval_inv),
        CellSpec("AND", None, 1.5, evaluate=_eval_and),
        CellSpec("OR", None, 1.5, evaluate=_eval_or),
        CellSpec("NAND", None, 1.0, evaluate=_eval_nand),
        CellSpec("NOR", None, 1.0, evaluate=_eval_nor),
        CellSpec("XOR", None, 2.5, evaluate=_eval_xor),
        CellSpec("XNOR", None, 2.5, evaluate=_eval_xnor),
        CellSpec("MUX2", 3, 2.25, evaluate=_eval_mux2),
        CellSpec("TRIBUF", 2, 1.25, tristate=True, evaluate=_eval_tribuf),
        # DFF pins: (d,).  DFFE pins: (d, enable) -- holds when enable=0.
        CellSpec("DFF", 1, 4.25, sequential=True),
        CellSpec("DFFE", 2, 5.0, sequential=True),
    )
}

#: Cell kinds that hold state across clock edges.
SEQUENTIAL_KINDS = frozenset(
    name for name, spec in CELL_LIBRARY.items() if spec.sequential
)

#: Cell kinds whose outputs may be high impedance.
TRISTATE_KINDS = frozenset(
    name for name, spec in CELL_LIBRARY.items() if spec.tristate
)


def cell_spec(kind: str) -> CellSpec:
    """Look up a cell kind, raising ``KeyError`` with a helpful message."""
    try:
        return CELL_LIBRARY[kind]
    except KeyError:
        known = ", ".join(sorted(CELL_LIBRARY))
        raise KeyError(f"unknown cell kind {kind!r}; known kinds: {known}") from None
