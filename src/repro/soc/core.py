"""Core descriptors: how one embedded core is tested through the CAS-BUS.

A :class:`CoreSpec` is a frozen, seeded specification; the behavioural
objects (scannable core, BIST engine, inner SoC system) are built from
it on demand, so identical specs always produce identical cores.

The paper's four core test types (figure 2) map to ``method``:

* ``SCAN`` -- P = number of scan chains (fig 2a);
* ``BIST`` -- P = 1 (fig 2b);
* ``EXTERNAL`` -- off-chip LFSR source / MISR sink, P = 1 (fig 2c);
* ``HIERARCHICAL`` -- the core embeds its own CAS-BUS; P = the inner
  test bus width (fig 2d).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.soc.soc import SocSpec


class TestMethod(enum.Enum):
    """The four CAS-BUS core test types of paper figure 2."""

    __test__ = False  # not a pytest class, despite the name

    SCAN = "scan"
    BIST = "bist"
    EXTERNAL = "external"
    HIERARCHICAL = "hierarchical"


@dataclass(frozen=True)
class CoreSpec:
    """Specification of one testable core.

    Only the fields relevant to ``method`` are meaningful; the
    classmethod constructors (:meth:`scan`, :meth:`bist`,
    :meth:`external`, :meth:`hierarchical`) set the rest to defaults
    and :meth:`validate` cross-checks.
    """

    name: str
    method: TestMethod
    seed: int = 0
    # Scan / external structure.
    num_pis: int = 4
    num_pos: int = 4
    num_ffs: int = 24
    num_chains: int = 1
    num_gates: int | None = None
    chain_lengths: tuple[int, ...] | None = None
    # ATPG budget (scan) / stream length (external).
    atpg_target: float = 0.90
    atpg_max_patterns: int = 96
    #: Run PODEM after random saturation (higher coverage, proves
    #: redundant faults untestable).
    atpg_deterministic: bool = False
    external_stream_patterns: int = 32
    # BIST.
    bist_cycles: int = 128
    signature_width: int = 16
    # Hierarchy.
    inner: "SocSpec | None" = None
    # The wrapped system bus of figure 1 is modelled as a testable
    # element too ("it also has its dedicated CAS").
    is_system_bus: bool = False

    # -- constructors ------------------------------------------------------

    @classmethod
    def scan(
        cls,
        name: str,
        *,
        seed: int,
        num_ffs: int,
        num_chains: int,
        num_pis: int = 4,
        num_pos: int = 4,
        num_gates: int | None = None,
        chain_lengths: tuple[int, ...] | None = None,
        atpg_target: float = 0.90,
        atpg_max_patterns: int = 96,
        atpg_deterministic: bool = False,
        is_system_bus: bool = False,
    ) -> "CoreSpec":
        """A scannable core (fig 2a): P = ``num_chains``."""
        return cls(
            name=name, method=TestMethod.SCAN, seed=seed,
            num_pis=num_pis, num_pos=num_pos, num_ffs=num_ffs,
            num_chains=num_chains, num_gates=num_gates,
            chain_lengths=chain_lengths, atpg_target=atpg_target,
            atpg_max_patterns=atpg_max_patterns,
            atpg_deterministic=atpg_deterministic,
            is_system_bus=is_system_bus,
        )

    @classmethod
    def bist(
        cls,
        name: str,
        *,
        seed: int,
        num_ffs: int = 16,
        bist_cycles: int = 128,
        signature_width: int = 16,
        num_pis: int = 4,
        num_pos: int = 4,
    ) -> "CoreSpec":
        """A self-testable core (fig 2b): P = 1."""
        return cls(
            name=name, method=TestMethod.BIST, seed=seed,
            num_pis=num_pis, num_pos=num_pos, num_ffs=num_ffs,
            num_chains=1, bist_cycles=bist_cycles,
            signature_width=signature_width,
        )

    @classmethod
    def external(
        cls,
        name: str,
        *,
        seed: int,
        num_ffs: int = 16,
        stream_patterns: int = 32,
        num_pis: int = 4,
        num_pos: int = 4,
    ) -> "CoreSpec":
        """A core tested by an off-chip LFSR/MISR pair (fig 2c): P = 1."""
        return cls(
            name=name, method=TestMethod.EXTERNAL, seed=seed,
            num_pis=num_pis, num_pos=num_pos, num_ffs=num_ffs,
            num_chains=1, external_stream_patterns=stream_patterns,
        )

    @classmethod
    def hierarchical(cls, name: str, inner: "SocSpec") -> "CoreSpec":
        """A core embedding its own CAS-BUS (fig 2d): P = inner width."""
        return cls(name=name, method=TestMethod.HIERARCHICAL, inner=inner)

    # -- derived ---------------------------------------------------------------

    @property
    def p(self) -> int:
        """Test terminals this core's CAS must switch (paper section 2)."""
        if self.method == TestMethod.SCAN:
            return self.num_chains
        if self.method in (TestMethod.BIST, TestMethod.EXTERNAL):
            return 1
        assert self.inner is not None
        return self.inner.bus_width

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigurationError` on nonsense."""
        if not self.name:
            raise ConfigurationError("core needs a name")
        if self.method == TestMethod.HIERARCHICAL:
            if self.inner is None:
                raise ConfigurationError(
                    f"{self.name}: hierarchical core needs an inner SoC"
                )
            self.inner.validate()
            return
        if self.inner is not None:
            raise ConfigurationError(
                f"{self.name}: only hierarchical cores embed an inner SoC"
            )
        if self.num_ffs < 1:
            raise ConfigurationError(f"{self.name}: needs at least one FF")
        if not 1 <= self.num_chains <= self.num_ffs:
            raise ConfigurationError(
                f"{self.name}: bad chain count {self.num_chains}"
            )
        if self.chain_lengths is not None:
            if (len(self.chain_lengths) != self.num_chains
                    or sum(self.chain_lengths) != self.num_ffs):
                raise ConfigurationError(
                    f"{self.name}: chain_lengths {self.chain_lengths} "
                    f"inconsistent with {self.num_chains} chains / "
                    f"{self.num_ffs} FFs"
                )
        if self.method == TestMethod.BIST and self.bist_cycles < 1:
            raise ConfigurationError(f"{self.name}: bist_cycles must be >= 1")

    def build_scannable(self):
        """Instantiate the behavioural scannable core (SCAN/EXTERNAL/BIST)."""
        from repro.scan.core_model import ScannableCore

        if self.method == TestMethod.HIERARCHICAL:
            raise ConfigurationError(
                f"{self.name}: hierarchical cores have no flat core model"
            )
        return ScannableCore.generate(
            self.name,
            seed=self.seed,
            num_pis=self.num_pis,
            num_pos=self.num_pos,
            num_ffs=self.num_ffs,
            num_chains=self.num_chains,
            num_gates=self.num_gates,
            chain_lengths=self.chain_lengths,
        )

    def test_params(self) -> "CoreTestParams":
        """Abstract quantities for the scheduling layer."""
        if self.method == TestMethod.SCAN:
            return CoreTestParams(
                name=self.name,
                method=self.method,
                flops=self.num_ffs + self.num_pis + self.num_pos,
                patterns=self.atpg_max_patterns,
                max_wires=self.num_chains,
            )
        if self.method == TestMethod.EXTERNAL:
            return CoreTestParams(
                name=self.name,
                method=self.method,
                flops=self.num_ffs + self.num_pis + self.num_pos,
                patterns=self.external_stream_patterns,
                max_wires=1,
            )
        if self.method == TestMethod.BIST:
            return CoreTestParams(
                name=self.name,
                method=self.method,
                flops=0,
                patterns=0,
                max_wires=1,
                fixed_cycles=self.bist_cycles + self.signature_width,
            )
        assert self.inner is not None
        inner_params = [core.test_params() for core in self.inner.cores]
        total = sum(
            params.flops * max(1, params.patterns) or
            (params.fixed_cycles or 0)
            for params in inner_params
        )
        return CoreTestParams(
            name=self.name,
            method=self.method,
            flops=sum(params.flops for params in inner_params),
            patterns=max(
                (params.patterns for params in inner_params), default=0
            ),
            max_wires=self.inner.bus_width,
            fixed_cycles=None if total else 0,
        )


@dataclass(frozen=True)
class CoreTestParams:
    """What the scheduler needs to know about one core's test.

    Attributes:
        name: core name.
        method: test method (drives the timing formula choice).
        flops: total scan cells (core FFs + boundary cells).
        patterns: test vector count.
        max_wires: the most bus wires the core can exploit (its P).
        fixed_cycles: wire-independent test length (BIST cores).
    """

    name: str
    method: TestMethod
    flops: int
    patterns: int
    max_wires: int
    fixed_cycles: int | None = None
