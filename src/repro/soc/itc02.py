"""ITC'02-style scheduling workload family.

The paper predates the ITC'02 SoC test benchmarks (Marinissen, Iyengar,
Chakrabarty, 2002), but those benchmarks became the standard workload
for exactly the TAM-width/test-time trade-off the paper's section 4
argues about.  This module ships a *family* of synthetic, proportioned
core tables -- the real benchmarks are collections of ISCAS cores and
industrial blocks; our numbers keep the relative magnitudes so
scheduling results show the same qualitative behaviour, without
claiming to be the published data:

* ``d695``   -- ten cores, a mix of small glue and a few large
  scan-heavy cores (the classic academic workhorse);
* ``g1023``  -- fourteen mid-sized cores with a couple of
  fixed-duration BIST blocks;
* ``p22810`` -- twenty-eight cores with a very wide size spread, the
  large industrial-style stress case;
* ``h953``   -- eight cores dominated by fixed-length (memory-style)
  BIST tests, where TAM width buys almost nothing;
* ``t512505`` -- thirty-one cores dominated by one monster core (the
  classic "one core sets the floor" shape of the real t512505);
* ``p93791`` -- one hundred and ten cores, the industrial-scale
  flagship: a heavy head of scan monsters, a broad middle, a long
  glue-logic tail and a dozen BIST blocks.  This is the table the
  parallel optimizer portfolio is sized for.

Each family member exists in two forms:

* an **abstract table** of :class:`~repro.soc.core.CoreTestParams`
  (:func:`workload`, :func:`d695_like`, ...) for the scheduling layer
  and the timing models;
* a **simulatable SoC** (:func:`benchmark_soc`) -- the same
  proportions scaled down to cores the cycle-accurate simulator moves
  real bits through, used by the kernel/legacy golden-equivalence
  tests and the simulator benchmarks.

Randomised generators (:func:`random_test_params`,
:func:`random_soc`) accept either an integer seed or a caller-owned
:class:`random.Random`, so sweep results are reproducible by
construction; nothing in this module touches module-global ``random``
state.
"""

from __future__ import annotations

import random
from typing import Union

from repro.errors import ConfigurationError
from repro.soc.core import CoreSpec, CoreTestParams, TestMethod
from repro.soc.soc import SocSpec

#: Either an integer seed or a caller-owned generator.
SeedLike = Union[int, random.Random]


def _rng_of(seed: SeedLike) -> tuple[random.Random, int]:
    """``(generator, base)`` for a seed-or-Random argument.

    ``base`` feeds name tags and per-core seeds.  Integer seeds use the
    integer itself (stable names like ``r7_0``); a caller-owned
    generator draws a base from itself, so successive calls with the
    same generator yield *distinct, stream-determined* workloads
    instead of colliding on one tag.
    """
    if isinstance(seed, random.Random):
        return seed, seed.randrange(1 << 30)
    return random.Random(seed), seed


#: Synthetic d695-proportioned cores: (name, flops, patterns, max_wires).
_D695_LIKE_TABLE: tuple[tuple[str, int, int, int], ...] = (
    ("c1", 6, 12, 1),
    ("c2", 1416, 73, 8),
    ("c3", 1593, 75, 8),
    ("c4", 756, 105, 4),
    ("c5", 613, 110, 4),
    ("c6", 2317, 234, 16),
    ("c7", 1056, 95, 8),
    ("c8", 1464, 97, 8),
    ("c9", 2539, 12, 16),
    ("c10", 1242, 68, 8),
)

def _scan_row(name: str, flops: int, patterns: int,
              max_wires: int) -> tuple:
    return (name, TestMethod.SCAN, flops, patterns, max_wires, None)


def _bist_row(name: str, fixed_cycles: int) -> tuple:
    return (name, TestMethod.BIST, 0, 0, 1, fixed_cycles)


def _t512505_rows() -> tuple:
    """The t512505-proportioned table: one monster, thirty satellites.

    The defining feature of the real t512505 is a single core so large
    it sets the test-time floor at every width; everything else is
    about packing the remaining cores into its shadow.  Rows are
    generated from a fixed literal seed, so the table is as immutable
    as a hand-written tuple.
    """
    rng = random.Random("itc02-t512505")
    rows = [_scan_row("t1", 23790, 210, 32)]
    for index in range(2, 26):
        rows.append(_scan_row(
            f"t{index}",
            rng.randint(150, 2400),
            rng.randint(12, 130),
            rng.choice((1, 2, 2, 4, 4, 8)),
        ))
    for index in range(26, 32):
        rows.append(_bist_row(f"t{index}", rng.choice(
            (1024, 2048, 3072, 4096, 6144, 8192)
        )))
    return tuple(rows)


def _p93791_rows() -> tuple:
    """The p93791-proportioned table: 110 cores, industrial scale.

    Shaped like the real flagship benchmark: a handful of scan
    monsters that dominate any schedule, a broad band of mid-sized
    cores, a long tail of narrow glue logic, and a dozen autonomous
    BIST blocks.  Generated from a fixed literal seed (see
    :func:`_t512505_rows`); the partition space is what matters here,
    not any individual row.
    """
    rng = random.Random("itc02-p93791")
    rows = []
    for index in range(1, 9):  # scan monsters
        rows.append(_scan_row(
            f"q{index}",
            rng.randint(3200, 5600),
            rng.randint(60, 230),
            rng.choice((16, 16, 32)),
        ))
    for index in range(9, 49):  # mid-sized band
        rows.append(_scan_row(
            f"q{index}",
            rng.randint(600, 2600),
            rng.randint(30, 160),
            rng.choice((4, 8, 8, 16)),
        ))
    for index in range(49, 99):  # glue-logic tail
        rows.append(_scan_row(
            f"q{index}",
            rng.randint(20, 550),
            rng.randint(10, 80),
            rng.choice((1, 1, 2, 2, 4)),
        ))
    for index in range(99, 111):  # BIST blocks
        rows.append(_bist_row(f"q{index}", rng.choice(
            (512, 1024, 2048, 3072, 4096, 6144, 8192, 12288)
        )))
    return tuple(rows)


_TABLES: dict[str, tuple] = {
    "d695": tuple(
        _scan_row(name, flops, patterns, max_wires)
        for name, flops, patterns, max_wires in _D695_LIKE_TABLE
    ),
    # Fourteen mid-sized cores, two of them autonomous BIST blocks.
    "g1023": (
        _scan_row("g1", 209, 14, 2),
        _scan_row("g2", 537, 38, 4),
        _scan_row("g3", 834, 52, 4),
        _scan_row("g4", 296, 22, 2),
        _scan_row("g5", 1103, 84, 8),
        _scan_row("g6", 689, 47, 4),
        _bist_row("g7", 4096),
        _scan_row("g8", 421, 31, 2),
        _scan_row("g9", 972, 66, 8),
        _scan_row("g10", 158, 11, 1),
        _scan_row("g11", 765, 49, 4),
        _bist_row("g12", 2048),
        _scan_row("g13", 1246, 91, 8),
        _scan_row("g14", 318, 25, 2),
    ),
    # Twenty-eight cores, very wide spread: industrial stress case.
    "p22810": (
        _scan_row("p1", 12, 10, 1),
        _scan_row("p2", 3417, 122, 16),
        _scan_row("p3", 251, 75, 2),
        _scan_row("p4", 1033, 130, 8),
        _scan_row("p5", 4205, 28, 16),
        _scan_row("p6", 684, 210, 4),
        _scan_row("p7", 2281, 94, 16),
        _scan_row("p8", 177, 19, 1),
        _scan_row("p9", 1528, 103, 8),
        _bist_row("p10", 6144),
        _scan_row("p11", 927, 61, 4),
        _scan_row("p12", 3066, 88, 16),
        _scan_row("p13", 45, 36, 1),
        _scan_row("p14", 1894, 141, 8),
        _scan_row("p15", 562, 47, 4),
        _scan_row("p16", 2730, 71, 16),
        _scan_row("p17", 1372, 119, 8),
        _bist_row("p18", 3072),
        _scan_row("p19", 318, 57, 2),
        _scan_row("p20", 2049, 83, 8),
        _scan_row("p21", 808, 167, 4),
        _scan_row("p22", 1167, 99, 8),
        _scan_row("p23", 96, 24, 1),
        _scan_row("p24", 3588, 52, 16),
        _scan_row("p25", 745, 78, 4),
        _scan_row("p26", 1623, 108, 8),
        _bist_row("p27", 4608),
        _scan_row("p28", 428, 33, 2),
    ),
    # Eight cores dominated by fixed-length memory-style BIST.
    "h953": (
        _bist_row("h1", 8192),
        _bist_row("h2", 8192),
        _scan_row("h3", 614, 46, 4),
        _bist_row("h4", 4096),
        _scan_row("h5", 1034, 73, 8),
        _bist_row("h6", 12288),
        _scan_row("h7", 377, 28, 2),
        _bist_row("h8", 2048),
    ),
    # Thirty-one cores under one monster: the t512505 shape.
    "t512505": _t512505_rows(),
    # One hundred and ten cores: the industrial-scale flagship.
    "p93791": _p93791_rows(),
}


def benchmark_names() -> tuple[str, ...]:
    """The ITC'02-style family members, canonical order (small to
    industrial-scale)."""
    return ("d695", "g1023", "p22810", "h953", "t512505", "p93791")


def workload(name: str) -> list[CoreTestParams]:
    """The abstract core table of one family member."""
    try:
        rows = _TABLES[name]
    except KeyError:
        known = ", ".join(benchmark_names())
        raise ConfigurationError(
            f"unknown ITC'02-style workload {name!r}; known: {known}"
        ) from None
    return [
        CoreTestParams(
            name=core_name,
            method=method,
            flops=flops,
            patterns=patterns,
            max_wires=max_wires,
            fixed_cycles=fixed_cycles,
        )
        for core_name, method, flops, patterns, max_wires, fixed_cycles
        in rows
    ]


def d695_like() -> list[CoreTestParams]:
    """The synthetic d695-proportioned ten-core workload."""
    return workload("d695")


def g1023_like() -> list[CoreTestParams]:
    """The synthetic g1023-proportioned fourteen-core workload."""
    return workload("g1023")


def p22810_like() -> list[CoreTestParams]:
    """The synthetic p22810-proportioned twenty-eight-core workload."""
    return workload("p22810")


def h953_like() -> list[CoreTestParams]:
    """The synthetic h953-proportioned BIST-heavy workload."""
    return workload("h953")


def t512505_like() -> list[CoreTestParams]:
    """The synthetic t512505-proportioned one-monster workload."""
    return workload("t512505")


def p93791_like() -> list[CoreTestParams]:
    """The synthetic p93791-proportioned 110-core workload."""
    return workload("p93791")


def random_test_params(
    seed: SeedLike,
    *,
    num_cores: int = 8,
    max_flops: int = 2000,
    max_patterns: int = 200,
    bist_fraction: float = 0.2,
) -> list[CoreTestParams]:
    """A seeded random scheduling workload.

    Mixes scan cores (wire-elastic) with a fraction of BIST cores
    (fixed-duration, single wire), matching the heterogeneity the
    CAS-BUS is designed for.  ``seed`` is an int or a caller-owned
    :class:`random.Random`; identical seeds give identical workloads.
    """
    rng, base = _rng_of(seed)
    cores: list[CoreTestParams] = []
    for index in range(num_cores):
        name = f"r{base}_{index}"
        if rng.random() < bist_fraction:
            cores.append(CoreTestParams(
                name=name,
                method=TestMethod.BIST,
                flops=0,
                patterns=0,
                max_wires=1,
                fixed_cycles=rng.randint(200, 4000),
            ))
        else:
            cores.append(CoreTestParams(
                name=name,
                method=TestMethod.SCAN,
                flops=rng.randint(40, max_flops),
                patterns=rng.randint(10, max_patterns),
                max_wires=rng.choice((1, 2, 2, 4, 4, 8, 16)),
            ))
    return cores


# -- simulatable SoCs ---------------------------------------------------------


def benchmark_soc(
    name: str,
    *,
    bus_width: int = 8,
    scale: int = 96,
    seed: int = 1,
    max_cores: int = 32,
) -> SocSpec:
    """A simulatable SoC proportioned like one family member.

    Core sizes are the table's, divided by ``scale`` and clamped to
    what the cycle-accurate simulator moves comfortably (a complete
    test program still runs in well under a second on the kernel
    backend).  The relative magnitudes -- which cores are scan-heavy,
    which are fixed-duration BIST -- survive the scaling, so schedule
    shapes match the abstract table's.

    Industrial-scale tables (``p93791`` is 110 cores) are sampled
    down to ``max_cores`` by a deterministic stride over the table, so
    the method mix and size spread survive while the cycle-accurate
    simulator and the fault-diagnosis property tests stay fast; the
    *abstract* tables (:func:`workload`) are never sampled -- the
    optimizer portfolio always sees the full partition space.
    """
    rows = _TABLES.get(name)
    if rows is None:
        known = ", ".join(benchmark_names())
        raise ConfigurationError(
            f"unknown ITC'02-style workload {name!r}; known: {known}"
        )
    if max_cores < 1:
        raise ConfigurationError(
            f"max_cores must be >= 1, got {max_cores}"
        )
    if len(rows) > max_cores:
        stride = len(rows) / max_cores
        rows = tuple(
            rows[int(index * stride)] for index in range(max_cores)
        )
    cores: list[CoreSpec] = []
    for index, (core_name, method, flops, patterns, max_wires,
                fixed_cycles) in enumerate(rows):
        core_seed = seed * 1000 + index
        if method == TestMethod.BIST:
            assert fixed_cycles is not None
            cores.append(CoreSpec.bist(
                core_name,
                seed=core_seed,
                num_ffs=8 + (index % 5),
                bist_cycles=max(16, min(96, fixed_cycles // scale)),
                signature_width=8,
            ))
            continue
        chains = max(1, min(max_wires, bus_width, 3))
        ffs = max(chains * 2, min(24, flops // scale))
        cores.append(CoreSpec.scan(
            core_name,
            seed=core_seed,
            num_ffs=ffs,
            num_chains=chains,
            num_pis=2,
            num_pos=2,
            atpg_max_patterns=max(4, min(16, patterns // 8)),
        ))
    soc = SocSpec(
        name=f"itc02_{name}", bus_width=bus_width, cores=tuple(cores)
    )
    soc.validate()
    return soc


def random_soc(
    seed: SeedLike,
    *,
    num_cores: int = 8,
    bus_width: int = 8,
    bist_fraction: float = 0.25,
    external_fraction: float = 0.1,
) -> SocSpec:
    """A seeded random simulatable SoC with ITC'02-ish heterogeneity.

    Unlike :func:`repro.soc.library.make_synthetic_soc` (small
    property-test systems), this generator aims at scheduling-relevant
    shape: wire-elastic scan cores with varying chain counts next to
    fixed-duration BIST blocks and the occasional externally tested
    core.  Identical seeds give identical SoCs.
    """
    if num_cores < 1:
        raise ConfigurationError(
            f"need at least one core, got {num_cores}"
        )
    rng, base = _rng_of(seed)
    cores: list[CoreSpec] = []
    for index in range(num_cores):
        name = f"i{base}_{index}"
        core_seed = base * 1000 + index
        roll = rng.random()
        if roll < bist_fraction:
            cores.append(CoreSpec.bist(
                name,
                seed=core_seed,
                num_ffs=rng.randint(6, 16),
                bist_cycles=rng.choice((32, 48, 64, 96)),
                signature_width=8,
            ))
        elif roll < bist_fraction + external_fraction:
            cores.append(CoreSpec.external(
                name,
                seed=core_seed,
                num_ffs=rng.randint(6, 14),
                stream_patterns=rng.randint(6, 14),
            ))
        else:
            chains = rng.choice((1, 1, 2, 2, 3))
            chains = min(chains, bus_width)
            cores.append(CoreSpec.scan(
                name,
                seed=core_seed,
                num_ffs=rng.randint(chains * 3, chains * 8),
                num_chains=chains,
                num_pis=rng.randint(1, 4),
                num_pos=rng.randint(1, 4),
                atpg_max_patterns=rng.choice((8, 12, 16)),
            ))
    soc = SocSpec(
        name=f"itc02_random{base}", bus_width=bus_width,
        cores=tuple(cores),
    )
    soc.validate()
    return soc
