"""ITC'02-style scheduling workloads.

The paper predates the ITC'02 SoC test benchmarks (Marinissen, Iyengar,
Chakrabarty, 2002), but those benchmarks became the standard workload
for exactly the TAM-width/test-time trade-off the paper's section 4
argues about.  This module ships a *synthetic, d695-proportioned* core
table -- the real d695 is a collection of ISCAS cores; our numbers keep
the relative magnitudes (a mix of small glue cores and a few large
scan-heavy cores) so scheduling results show the same qualitative
behaviour, without claiming to be the published benchmark.

These are abstract :class:`~repro.soc.core.CoreTestParams` records: the
scheduling layer needs only flop counts, pattern counts and wire
limits, not simulatable netlists.
"""

from __future__ import annotations

import random

from repro.soc.core import CoreTestParams, TestMethod

#: Synthetic d695-proportioned cores: (name, flops, patterns, max_wires).
_D695_LIKE_TABLE: tuple[tuple[str, int, int, int], ...] = (
    ("c1", 6, 12, 1),
    ("c2", 1416, 73, 8),
    ("c3", 1593, 75, 8),
    ("c4", 756, 105, 4),
    ("c5", 613, 110, 4),
    ("c6", 2317, 234, 16),
    ("c7", 1056, 95, 8),
    ("c8", 1464, 97, 8),
    ("c9", 2539, 12, 16),
    ("c10", 1242, 68, 8),
)


def d695_like() -> list[CoreTestParams]:
    """The synthetic d695-proportioned ten-core workload."""
    return [
        CoreTestParams(
            name=name,
            method=TestMethod.SCAN,
            flops=flops,
            patterns=patterns,
            max_wires=max_wires,
        )
        for name, flops, patterns, max_wires in _D695_LIKE_TABLE
    ]


def random_test_params(
    seed: int,
    *,
    num_cores: int = 8,
    max_flops: int = 2000,
    max_patterns: int = 200,
    bist_fraction: float = 0.2,
) -> list[CoreTestParams]:
    """A seeded random scheduling workload.

    Mixes scan cores (wire-elastic) with a fraction of BIST cores
    (fixed-duration, single wire), matching the heterogeneity the
    CAS-BUS is designed for.
    """
    rng = random.Random(seed)
    cores: list[CoreTestParams] = []
    for index in range(num_cores):
        name = f"r{seed}_{index}"
        if rng.random() < bist_fraction:
            cores.append(CoreTestParams(
                name=name,
                method=TestMethod.BIST,
                flops=0,
                patterns=0,
                max_wires=1,
                fixed_cycles=rng.randint(200, 4000),
            ))
        else:
            cores.append(CoreTestParams(
                name=name,
                method=TestMethod.SCAN,
                flops=rng.randint(40, max_flops),
                patterns=rng.randint(10, max_patterns),
                max_wires=rng.choice((1, 2, 2, 4, 4, 8, 16)),
            ))
    return cores
