"""Benchmark SoCs.

:func:`fig1_soc` reconstructs the six-core system of paper figure 1
with the full mix of core test types (plus the wrapped system bus with
its own CAS).  Sizes are chosen so a complete end-to-end test session
simulates in well under a second while still moving thousands of real
scan bits.  :func:`make_synthetic_soc` produces seeded random SoCs for
property tests and sweeps.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError
from repro.soc.core import CoreSpec, TestMethod
from repro.soc.soc import SocSpec


def fig1_soc(bus_width: int = 4) -> SocSpec:
    """The paper's figure 1 SoC: six cores plus the wrapped system bus.

    Core 1-2: scannable (multi-chain); core 3: BISTed; core 4:
    externally tested; core 5: hierarchical with an embedded two-core
    CAS-BUS; core 6: scannable (single chain).  The system bus is a
    boundary-only scannable element with its dedicated CAS.
    """
    if bus_width < 3:
        raise ConfigurationError(
            f"fig1 SoC needs a bus of width >= 3 (core1 has 3 chains), "
            f"got {bus_width}"
        )
    inner = SocSpec(
        name="core5_inner",
        bus_width=2,
        cores=(
            CoreSpec.scan("core5a", seed=51, num_ffs=10, num_chains=1,
                          num_pis=2, num_pos=2, atpg_max_patterns=16),
            CoreSpec.scan("core5b", seed=52, num_ffs=12, num_chains=2,
                          num_pis=2, num_pos=2, atpg_max_patterns=16),
        ),
    )
    soc = SocSpec(
        name="fig1",
        bus_width=bus_width,
        cores=(
            CoreSpec.scan("core1", seed=11, num_ffs=18, num_chains=3,
                          num_pis=3, num_pos=3, atpg_max_patterns=24),
            CoreSpec.scan("core2", seed=12, num_ffs=14, num_chains=2,
                          num_pis=3, num_pos=3, atpg_max_patterns=24),
            CoreSpec.bist("core3", seed=13, num_ffs=12, bist_cycles=64,
                          signature_width=8),
            CoreSpec.external("core4", seed=14, num_ffs=10,
                              stream_patterns=12),
            CoreSpec.hierarchical("core5", inner=inner),
            CoreSpec.scan("core6", seed=16, num_ffs=12, num_chains=1,
                          num_pis=2, num_pos=2, atpg_max_patterns=24),
            CoreSpec.scan("sysbus", seed=17, num_ffs=8, num_chains=1,
                          num_pis=2, num_pos=2, atpg_max_patterns=8,
                          is_system_bus=True),
        ),
    )
    soc.validate()
    return soc


def small_soc(bus_width: int = 3) -> SocSpec:
    """A two-core scan-only SoC for fast integration tests."""
    soc = SocSpec(
        name="small",
        bus_width=bus_width,
        cores=(
            CoreSpec.scan("alpha", seed=1, num_ffs=8, num_chains=2,
                          num_pis=2, num_pos=2, atpg_max_patterns=12),
            CoreSpec.scan("beta", seed=2, num_ffs=6, num_chains=1,
                          num_pis=2, num_pos=2, atpg_max_patterns=12),
        ),
    )
    soc.validate()
    return soc


def interconnect_demo_soc() -> SocSpec:
    """Three wrapped cores joined by four SoC nets, for EXTEST tests.

    net topology:  producer.po0 -> hub.pi0      (n0)
                   producer.po1 -> hub.pi1      (n1)
                   hub.po0      -> consumer.pi0 (n2)
                   hub.po1      -> consumer.pi1 (n3)
    """
    from repro.sim.interconnect import Interconnect

    soc = SocSpec(
        name="interconnect_demo",
        bus_width=3,
        cores=(
            CoreSpec.scan("producer", seed=61, num_ffs=6, num_chains=1,
                          num_pis=2, num_pos=2, atpg_max_patterns=8),
            CoreSpec.scan("hub", seed=62, num_ffs=8, num_chains=1,
                          num_pis=2, num_pos=2, atpg_max_patterns=8),
            CoreSpec.scan("consumer", seed=63, num_ffs=6, num_chains=1,
                          num_pis=2, num_pos=2, atpg_max_patterns=8),
        ),
        interconnects=(
            Interconnect("n0", source=("producer", 0), sink=("hub", 0)),
            Interconnect("n1", source=("producer", 1), sink=("hub", 1)),
            Interconnect("n2", source=("hub", 0), sink=("consumer", 0)),
            Interconnect("n3", source=("hub", 1), sink=("consumer", 1)),
        ),
    )
    soc.validate()
    return soc


def make_synthetic_soc(
    seed: int,
    *,
    num_cores: int = 5,
    bus_width: int = 4,
    allow_hierarchy: bool = True,
) -> SocSpec:
    """A seeded random SoC mixing all four core test types."""
    if num_cores < 1:
        raise ConfigurationError(f"need at least one core, got {num_cores}")
    rng = random.Random(seed)
    cores: list[CoreSpec] = []
    for index in range(num_cores):
        kind = rng.choice(
            [TestMethod.SCAN, TestMethod.SCAN, TestMethod.BIST,
             TestMethod.EXTERNAL]
            + ([TestMethod.HIERARCHICAL] if allow_hierarchy
               and bus_width >= 2 else [])
        )
        name = f"core{index}"
        core_seed = seed * 1000 + index
        if kind == TestMethod.SCAN:
            chains = rng.randint(1, min(3, bus_width))
            ffs = rng.randint(chains * 3, chains * 8)
            cores.append(CoreSpec.scan(
                name, seed=core_seed, num_ffs=ffs, num_chains=chains,
                num_pis=rng.randint(1, 4), num_pos=rng.randint(1, 4),
                atpg_max_patterns=16,
            ))
        elif kind == TestMethod.BIST:
            cores.append(CoreSpec.bist(
                name, seed=core_seed, num_ffs=rng.randint(6, 16),
                bist_cycles=rng.choice((32, 64, 96)),
                signature_width=8,
            ))
        elif kind == TestMethod.EXTERNAL:
            cores.append(CoreSpec.external(
                name, seed=core_seed, num_ffs=rng.randint(6, 14),
                stream_patterns=rng.randint(6, 16),
            ))
        else:
            inner_width = rng.randint(1, min(2, bus_width))
            inner = SocSpec(
                name=f"{name}_inner",
                bus_width=inner_width,
                cores=(
                    CoreSpec.scan(
                        f"{name}_inner0", seed=core_seed + 1,
                        num_ffs=rng.randint(4, 10),
                        num_chains=min(inner_width, rng.randint(1, 2)),
                        num_pis=2, num_pos=2, atpg_max_patterns=8,
                    ),
                ),
            )
            cores.append(CoreSpec.hierarchical(name, inner=inner))
    soc = SocSpec(
        name=f"synthetic{seed}", bus_width=bus_width, cores=tuple(cores)
    )
    soc.validate()
    return soc
