"""SoC descriptors: a named set of cores sharing one test bus."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.errors import ConfigurationError
from repro.soc.core import CoreSpec, TestMethod

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.interconnect import Interconnect


@dataclass(frozen=True)
class SocSpec:
    """A system-on-chip from the TAM's point of view.

    Attributes:
        name: design name.
        bus_width: the test bus width N (paper: "N is greater or
            equal to 1").
        cores: the testable cores, in CAS chain order (the physical
            order the test bus threads them, figure 1).
        interconnects: optional core-to-core SoC nets, testable in
            EXTEST over the CAS-BUS (section 4's interconnect test).
    """

    name: str
    bus_width: int
    cores: tuple[CoreSpec, ...]
    interconnects: "tuple[Interconnect, ...]" = field(default=())

    def validate(self) -> None:
        if self.bus_width < 1:
            raise ConfigurationError(
                f"{self.name}: bus width must be >= 1, got {self.bus_width}"
            )
        if not self.cores:
            raise ConfigurationError(f"{self.name}: an SoC needs cores")
        names = [core.name for core in self.cores]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"{self.name}: duplicate core names in {names}"
            )
        for core in self.cores:
            core.validate()
            if core.p > self.bus_width:
                raise ConfigurationError(
                    f"{self.name}: core {core.name} needs P={core.p} wires "
                    f"but the bus is only {self.bus_width} wide "
                    f"(paper requires P <= N)"
                )
            if core.method == TestMethod.HIERARCHICAL:
                assert core.inner is not None
                if core.inner.bus_width != core.p:
                    raise ConfigurationError(
                        f"{self.name}: hierarchical core {core.name} "
                        f"must expose P equal to its inner bus width"
                    )
        if self.interconnects:
            from repro.sim.interconnect import validate_interconnects

            shapes = {
                core.name: (core.num_pis, core.num_pos)
                for core in self.cores
                if core.method != TestMethod.HIERARCHICAL
            }
            validate_interconnects(self.interconnects, shapes)

    def core_named(self, name: str) -> CoreSpec:
        for core in self.cores:
            if core.name == name:
                return core
        raise ConfigurationError(f"{self.name}: no core named {name!r}")

    def __iter__(self) -> Iterator[CoreSpec]:
        return iter(self.cores)

    def __len__(self) -> int:
        return len(self.cores)

    def describe(self) -> str:
        """One-line-per-core summary used by reports."""
        lines = [f"SoC {self.name}: N={self.bus_width}, "
                 f"{len(self.cores)} cores"]
        for core in self.cores:
            lines.append(
                f"  {core.name:<10} {core.method.value:<12} P={core.p}"
                + (" (system bus)" if core.is_system_bus else "")
            )
        return "\n".join(lines)
