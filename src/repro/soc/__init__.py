"""SoC workload descriptors and benchmark designs.

Separates *specification* (what cores an SoC contains, how each is
tested, every parameter seeded and explicit) from *instantiation* (the
behavioural objects built by the system simulator).  Includes the
reconstructed Figure 1 six-core SoC and an ITC'02-style synthetic suite
for scheduling experiments.
"""

from repro.soc.core import (
    TestMethod,
    CoreSpec,
    CoreTestParams,
)
from repro.soc.soc import SocSpec
from repro.soc.library import (
    fig1_soc,
    small_soc,
    make_synthetic_soc,
)
from repro.soc.itc02 import (
    d695_like,
    p93791_like,
    random_test_params,
    t512505_like,
)

__all__ = [
    "TestMethod",
    "CoreSpec",
    "CoreTestParams",
    "SocSpec",
    "fig1_soc",
    "small_soc",
    "make_synthetic_soc",
    "d695_like",
    "p93791_like",
    "t512505_like",
    "random_test_params",
]
