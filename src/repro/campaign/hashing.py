"""Stable content-addressed identity for experiment runs.

Every :class:`~repro.api.experiment.Experiment` reduces to a canonical
JSON document -- the workload's structural identity plus the effective
run configuration -- and its SHA-256 hex digest is the run's *config
hash*.  The hash is deliberately boring: sorted keys, compact
separators, enums by value, no timestamps, no process state.  Equal
experiments hash equally across processes, machines and Python
versions (``PYTHONHASHSEED`` never enters the picture), which is what
makes campaign stores resumable and shardable.

Normalisations applied before hashing:

* architecture and scheduler aliases resolve to canonical registry
  names (``cas-bus`` and ``casbus`` are one run, not two);
* the bus width resolves against the workload when it has an intrinsic
  width, so "explicit width equal to the default" is not a new run;
* the free-form ``label`` is dropped -- it tags output, it does not
  change the computation.

Deterministic sharding partitions the hash space: shard ``k`` of ``n``
owns every hash whose leading 64 bits are congruent to ``k - 1``
modulo ``n``.  Any process that can hash a config can decide shard
membership without coordination.
"""

from __future__ import annotations

import hashlib
import json
import string

from repro.errors import ConfigurationError

_HEX_DIGITS = frozenset(string.hexdigits.lower())


def is_config_hash(text: object) -> bool:
    """Whether ``text`` is a well-formed config hash (sha256 hex).

    Store backends and the static verifier share this one predicate,
    so "what counts as a hash" cannot drift between the layer that
    writes records and the layer that audits them.
    """
    return (
        isinstance(text, str)
        and len(text) == 64
        and set(text) <= _HEX_DIGITS
    )

#: Version of the hashed payload layout.  Bumping it invalidates every
#: stored hash (old records simply stop matching), so bump only on
#: semantic changes to the identity itself.
HASH_SCHEMA = 1


def canonical_json(payload) -> str:
    """Deterministic JSON text for ``payload``.

    Sorted keys, compact separators, ASCII only.  The payload must be
    JSON-serializable data (the identity helpers guarantee this).
    """
    return json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
    )


def experiment_identity(experiment) -> dict:
    """The canonical identity document of one experiment."""
    from repro.api.registry import (
        ARCHITECTURES,
        SCHEDULERS,
        _ensure_loaded,
    )

    _ensure_loaded()
    config = experiment.config
    effective = config.to_dict()
    del effective["label"]
    if not effective.get("capture_syndromes"):
        # The flag joined the config after stores existed; dropping
        # the default keeps every pre-existing hash valid.
        effective.pop("capture_syndromes", None)
    # Verification changes when an invalid run fails, never what a
    # valid run computes: identity-neutral by design.
    effective.pop("verify", None)
    effective["architecture"] = ARCHITECTURES.resolve(config.architecture)
    effective["scheduler"] = SCHEDULERS.resolve(config.scheduler)
    try:
        effective["bus_width"] = experiment.workload.resolve_width(
            config.bus_width,
        )
    except ConfigurationError:
        pass  # no intrinsic width and none requested: keep the raw None
    return {
        "schema": HASH_SCHEMA,
        "workload": experiment.workload.identity(),
        "config": effective,
    }


def config_hash(experiment) -> str:
    """Hex SHA-256 of the experiment's canonical identity.

    Cached on the experiment: its workload and config are immutable
    (the builder returns fresh instances), and campaign selection,
    execution and reporting each need the same digest.
    """
    cached = getattr(experiment, "_config_hash", None)
    if cached is None:
        text = canonical_json(experiment_identity(experiment))
        cached = hashlib.sha256(text.encode("ascii")).hexdigest()
        experiment._config_hash = cached
    return cached


def parse_shard(text: str) -> tuple[int, int]:
    """``"2/4"`` -> ``(2, 4)``, validating ``1 <= k <= n``."""
    head, sep, tail = text.partition("/")
    try:
        if not sep:
            raise ValueError(text)
        index, total = int(head), int(tail)
    except ValueError:
        message = f"shard spec must look like K/N (e.g. 1/2), got {text!r}"
        raise ConfigurationError(message) from None
    validate_shard(index, total)
    return index, total


def validate_shard(index: int, total: int) -> None:
    """Raise :class:`~repro.errors.ConfigurationError` on a bad shard."""
    if total < 1:
        raise ConfigurationError(f"shard count must be >= 1, got {total}")
    if not 1 <= index <= total:
        message = f"shard index must be in 1..{total}, got {index}"
        raise ConfigurationError(message)


def shard_index(config_hash_hex: str, total: int) -> int:
    """The 1-based shard owning ``config_hash_hex`` out of ``total``."""
    validate_shard(1, total)
    return int(config_hash_hex[:16], 16) % total + 1


def in_shard(config_hash_hex: str, index: int, total: int) -> bool:
    """Whether shard ``index`` (1-based) of ``total`` owns this hash."""
    validate_shard(index, total)
    return shard_index(config_hash_hex, total) == index
