"""Indexed SQLite campaign stores for million-run campaigns.

:class:`SqliteStore` implements the
:class:`~repro.campaign.backend.StoreBackend` contract on one SQLite
database file.  Records land in an append-only ``records`` table keyed
by config hash with secondary indexes on workload identity,
architecture and scheduler, so the operations that are O(store) on a
JSONL file become indexed lookups:

* resume-skip checks (:meth:`SqliteStore.lookup`,
  :meth:`SqliteStore.__contains__`) touch only the hashes asked about;
* filtered reports (:meth:`SqliteStore.iter_latest`) read only the
  matching rows;
* campaign summaries (:meth:`SqliteStore.aggregate_counts`) read a
  per-bucket ``aggregates`` table maintained *transactionally with
  every append*, so summarising 10^6 records is O(buckets).

Semantics match the JSONL backend exactly: append-only rows with
last-record-wins dedup on read, deliberate re-runs via
``append(..., replace=True)``, deterministic
:meth:`SqliteStore.write_all` rebuilds for merge/compact/migrate, and
crash tolerance -- a truncated or corrupt database file still reads
(salvaging every reachable row, counting the damage in
:attr:`~SqliteStore.skipped_lines`) and the next append heals it by
rebuilding from the salvaged records, mirroring the JSONL
heal-on-append discipline.  Concurrent appenders serialize through
``BEGIN IMMEDIATE`` transactions with a generous busy timeout instead
of corrupting each other.
"""

from __future__ import annotations

import json
import os
import sqlite3
from contextlib import closing
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.errors import StoreError
from repro.api.results import SCHEMA_VERSION
from repro.campaign.backend import (
    AggregateKey,
    StoreBackend,
    aggregate_key,
    index_columns,
)

#: First bytes of every SQLite database file.
SQLITE_MAGIC = b"SQLite format 3\x00"

#: Version of this backend's table layout, recorded in ``store_meta``.
#: Bump on incompatible layout changes; newer layouts are refused
#: rather than misread, exactly like newer record schemas.
SQLITE_STORE_SCHEMA = 1

#: How long a writer waits on a sibling's transaction before failing.
_BUSY_TIMEOUT_MS = 30_000

#: Hash batch size per ``IN (...)`` lookup query (SQLite caps bound
#: parameters per statement; 400 stays far below every default).
_LOOKUP_CHUNK = 400

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS records (
    seq INTEGER PRIMARY KEY,
    hash TEXT NOT NULL,
    kind TEXT NOT NULL,
    workload TEXT,
    architecture TEXT,
    scheduler TEXT,
    record TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS records_by_hash ON records(hash);
CREATE INDEX IF NOT EXISTS records_by_workload ON records(workload);
CREATE INDEX IF NOT EXISTS records_by_architecture
    ON records(architecture);
CREATE INDEX IF NOT EXISTS records_by_scheduler ON records(scheduler);
CREATE TABLE IF NOT EXISTS aggregates (
    kind TEXT NOT NULL,
    workload TEXT NOT NULL,
    architecture TEXT NOT NULL,
    scheduler TEXT NOT NULL,
    runs INTEGER NOT NULL,
    PRIMARY KEY (kind, workload, architecture, scheduler)
);
CREATE TABLE IF NOT EXISTS store_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

#: Aggregate rows cannot hold NULL primary-key parts (SQLite treats
#: them as distinct); absent identity columns store as this sentinel.
_NONE = ""


def _canonical_line(record: Mapping) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _row_columns(
    record: Mapping,
) -> "Tuple[str, Optional[str], Optional[str], Optional[str]]":
    columns = index_columns(record)
    return (
        columns["kind"] or "run",
        columns["workload"],
        columns["architecture"],
        columns["scheduler"],
    )


def _is_corruption(error: sqlite3.Error) -> bool:
    """Whether an error means "this file is damaged", not "busy".

    ``OperationalError`` covers locking and missing tables -- states a
    rebuild must never stomp on; everything else under
    :class:`sqlite3.DatabaseError` (malformed image, not a database)
    is damage the heal path may repair.
    """
    return isinstance(error, sqlite3.DatabaseError) and not isinstance(
        error, sqlite3.OperationalError
    )


class SqliteStore(StoreBackend):
    """One indexed SQLite result store, keyed by config hash."""

    format = "sqlite"

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self.skipped_lines = 0

    # -- connections -------------------------------------------------------

    def _connect(self, path: "Optional[Path]" = None) -> sqlite3.Connection:
        connection = sqlite3.connect(str(path or self.path), timeout=30.0)
        connection.isolation_level = None  # explicit transactions only
        connection.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
        return connection

    def _write_connection(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        connection = self._connect()
        # Match the JSONL fsync discipline: a committed append must
        # survive the process dying immediately afterwards.
        connection.execute("PRAGMA synchronous=FULL")
        self._ensure_schema(connection)
        return connection

    @staticmethod
    def _ensure_schema(connection: sqlite3.Connection) -> None:
        connection.executescript(_SCHEMA_SQL)
        row = connection.execute(
            "SELECT value FROM store_meta WHERE key='store_schema'"
        ).fetchone()
        if row is None:
            connection.execute(
                "INSERT INTO store_meta (key, value) VALUES (?, ?)",
                ("store_schema", str(SQLITE_STORE_SCHEMA)),
            )
        elif int(row[0]) > SQLITE_STORE_SCHEMA:
            raise StoreError(
                f"store layout {row[0]} is newer than supported layout "
                f"{SQLITE_STORE_SCHEMA}"
            )

    def _empty(self) -> bool:
        try:
            return self.path.stat().st_size == 0
        except OSError:
            return True

    # -- reading -----------------------------------------------------------

    def records(self) -> "List[dict]":
        """Every well-formed record in append order, duplicates included.

        Damage -- unreadable rows, or a database too broken to open --
        is counted in :attr:`skipped_lines` and skipped, never raised;
        whatever rows remain reachable are salvaged.  A record stamped
        with a newer schema than this library understands still raises
        :class:`~repro.errors.StoreError` rather than being misread.
        """
        self.skipped_lines = 0
        if self._empty():
            return []
        rows, damaged = self._salvage_rows(
            "SELECT record FROM records ORDER BY seq"
        )
        self.skipped_lines += damaged
        out = []
        for (text,) in rows:
            record = self._parse(text)
            if record is not None:
                out.append(record)
        return out

    def _salvage_rows(
        self, sql: str, params: "Tuple" = ()
    ) -> "Tuple[List[tuple], int]":
        """``(rows, damage)``: every row readable before the first error.

        A truncated database typically loses its tail pages the way a
        killed JSONL writer loses its tail line; rows on intact pages
        still read.  Damage counts 1 per failure event -- the number
        of rows lost is unknowable.
        """
        rows: "List[tuple]" = []
        damaged = 0
        try:
            with closing(self._connect()) as connection:
                cursor = connection.execute(sql, params)
                while True:
                    try:
                        row = cursor.fetchone()
                    except sqlite3.DatabaseError:
                        damaged += 1
                        break
                    if row is None:
                        break
                    rows.append(row)
        except sqlite3.DatabaseError:
            damaged += 1
        return rows, damaged

    def _parse(self, text: object) -> "Optional[dict]":
        """One stored row back into a record dict (``None`` = skip)."""
        if not isinstance(text, str):
            self.skipped_lines += 1
            return None
        try:
            record = json.loads(text)
        except json.JSONDecodeError:
            self.skipped_lines += 1
            return None
        if not (
            isinstance(record, dict)
            and isinstance(record.get("schema"), int)
            and isinstance(record.get("hash"), str)
            and isinstance(record.get("result"), dict)
        ):
            self.skipped_lines += 1
            return None
        if record["schema"] > SCHEMA_VERSION:
            raise StoreError(
                f"{self.path}: record schema {record['schema']} is "
                f"newer than supported schema {SCHEMA_VERSION}"
            )
        return record

    def latest(self) -> "Dict[str, dict]":
        """Config hash -> record, last record winning (one index scan)."""
        self.skipped_lines = 0
        if self._empty():
            return {}
        rows, damaged = self._salvage_rows(
            "SELECT hash, MAX(seq), record FROM records GROUP BY hash "
            "ORDER BY MAX(seq)"
        )
        self.skipped_lines += damaged
        out = {}
        for config_hash, _seq, text in rows:
            record = self._parse(text)
            if record is not None:
                out[config_hash] = record
        return out

    def hashes(self) -> "Set[str]":
        if self._empty():
            return set()
        try:
            with closing(self._connect()) as connection:
                rows = connection.execute(
                    "SELECT DISTINCT hash FROM records"
                ).fetchall()
            return {row[0] for row in rows}
        except sqlite3.DatabaseError:
            return set(self.latest())

    def lookup(self, hashes: "Iterable[str]") -> "Dict[str, dict]":
        """Indexed resume-skip: O(batch) whatever the store size."""
        wanted = list(dict.fromkeys(hashes))
        if not wanted or self._empty():
            return {}
        out: "Dict[str, dict]" = {}
        try:
            with closing(self._connect()) as connection:
                for start in range(0, len(wanted), _LOOKUP_CHUNK):
                    chunk = wanted[start:start + _LOOKUP_CHUNK]
                    marks = ",".join("?" * len(chunk))
                    rows = connection.execute(
                        f"SELECT hash, MAX(seq), record FROM records "
                        f"WHERE hash IN ({marks}) GROUP BY hash",
                        chunk,
                    ).fetchall()
                    for config_hash, _seq, text in rows:
                        record = self._parse(text)
                        if record is not None:
                            out[config_hash] = record
            return out
        except sqlite3.DatabaseError as error:
            if not _is_corruption(error):
                raise
            return StoreBackend.lookup(self, wanted)

    def iter_latest(
        self,
        *,
        kind: "Optional[str]" = None,
        workload: "Optional[str]" = None,
        architecture: "Optional[str]" = None,
        scheduler: "Optional[str]" = None,
    ) -> "Iterator[dict]":
        """Filtered latest-wins records off the secondary indexes.

        Identity columns are immutable per config hash (a replace
        re-records the same experiment), so filtering rows before the
        last-wins dedup selects exactly the records the scan-based
        default selects.
        """
        clauses: "List[str]" = []
        params: "List[str]" = []
        for column, value in (
            ("kind", kind),
            ("workload", workload),
            ("architecture", architecture),
            ("scheduler", scheduler),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if self._empty():
            return
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        try:
            with closing(self._connect()) as connection:
                rows = connection.execute(
                    f"SELECT hash, MAX(seq), record FROM records{where} "
                    f"GROUP BY hash ORDER BY MAX(seq)",
                    params,
                ).fetchall()
        except sqlite3.DatabaseError as error:
            if not _is_corruption(error):
                raise
            yield from StoreBackend.iter_latest(
                self,
                kind=kind,
                workload=workload,
                architecture=architecture,
                scheduler=scheduler,
            )
            return
        for _hash, _seq, text in rows:
            record = self._parse(text)
            if record is not None:
                yield record

    def aggregate_counts(self) -> "Dict[AggregateKey, int]":
        """The transactionally maintained per-bucket counts, O(buckets)."""
        try:
            return self.stored_aggregate_counts()
        except sqlite3.DatabaseError as error:
            if not _is_corruption(error):
                raise
            return self.scan_aggregate_counts()

    def stored_aggregate_counts(self) -> "Dict[AggregateKey, int]":
        """The ``aggregates`` table as maintained, no recomputation.

        ``repro verify`` compares this against
        :meth:`~repro.campaign.backend.StoreBackend.scan_aggregate_counts`
        (rule REC009) to prove the incremental maintenance never
        drifted from the records themselves.
        """
        if self._empty():
            return {}
        with closing(self._connect()) as connection:
            rows = connection.execute(
                "SELECT kind, workload, architecture, scheduler, runs "
                "FROM aggregates WHERE runs != 0"
            ).fetchall()
        return {
            (
                kind,
                workload or None,
                architecture or None,
                scheduler or None,
            ): runs
            for kind, workload, architecture, scheduler, runs in rows
        }

    def __len__(self) -> int:
        if self._empty():
            return 0
        try:
            with closing(self._connect()) as connection:
                row = connection.execute(
                    "SELECT COUNT(DISTINCT hash) FROM records"
                ).fetchone()
            return int(row[0])
        except sqlite3.DatabaseError:
            return len(self.latest())

    def __contains__(self, config_hash: str) -> bool:
        if self._empty():
            return False
        try:
            with closing(self._connect()) as connection:
                row = connection.execute(
                    "SELECT 1 FROM records WHERE hash = ? LIMIT 1",
                    (config_hash,),
                ).fetchone()
            return row is not None
        except sqlite3.DatabaseError:
            return config_hash in self.latest()

    # -- writing -----------------------------------------------------------

    def append(self, record: Mapping, *, replace: bool = False) -> bool:
        """Durably append one record inside one immediate transaction.

        The row insert and its aggregate bump commit atomically; the
        dedup check runs inside the write lock, so concurrent
        appenders of the same hash store it exactly once.  A corrupt
        database is healed first -- rebuilt from every salvageable
        record -- and the append then lands in the healed store.
        """
        try:
            return self._append_locked([record], replace=replace) == 1
        except sqlite3.DatabaseError as error:
            if not _is_corruption(error):
                raise
            self._heal()
            return self._append_locked([record], replace=replace) == 1

    def append_many(
        self,
        records: "Iterable[Mapping]",
        *,
        replace: bool = False,
    ) -> int:
        """Batch append: one transaction, one durability barrier."""
        batch = list(records)
        if not batch:
            return 0
        try:
            return self._append_locked(batch, replace=replace)
        except sqlite3.DatabaseError as error:
            if not _is_corruption(error):
                raise
            self._heal()
            return self._append_locked(batch, replace=replace)

    def _append_locked(
        self, batch: "List[Mapping]", *, replace: bool
    ) -> int:
        with closing(self._write_connection()) as connection:
            connection.execute("BEGIN IMMEDIATE")
            try:
                stored = 0
                for record in batch:
                    stored += self._insert(connection, record, replace)
                connection.execute("COMMIT")
            except BaseException:
                connection.execute("ROLLBACK")
                raise
        return stored

    @staticmethod
    def _insert(
        connection: sqlite3.Connection,
        record: Mapping,
        replace: bool,
    ) -> int:
        config_hash = record["hash"]
        previous = connection.execute(
            "SELECT kind, workload, architecture, scheduler FROM records "
            "WHERE hash = ? ORDER BY seq DESC LIMIT 1",
            (config_hash,),
        ).fetchone()
        if previous is not None and not replace:
            return 0
        kind, workload, architecture, scheduler = _row_columns(record)
        connection.execute(
            "INSERT INTO records "
            "(hash, kind, workload, architecture, scheduler, record) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (
                config_hash,
                kind,
                workload,
                architecture,
                scheduler,
                _canonical_line(record),
            ),
        )
        if previous is not None:
            SqliteStore._bump(connection, tuple(previous), -1)
        SqliteStore._bump(
            connection, (kind, workload, architecture, scheduler), +1
        )
        return 1

    @staticmethod
    def _bump(
        connection: sqlite3.Connection,
        columns: "Tuple",
        delta: int,
    ) -> None:
        kind, workload, architecture, scheduler = columns
        connection.execute(
            "INSERT INTO aggregates "
            "(kind, workload, architecture, scheduler, runs) "
            "VALUES (?, ?, ?, ?, ?) "
            "ON CONFLICT(kind, workload, architecture, scheduler) "
            "DO UPDATE SET runs = runs + excluded.runs",
            (
                kind or _NONE,
                workload or _NONE,
                architecture or _NONE,
                scheduler or _NONE,
                delta,
            ),
        )
        connection.execute("DELETE FROM aggregates WHERE runs = 0")

    def write_all(self, records: "Iterable[Mapping]") -> None:
        """Atomically replace the store with ``records``, re-indexed.

        The replacement database is built beside the store and slid
        into place with :func:`os.replace`, so a crash mid-rebuild
        leaves the old store intact.  Rows insert in the given order
        with sequence numbers 1..n and aggregates rebuild sorted, so
        equal record sequences produce byte-identical databases --
        the property :func:`~repro.campaign.store.merge_stores`
        determinism rests on.
        """
        batch = [dict(record) for record in records]
        self.path.parent.mkdir(parents=True, exist_ok=True)
        scratch = self.path.with_name(self.path.name + ".tmp")
        if scratch.exists():
            scratch.unlink()
        with closing(self._connect(scratch)) as connection:
            connection.execute("PRAGMA synchronous=FULL")
            self._ensure_schema(connection)
            connection.execute("BEGIN IMMEDIATE")
            connection.executemany(
                "INSERT INTO records "
                "(hash, kind, workload, architecture, scheduler, record) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                [
                    (record["hash"], *_row_columns(record),
                     _canonical_line(record))
                    for record in batch
                ],
            )
            latest = {record["hash"]: record for record in batch}
            counts: "Dict[AggregateKey, int]" = {}
            for record in latest.values():
                bucket = aggregate_key(record)
                counts[bucket] = counts.get(bucket, 0) + 1
            connection.executemany(
                "INSERT INTO aggregates "
                "(kind, workload, architecture, scheduler, runs) "
                "VALUES (?, ?, ?, ?, ?)",
                [
                    (
                        bucket[0] or _NONE,
                        bucket[1] or _NONE,
                        bucket[2] or _NONE,
                        bucket[3] or _NONE,
                        counts[bucket],
                    )
                    for bucket in sorted(
                        counts, key=lambda key: tuple(part or "" for part in key)
                    )
                ],
            )
            connection.execute("COMMIT")
        with open(scratch, "rb") as handle:
            os.fsync(handle.fileno())
        os.replace(scratch, self.path)
        try:
            dir_fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:
            pass
        else:
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        self.skipped_lines = 0

    def _heal(self) -> None:
        """Rebuild a damaged database from its salvageable records."""
        salvaged = self.records()
        self.write_all(salvaged)
